"""The zero-copy trace fabric: content-addressed, mmap-backed trace artifacts.

Every process used to pay the full trace cold-start privately: re-run the
calibration bisection (:func:`repro.nn.calibration.calibrate_network`, 40
bisection steps over sampled layers) and regenerate full layer tensors it
touched — the per-process cost ROADMAP item 4 calls out as what caps worker
count per machine.  This module makes traces a shared on-host resource:

* **tensor artifacts** — each ``(TraceSpec, layer)`` full tensor is
  materialized exactly once per host into
  ``<trace-dir>/<content-hash>.npy`` (atomic temp-file + rename publication)
  and opened by everyone else with ``np.load(..., mmap_mode="r")``: a
  read-only memory map, so N workers on one host share one physical copy and
  a warm start costs an ``mmap`` instead of a generation pass.
* **persisted calibrations** — :class:`~repro.nn.calibration.NetworkCalibration`
  results are stored as ordinary gzip JSON entries in the same directory, so
  workers skip the bisection entirely on a warm host.
* **the same cache discipline as results** — keys are content hashes over the
  spec plus the trace code fingerprint
  (:func:`repro.runtime.fingerprint.trace_tensor_key`); editing ``nn`` or
  ``numerics`` source invalidates artifacts exactly like editing simulation
  source invalidates cached results.  Artifacts are indexed by the PR 3
  lifecycle manifest and garbage-collected through it (size/age caps), so
  ``--cache-gc``/``--cache-stats`` and serve background GC see them.

Bit-identity is by construction — an artifact holds exactly the bytes the
generate-on-demand path produces for that key — and proven by the fabric's
golden tests (``tests/test_trace_fabric.py``).  Concurrent publication is
safe without locks: two builders of one key produce identical bytes, each
publishes via its own temp file + ``os.replace``, and whichever rename lands
last simply overwrites the same content; readers only ever see a complete
file.  ``docs/runtime.md`` documents the artifact layout and invalidation
rule; ``docs/cluster.md`` the per-host sharing story.
"""

from __future__ import annotations

import dataclasses
import os
import tempfile
import threading
from pathlib import Path

import numpy as np

from repro.nn.traces import TraceBacking
from repro.runtime import lifecycle
from repro.runtime.fingerprint import calibration_key, trace_tensor_key

__all__ = [
    "CALIBRATION_SAMPLES",
    "CALIBRATION_SEED",
    "TRACES_SUBDIR",
    "MmapTraceBacking",
    "TraceArtifactStore",
    "default_trace_dir",
]

#: Subdirectory of a result-cache directory the fabric defaults to, keeping
#: trace artifacts out of the result manifest's namespace.
TRACES_SUBDIR = "traces"

#: The :func:`~repro.nn.calibration.calibrate_network` defaults the fabric
#: persists calibrations under (the trace path always calls it with these).
CALIBRATION_SAMPLES = 8192
CALIBRATION_SEED = 12345


def default_trace_dir(cache_dir: str | Path) -> Path:
    """Where trace artifacts live next to a result cache: ``<cache-dir>/traces``."""
    return Path(cache_dir).expanduser() / TRACES_SUBDIR


class TraceArtifactStore:
    """Per-host artifact store of trace tensors and persisted calibrations.

    Thread-safe (serve worker threads resolve tensors concurrently) and
    multi-process-safe (cluster workers share one directory; see the module
    docstring for the publication protocol).  ``max_bytes``/``max_age`` are
    enforced on each :meth:`gc` call, mirroring ``CacheManifest.gc``.

    Counters (read via :meth:`counters`, surfaced as session stats):

    * ``tensors_built`` — full tensors this process generated and published;
    * ``tensors_mapped`` — read-only mmap opens of an existing artifact
      (``traces_mapped`` in :class:`~repro.runtime.session.RunStats`);
    * ``bytes_mapped`` — artifact bytes those opens shared instead of
      duplicating (``trace_bytes_shared``);
    * ``calibrations_computed`` / ``calibrations_loaded`` — bisections run
      vs. persisted results reused;
    * ``errors`` — corrupt or unwritable artifacts (degraded to in-memory).
    """

    def __init__(
        self,
        directory: str | Path,
        max_bytes: int | None = None,
        max_age: float | None = None,
    ) -> None:
        self.directory = Path(directory).expanduser()
        self.directory.mkdir(parents=True, exist_ok=True)
        self.manifest = lifecycle.CacheManifest(self.directory)
        self.max_bytes = max_bytes
        self.max_age = max_age
        self._lock = threading.Lock()
        self.tensors_built = 0
        self.tensors_mapped = 0
        self.bytes_mapped = 0
        self.calibrations_computed = 0
        self.calibrations_loaded = 0
        self.errors = 0

    # ----------------------------------------------------------------- tensors
    def layer_tensor(self, spec, layer_index: int, builder) -> np.ndarray:
        """The ``(spec, layer)`` tensor: an existing artifact's read-only mmap,
        or ``builder()``'s result published for every other process on the host.

        ``builder`` must return the generate-on-demand ground truth
        (:meth:`repro.nn.traces.NetworkTrace.generate_layer_input`); identical
        keys imply identical bytes, which is what makes lock-free concurrent
        publication safe.
        """
        key = trace_tensor_key(spec, layer_index)
        path = lifecycle.tensor_path(self.directory, key)
        tensor = self._open(key, path)
        if tensor is not None:
            self.manifest.record_use(key)
            return tensor
        values = np.ascontiguousarray(builder())
        size = self._publish(key, path, values)
        if size is None:
            return values  # unwritable directory: degrade to private memory
        with self._lock:
            self.tensors_built += 1
        self.manifest.record_store(key, "trace_tensor", size)
        tensor = self._open(key, path)
        return tensor if tensor is not None else values

    def _open(self, key: str, path: Path) -> np.ndarray | None:
        """Map an artifact read-only; a torn/corrupt file is dropped (rebuild)."""
        if not path.exists():
            return None
        try:
            tensor = np.load(path, mmap_mode="r")
            size = path.stat().st_size
        except (OSError, ValueError):
            with self._lock:
                self.errors += 1
            try:
                path.unlink()
            except OSError:
                pass
            self.manifest.record_remove(key)
            return None
        with self._lock:
            self.tensors_mapped += 1
            self.bytes_mapped += size
        return tensor

    def _publish(self, key: str, path: Path, values: np.ndarray) -> int | None:
        """Atomically publish a tensor artifact; returns its byte size."""
        tmp_name = None
        try:
            descriptor, tmp_name = tempfile.mkstemp(
                dir=self.directory, prefix=f".{key[:16]}-", suffix=".tmp"
            )
            with os.fdopen(descriptor, "wb") as handle:
                np.save(handle, values)
            size = os.path.getsize(tmp_name)
            os.replace(tmp_name, path)
        except OSError:
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            with self._lock:
                self.errors += 1
            return None
        return size

    # ------------------------------------------------------------ calibrations
    def network_calibration(self, spec):
        """The persisted :class:`NetworkCalibration` for ``spec``, computing
        (and persisting) it on first request per host."""
        from repro.nn.calibration import NetworkCalibration, calibrate_network

        key = calibration_key(
            spec.network,
            spec.representation,
            spec.suffix_bits,
            CALIBRATION_SAMPLES,
            CALIBRATION_SEED,
            spec.dense_first_layer,
        )
        path = lifecycle.find_entry(self.directory, key)
        if path is not None:
            try:
                entry = lifecycle.read_entry(path)
                calibration = NetworkCalibration(**entry["calibration"])
            except (OSError, ValueError, KeyError, TypeError):
                with self._lock:
                    self.errors += 1
                try:
                    path.unlink()
                except OSError:
                    pass
                self.manifest.record_remove(key)
            else:
                with self._lock:
                    self.calibrations_loaded += 1
                self.manifest.record_use(key)
                return calibration
        calibration = calibrate_network(
            spec.network,
            representation=spec.representation,
            suffix_bits=spec.suffix_bits,
            samples_per_layer=CALIBRATION_SAMPLES,
            seed=CALIBRATION_SEED,
            dense_first_layer=spec.dense_first_layer,
        )
        with self._lock:
            self.calibrations_computed += 1
        try:
            size = lifecycle.write_entry(
                self.directory, key, {"calibration": dataclasses.asdict(calibration)}
            )
        except OSError:
            with self._lock:
                self.errors += 1
        else:
            self.manifest.record_store(key, "trace_calibration", size)
        return calibration

    def prewarm(self) -> dict:
        """Open every existing artifact once (elastic-join pre-warm).

        A worker joining a host with a warm fabric (``docs/cluster.md``)
        refreshes its manifest view, maps each tensor artifact and validates
        each calibration entry up front, so its first planned job starts from
        read-only mmaps instead of discovering (or torn-file-recovering) the
        artifacts one by one on the hot path.  Returns how many of each kind
        were warmed.
        """
        self.manifest.refresh()
        tensors = calibrations = 0
        for key, meta in self.manifest.entries().items():
            tensor_path = lifecycle.tensor_path(self.directory, key)
            kind = meta.get("kind")
            if kind == "trace_tensor" or (kind is None and tensor_path.exists()):
                if self._open(key, tensor_path) is not None:
                    tensors += 1
                continue
            entry_path = lifecycle.find_entry(self.directory, key)
            if entry_path is None:
                continue
            try:
                lifecycle.read_entry(entry_path)
            except (OSError, ValueError):
                continue
            calibrations += 1
        return {"tensors": tensors, "calibrations": calibrations}

    # -------------------------------------------------------------- observation
    def counters(self) -> dict:
        """Snapshot of the fabric counters (the session stats overlay)."""
        with self._lock:
            return {
                "trace_tensors_built": self.tensors_built,
                "traces_mapped": self.tensors_mapped,
                "trace_bytes_shared": self.bytes_mapped,
                "trace_calibrations_computed": self.calibrations_computed,
                "trace_calibrations_loaded": self.calibrations_loaded,
            }

    def reset_counters(self) -> None:
        """Zero the per-process counters (scheduler per-job stats deltas)."""
        with self._lock:
            self.tensors_built = 0
            self.tensors_mapped = 0
            self.bytes_mapped = 0
            self.calibrations_computed = 0
            self.calibrations_loaded = 0

    def usage(self) -> dict:
        """Current artifact-tier state, split by kind (manifest-backed)."""
        stats = self.manifest.stats()
        tensors = tensor_bytes = calibrations = 0
        for key, meta in self.manifest.entries().items():
            kind = meta.get("kind")
            if kind is None:  # post-rebuild record: classify by on-disk form
                kind = (
                    "trace_tensor"
                    if lifecycle.tensor_path(self.directory, key).exists()
                    else "trace_calibration"
                )
            if kind == "trace_tensor":
                tensors += 1
                tensor_bytes += meta["size"]
            else:
                calibrations += 1
        return {
            "directory": str(self.directory),
            "entries": stats["entries"],
            "disk_bytes": stats["bytes"],
            "tensors": tensors,
            "tensor_bytes": tensor_bytes,
            "calibrations": calibrations,
            "oldest_age_seconds": stats["oldest_age_seconds"],
            "lru_age_seconds": stats["lru_age_seconds"],
        }

    # --------------------------------------------------------------- lifecycle
    def gc(
        self, max_bytes: int | None = None, max_age: float | None = None
    ) -> lifecycle.GCResult:
        """LRU-first collection of the artifact tier (defaults to the caps)."""
        max_bytes = max_bytes if max_bytes is not None else self.max_bytes
        max_age = max_age if max_age is not None else self.max_age
        if max_bytes is None and max_age is None:
            return lifecycle.GCResult(
                remaining_entries=len(self.manifest),
                remaining_bytes=self.manifest.total_bytes(),
            )
        return self.manifest.gc(max_bytes=max_bytes, max_age=max_age)

    def clear(self) -> int:
        """Delete every artifact (tensors and calibrations)."""
        return self.manifest.clear()

    def __len__(self) -> int:
        return len(self.manifest)


class MmapTraceBacking(TraceBacking):
    """The :class:`~repro.nn.traces.TraceBacking` the fabric attaches to traces.

    Resolves a trace's full layer tensors through a
    :class:`TraceArtifactStore`, using the trace's own on-demand generator as
    the builder — so the first resolution per host materializes the artifact
    and every later one (any process) maps it read-only.
    """

    def __init__(self, store: TraceArtifactStore, spec) -> None:
        self.store = store
        self.spec = spec

    def layer_tensor(self, trace, layer_index: int) -> np.ndarray | None:
        return self.store.layer_tensor(
            self.spec, layer_index, lambda: trace.generate_layer_input(layer_index)
        )
