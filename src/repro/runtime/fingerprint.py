"""Stable content fingerprints for cache keys.

Cache correctness rests on two properties of the fingerprint:

* **stability** — the same logical inputs hash identically across processes
  and sessions (so a warm cache survives restarts and process-pool workers
  share entries), and
* **sensitivity** — anything that can change a simulation's numbers (trace
  spec, sampling config, accelerator config, the simulation code itself) is
  part of the key, and nothing else is (display labels are excluded so that
  identically-parameterized configurations share entries across experiments).

Fingerprints are SHA-256 hex digests of a canonical JSON rendering.  The code
version component hashes the source of every package whose code determines the
simulated numbers (``core``, ``nn``, ``arch``, ``baselines``, ``numerics``);
editing the runtime or an experiment's presentation logic intentionally does
not invalidate cached simulations.  ``docs/runtime.md`` documents the full
key scheme and this invalidation rule.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
from pathlib import Path

__all__ = [
    "canonicalize",
    "fingerprint",
    "code_fingerprint",
    "statistics_code_fingerprint",
    "trace_code_fingerprint",
    "simulation_key",
    "statistics_key",
    "trace_tensor_key",
    "calibration_key",
]

#: Bump to invalidate every existing cache entry on a schema change.
CACHE_SCHEMA_VERSION = 1

#: Subpackages whose source participates in the code fingerprint — exactly the
#: ones the cycle simulations execute.
_CODE_PACKAGES = ("core", "nn", "arch", "baselines", "numerics")

#: Statistics passes additionally execute the analysis helpers, so their keys
#: must also be invalidated by ``analysis`` edits.
_STATISTICS_PACKAGES = _CODE_PACKAGES + ("analysis",)

#: Trace artifacts (the zero-copy trace fabric) depend only on the packages
#: that determine trace *values*: the generator/calibration code in ``nn`` and
#: the bit-level helpers in ``numerics``.  Editing ``arch`` or ``baselines``
#: invalidates simulations but keeps materialized trace tensors valid.
_TRACE_PACKAGES = ("nn", "numerics")


def canonicalize(obj: object) -> object:
    """Recursively normalize ``obj`` into JSON-representable primitives.

    Dataclasses are rendered as ``[qualified-name, {field: value, ...}]`` so
    two different configuration types with coincidentally equal fields cannot
    collide.  Mappings are sorted by key; sets are sorted; tuples and lists
    are rendered as lists.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            field.name: canonicalize(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
            if not field.name.startswith("_")
        }
        return [type(obj).__qualname__, fields]
    if isinstance(obj, dict):
        return {str(key): canonicalize(value) for key, value in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(canonicalize(item) for item in obj)
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise TypeError(f"cannot fingerprint object of type {type(obj).__name__}: {obj!r}")


def fingerprint(obj: object) -> str:
    """SHA-256 hex digest of the canonical JSON rendering of ``obj``."""
    payload = json.dumps(canonicalize(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@functools.lru_cache(maxsize=4)
def _package_fingerprint(packages: tuple[str, ...]) -> str:
    """Fingerprint of the package version plus the given subpackages' source."""
    import repro

    digest = hashlib.sha256()
    digest.update(f"schema={CACHE_SCHEMA_VERSION};version={repro.__version__};".encode())
    root = Path(repro.__file__).resolve().parent
    for package in packages:
        for source in sorted((root / package).glob("*.py")):
            digest.update(source.name.encode())
            digest.update(source.read_bytes())
    return digest.hexdigest()


def code_fingerprint() -> str:
    """Fingerprint of the simulation source code (see module docstring)."""
    return _package_fingerprint(_CODE_PACKAGES)


def statistics_code_fingerprint() -> str:
    """Like :func:`code_fingerprint`, but also covering ``analysis``.

    The statistics passes cached by :func:`repro.runtime.engine.analyze`
    execute `repro.analysis` code, so editing the analysis helpers must
    invalidate statistics entries (while still leaving cached cycle
    simulations valid).
    """
    return _package_fingerprint(_STATISTICS_PACKAGES)


def trace_code_fingerprint() -> str:
    """Fingerprint of the source that determines trace values.

    The invalidation rule of the trace fabric (``docs/runtime.md``): a
    materialized trace artifact stays valid until the ``nn`` or ``numerics``
    source changes, exactly as a cached simulation stays valid until the
    simulation source changes.
    """
    return _package_fingerprint(_TRACE_PACKAGES)


def trace_tensor_key(trace_spec: object, layer_index: int) -> str:
    """Content hash of one ``(TraceSpec, layer)`` tensor artifact.

    Keys the ``.npy`` artifacts of :class:`repro.runtime.trace_cache.TraceArtifactStore`:
    same spec + same layer + same trace-generating code ⇒ same bytes, so one
    artifact serves every worker process on the host.
    """
    return fingerprint(
        {
            "kind": "trace_tensor",
            "code": trace_code_fingerprint(),
            "trace": canonicalize(trace_spec),
            "layer": layer_index,
        }
    )


def calibration_key(
    network: str,
    representation: str,
    suffix_bits: int,
    samples_per_layer: int,
    seed: int,
    dense_first_layer: bool,
) -> str:
    """Cache key of one persisted :class:`~repro.nn.calibration.NetworkCalibration`.

    Covers every argument of :func:`repro.nn.calibration.calibrate_network`
    plus the trace code fingerprint, so a persisted calibration is exactly as
    valid as the bisection it replaces.
    """
    return fingerprint(
        {
            "kind": "trace_calibration",
            "code": trace_code_fingerprint(),
            "network": network,
            "representation": representation,
            "suffix_bits": suffix_bits,
            "samples_per_layer": samples_per_layer,
            "seed": seed,
            "dense_first_layer": dense_first_layer,
        }
    )


def simulation_key(trace_spec: object, sampling: object, config: object) -> str:
    """Cache key of one ``(trace spec, sampling, accelerator config)`` simulation.

    The configuration's display ``label`` is excluded: it names the result but
    does not influence any simulated number, and excluding it lets experiments
    that evaluate the same design point under different names (e.g. Figure 9's
    ``4-bit`` and PRAsingle) share one cache entry.

    A default (``positional``) ``encoding`` field is dropped from the
    canonical form: positional configurations key exactly as they did before
    encodings became a config axis, so warm caches stay warm across the
    refactor, while every non-default encoding keys (and therefore caches)
    independently.
    """
    if dataclasses.is_dataclass(config) and hasattr(config, "label"):
        config = dataclasses.replace(config, label=None)
    canonical_config = canonicalize(config)
    if (
        isinstance(canonical_config, list)
        and len(canonical_config) == 2
        and isinstance(canonical_config[1], dict)
        and canonical_config[1].get("encoding") == "positional"
    ):
        canonical_config[1].pop("encoding")
    return fingerprint(
        {
            "kind": "simulation",
            "code": code_fingerprint(),
            "trace": canonicalize(trace_spec),
            "sampling": canonicalize(sampling),
            "config": canonical_config,
        }
    )


def statistics_key(statistic: str, trace_spec: object, samples_per_layer: int) -> str:
    """Cache key of one per-network statistics pass (fig2/fig3/table1).

    Statistics entries live in the same content-addressed cache as simulation
    results but under their own ``kind`` namespace; the key covers the
    statistic's identity, the trace it measures, the sample budget, and the
    code fingerprint.
    """
    return fingerprint(
        {
            "kind": "statistics",
            "statistic": statistic,
            "code": statistics_code_fingerprint(),
            "trace": canonicalize(trace_spec),
            "samples_per_layer": samples_per_layer,
        }
    )
