"""Tests for the runtime cache-key fingerprints."""

import pytest

from repro.arch.tiling import SamplingConfig
from repro.core.variants import pallet_variant, single_stage_variant
from repro.runtime.fingerprint import (
    canonicalize,
    code_fingerprint,
    fingerprint,
    simulation_key,
    statistics_code_fingerprint,
    statistics_key,
)
from repro.runtime.trace_store import TraceSpec


class TestCanonicalize:
    def test_primitives_pass_through(self):
        assert canonicalize(3) == 3
        assert canonicalize("x") == "x"
        assert canonicalize(None) is None
        assert canonicalize(1.5) == 1.5

    def test_dataclasses_render_with_type_name(self):
        rendered = canonicalize(SamplingConfig(max_pallets=2, seed=7))
        assert rendered[0] == "SamplingConfig"
        assert rendered[1]["max_pallets"] == 2
        assert rendered[1]["seed"] == 7

    def test_mappings_are_order_insensitive(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_unknown_types_are_rejected(self):
        with pytest.raises(TypeError):
            fingerprint(object())


class TestSimulationKey:
    SPEC = TraceSpec(network="alexnet", seed=0)
    SAMPLING = SamplingConfig(max_pallets=2, seed=0)

    def test_stable_across_calls(self):
        config = pallet_variant(2)
        assert simulation_key(self.SPEC, self.SAMPLING, config) == simulation_key(
            self.SPEC, self.SAMPLING, config
        )

    def test_label_is_excluded(self):
        # PRAsingle is pallet_variant(4) under a different display label; both
        # must address the same cache entry.
        assert simulation_key(self.SPEC, self.SAMPLING, pallet_variant(4)) == simulation_key(
            self.SPEC, self.SAMPLING, single_stage_variant()
        )

    def test_config_changes_change_the_key(self):
        base = simulation_key(self.SPEC, self.SAMPLING, pallet_variant(2))
        assert base != simulation_key(self.SPEC, self.SAMPLING, pallet_variant(3))
        assert base != simulation_key(
            self.SPEC, self.SAMPLING, pallet_variant(2, software_trimming=False)
        )

    def test_positional_canonical_form_predates_the_encoding_axis(self):
        """The canonical rendering of a positional config is structurally
        identical to the pre-encoding-registry one (no ``encoding`` entry at
        all), so warm caches carried across that refactor still hit.  This
        pins the exact payload a pre-refactor build would have hashed."""
        import dataclasses as dc

        from repro.core.accelerator import PragmaticConfig

        config = dc.replace(pallet_variant(2), label=None)
        canonical = canonicalize(config)
        assert canonical[1].get("encoding") == "positional"
        canonical[1].pop("encoding")
        pre_refactor = [
            "PragmaticConfig",
            {
                "first_stage_bits": 2,
                "synchronization": "pallet",
                "ssr_count": 1,
                "software_trimming": True,
                "chip": [
                    "ChipConfig",
                    {
                        "tiles": 16,
                        "filters_per_tile": 16,
                        "synapses_per_filter_lane": 16,
                        "pallet_windows": 16,
                        "storage_bits": 16,
                        "frequency_ghz": 0.606,
                        "nm_row_bytes": 512,
                        "sb_bytes_per_tile": 2097152,
                        "nm_bytes": 4194304,
                        "nbin_bytes": 2048,
                        "nbout_bytes": 2048,
                    },
                ],
                "label": None,
            },
        ]
        assert canonical == pre_refactor
        # And the stripping happens inside simulation_key: an explicitly
        # positional config and the field-defaulted one share a key, while a
        # non-default encoding gets its own.
        base = simulation_key(self.SPEC, self.SAMPLING, pallet_variant(2))
        assert base == simulation_key(
            self.SPEC, self.SAMPLING, dc.replace(pallet_variant(2), encoding="positional")
        )
        assert base != simulation_key(
            self.SPEC, self.SAMPLING, dc.replace(pallet_variant(2), encoding="csd")
        )
        assert PragmaticConfig().encoding == "positional"

    def test_sampling_changes_change_the_key(self):
        base = simulation_key(self.SPEC, self.SAMPLING, pallet_variant(2))
        wider = SamplingConfig(max_pallets=4, seed=0)
        assert base != simulation_key(self.SPEC, wider, pallet_variant(2))

    def test_trace_spec_changes_change_the_key(self):
        base = simulation_key(self.SPEC, self.SAMPLING, pallet_variant(2))
        other_seed = TraceSpec(network="alexnet", seed=1)
        other_net = TraceSpec(network="vgg_m", seed=0)
        assert base != simulation_key(other_seed, self.SAMPLING, pallet_variant(2))
        assert base != simulation_key(other_net, self.SAMPLING, pallet_variant(2))


class TestCodeFingerprint:
    def test_is_cached_and_stable(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64

    def test_statistics_fingerprint_also_covers_analysis(self):
        # Statistics passes execute repro.analysis code, so their code
        # fingerprint must differ from the simulation-only one (editing
        # analysis invalidates statistics entries but not simulations).
        assert statistics_code_fingerprint() != code_fingerprint()
        assert len(statistics_code_fingerprint()) == 64


class TestStatisticsKey:
    SPEC = TraceSpec(network="alexnet", representation="fixed16", seed=0)

    def test_every_component_changes_the_key(self):
        base = statistics_key("fig2_terms", self.SPEC, 2000)
        assert base != statistics_key("fig3_terms", self.SPEC, 2000)
        assert base != statistics_key("fig2_terms", self.SPEC, 4000)
        assert base != statistics_key(
            "fig2_terms", TraceSpec(network="vgg_m", representation="fixed16"), 2000
        )

    def test_statistics_and_simulation_keys_never_collide(self):
        sampling = SamplingConfig(max_pallets=2, seed=0)
        assert statistics_key("fig2_terms", self.SPEC, 2000) != simulation_key(
            self.SPEC, sampling, pallet_variant(2)
        )
