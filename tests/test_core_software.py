"""Unit tests for the software guidance (per-layer trimming) model."""

import numpy as np
import pytest

from repro.core.software import SoftwareGuidance
from repro.nn.precision import LayerPrecision
from repro.numerics.fixedpoint import popcount


@pytest.fixture
def guidance():
    return SoftwareGuidance(
        precisions=(LayerPrecision(msb=9, lsb=2), LayerPrecision(msb=7, lsb=0))
    )


class TestSoftwareGuidance:
    def test_apply_masks_bits_outside_window(self, guidance):
        values = np.array([0b11_1111_1111_11])
        trimmed = guidance.apply(values, 0)
        assert np.all((np.abs(trimmed) & ~np.int64(guidance.layer_mask(0))) == 0)

    def test_disabled_guidance_is_identity(self, rng):
        guidance = SoftwareGuidance.disabled(num_layers=3)
        values = rng.integers(0, 2**15, size=100)
        np.testing.assert_array_equal(guidance.apply(values, 1), values)

    def test_from_trace_uses_trace_precisions(self, tiny_trace):
        guidance = SoftwareGuidance.from_trace(tiny_trace)
        assert guidance.precisions == tiny_trace.precisions
        assert guidance.enabled

    def test_trimming_never_increases_essential_bits(self, guidance, rng):
        values = rng.integers(0, 2**14, size=500)
        before = popcount(values, 16).sum()
        after = popcount(guidance.apply(values, 0), 16).sum()
        assert after <= before

    def test_essential_bit_savings_between_zero_and_one(self, guidance, rng):
        values = rng.integers(0, 2**14, size=500)
        savings = guidance.essential_bit_savings(values, 0)
        assert 0.0 <= savings < 1.0

    def test_savings_zero_for_all_zero_values(self, guidance):
        assert guidance.essential_bit_savings(np.zeros(10, dtype=int), 0) == 0.0

    def test_layer_mask_matches_precision(self, guidance):
        assert guidance.layer_mask(1) == LayerPrecision(msb=7, lsb=0).mask
