"""Cached execution of cycle-simulation sweeps and statistics passes.

:func:`simulate` is the single funnel every experiment's cycle simulation goes
through.  It resolves each requested ``(trace spec, sampling, config)`` triple
against the session cache, runs one :func:`repro.core.sweep.sweep_network`
over exactly the missing configurations (so drain tensors are still shared
within the group), and stores each fresh result under its own key — which is
what lets overlapping experiments (Figure 9 / Figure 10 / Figure 11 / Table V
all evaluate common PRA design points) reuse each other's work.

:func:`analyze` is the same funnel for the per-network statistics passes of
the motivation experiments (Table I, Figures 2 and 3): a named statistic over
one calibrated trace, cached as a JSON payload under its own key so the
statistics experiments plan, parallelize and warm-cache exactly like the
cycle-simulation experiments.  See ``docs/runtime.md`` for the job model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.arch.tiling import SamplingConfig
from repro.core.accelerator import NetworkResult, PragmaticConfig
from repro.core.sweep import sweep_network
from repro.runtime.fingerprint import simulation_key, statistics_key
from repro.runtime.serialization import network_result_from_dict, network_result_to_dict
from repro.runtime.session import RuntimeSession, current_session
from repro.runtime.trace_store import TraceSpec

__all__ = ["SimulationRequest", "StatisticsRequest", "STATISTICS", "simulate", "analyze"]


@dataclass(frozen=True)
class SimulationRequest:
    """One config-group simulation task: a set of designs over one trace.

    Attributes
    ----------
    trace:
        Declarative spec of the calibrated trace to simulate over.
    configs:
        ``(label, config)`` pairs, in presentation order.  Labels are
        display-only; caching keys ignore them.
    sampling:
        Pallet sampling configuration (from the preset).
    """

    trace: TraceSpec
    configs: tuple[tuple[str, PragmaticConfig], ...]
    sampling: SamplingConfig = SamplingConfig()

    def keys(self) -> dict[str, str]:
        """Cache key per label."""
        return {
            label: simulation_key(self.trace, self.sampling, config)
            for label, config in self.configs
        }


def simulate(
    request: SimulationRequest, session: RuntimeSession | None = None
) -> dict[str, NetworkResult]:
    """Run (or recall) every configuration of ``request``.

    Returns label → :class:`NetworkResult` in the request's order, numerically
    identical whether each result came from the cache or a fresh sweep.
    """
    session = session if session is not None else current_session()
    progress = getattr(session, "progress", None)
    if progress is not None:
        progress.checkpoint()
    labels = [label for label, _ in request.configs]
    if len(set(labels)) != len(labels):
        raise ValueError(f"duplicate labels in simulation request: {labels}")
    keys = request.keys()
    results: dict[str, NetworkResult] = {}
    missing: dict[str, PragmaticConfig] = {}
    for label, config in request.configs:
        payload = session.cache.get(keys[label])
        if payload is not None:
            results[label] = network_result_from_dict(payload, accelerator=config.name)
        else:
            missing[label] = config
    if missing:
        trace = session.traces.get(request.trace)
        computed = sweep_network(
            trace,
            missing,
            sampling=request.sampling,
            stats=session.sweep_stats,
            progress=progress,
        )
        # The cooperative checkpoints all sit *before* this point: once the
        # sweep has returned, every result is stored unconditionally, so a
        # cancellation can abandon a network but never truncate cache writes.
        for label, result in computed.items():
            session.cache.put(keys[label], network_result_to_dict(result))
            results[label] = result
    if progress is not None:
        progress.emit(
            {
                "stage": "network",
                "network": request.trace.network,
                "configs": len(labels),
                "simulated": len(missing),
                "cached": len(labels) - len(missing),
            }
        )
    return {label: results[label] for label, _ in request.configs}


# ------------------------------------------------------------------ statistics
def _fig2_terms(trace, samples_per_layer: int) -> dict:
    from repro.analysis.potential import count_terms_fixed16

    counts = count_terms_fixed16(trace, samples_per_layer=samples_per_layer)
    return {"network": counts.network, "relative_terms": dict(counts.relative_terms)}


def _fig3_terms(trace, samples_per_layer: int) -> dict:
    from repro.analysis.potential import count_terms_quant8

    counts = count_terms_quant8(trace, samples_per_layer=samples_per_layer)
    return {"network": counts.network, "relative_terms": dict(counts.relative_terms)}


def _essential_bits(trace, samples_per_layer: int) -> dict:
    from repro.analysis.essential_bits import measure_trace

    all_fraction, nz_fraction = measure_trace(trace, samples_per_layer=samples_per_layer)
    return {"network": trace.network.name, "all": all_fraction, "nz": nz_fraction}


#: Named statistics passes servable through :func:`analyze`.  Each maps a
#: calibrated trace and a per-layer sample budget to a JSON payload.
STATISTICS: dict[str, Callable[..., dict]] = {
    "fig2_terms": _fig2_terms,
    "fig3_terms": _fig3_terms,
    "essential_bits": _essential_bits,
}


@dataclass(frozen=True)
class StatisticsRequest:
    """One per-network statistics pass: a named statistic over one trace.

    Attributes
    ----------
    statistic:
        Registry key in :data:`STATISTICS` (``"fig2_terms"``, ``"fig3_terms"``,
        ``"essential_bits"``).
    trace:
        Declarative spec of the calibrated trace to measure.
    samples_per_layer:
        Neuron values sampled per layer (from the preset).
    """

    statistic: str
    trace: TraceSpec
    samples_per_layer: int = 8000

    def key(self) -> str:
        """Cache key of this statistics pass."""
        return statistics_key(self.statistic, self.trace, self.samples_per_layer)


def analyze(request: StatisticsRequest, session: RuntimeSession | None = None) -> dict:
    """Run (or recall) the statistics pass described by ``request``.

    Returns the statistic's JSON payload, identical whether it came from the
    cache or a fresh measurement.
    """
    session = session if session is not None else current_session()
    progress = getattr(session, "progress", None)
    if progress is not None:
        progress.checkpoint()
    if request.statistic not in STATISTICS:
        raise KeyError(
            f"unknown statistic {request.statistic!r}; available: {', '.join(STATISTICS)}"
        )
    key = request.key()
    payload = session.cache.get(key, kind="statistics")
    computed = payload is None
    if computed:
        trace = session.traces.get(request.trace)
        payload = STATISTICS[request.statistic](trace, request.samples_per_layer)
        session.cache.put(key, payload, kind="statistics")
    if progress is not None:
        progress.emit(
            {
                "stage": "statistics",
                "statistic": request.statistic,
                "network": request.trace.network,
                "cached": not computed,
            }
        )
    return payload
