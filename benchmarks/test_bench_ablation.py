"""Benchmark: ablation of the reproduction's trace-modelling choices."""


def test_bench_ablation(report):
    result = report("ablation", preset="smoke")
    # Deeper trimmable suffixes increase the software-guided speedup monotonically.
    suffixes = [
        result.metadata[f"suffix={bits}, dense first layer:geomean"] for bits in (0, 1, 2, 3)
    ]
    assert suffixes == sorted(suffixes)
    # Modelling the first layer as sparse ReLU output overstates the speedup.
    dense = result.metadata["suffix=2, dense first layer:geomean"]
    sparse = result.metadata["suffix=2, sparse first layer:geomean"]
    assert sparse >= dense
