"""Trace specifications and the per-session calibrated-trace store.

A :class:`TraceSpec` is the declarative description of a calibrated activation
trace — everything :func:`repro.nn.calibration.calibrated_trace` needs, as a
hashable value object.  Being declarative makes it both the cache-key
component for simulations over the trace and the memoization key of the
:class:`TraceStore`, which guarantees each network's trace is materialized
once per session no matter how many experiments consume it.

A store may additionally be wired to a
:class:`repro.runtime.trace_cache.TraceArtifactStore` (the zero-copy trace
fabric): newly built traces then load their calibration from — and resolve
their full layer tensors through — the host-shared artifact directory instead
of recomputing them privately.  See ``docs/runtime.md`` for how traces fit the
session and cache-key model.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.nn.precision import DEFAULT_SUFFIX_BITS
from repro.nn.traces import NetworkTrace

__all__ = ["TraceSpec", "TraceStore"]


@dataclass(frozen=True)
class TraceSpec:
    """Declarative description of one calibrated network trace.

    Attributes mirror the parameters of
    :func:`repro.nn.calibration.calibrated_trace`.
    """

    network: str
    representation: str = "fixed16"
    suffix_bits: int = DEFAULT_SUFFIX_BITS
    seed: int = 0
    precisions: tuple[int, ...] | None = None
    dense_first_layer: bool = True

    def build(self, calibration=None) -> NetworkTrace:
        """Materialize the trace (calibrating the network if necessary).

        ``calibration`` short-circuits the bisection with a persisted
        :class:`~repro.nn.calibration.NetworkCalibration` (the trace fabric's
        warm path).
        """
        from repro.nn.calibration import calibrated_trace

        return calibrated_trace(
            self.network,
            representation=self.representation,
            suffix_bits=self.suffix_bits,
            seed=self.seed,
            precisions=self.precisions,
            dense_first_layer=self.dense_first_layer,
            calibration=calibration,
        )


class TraceStore:
    """Session-scoped store building each distinct trace exactly once.

    Traces are stateless value generators (layer values are derived on demand
    from per-layer seeds), so one instance can safely serve every experiment
    in a session.  The lock keeps the store safe under concurrent access from
    scheduler threads; process-pool workers each hold their own store.

    With ``artifacts`` set, the store participates in the zero-copy trace
    fabric: calibrations are loaded from (or persisted to) the shared artifact
    directory, and each built trace gets an
    :class:`~repro.runtime.trace_cache.MmapTraceBacking` attached so its full
    layer tensors resolve to read-only memory maps of host-shared ``.npy``
    artifacts.
    """

    def __init__(self, artifacts=None) -> None:
        self._traces: dict[TraceSpec, NetworkTrace] = {}
        self._lock = threading.Lock()
        self.artifacts = artifacts
        self.builds = 0
        self.reuses = 0

    def known(self, spec: TraceSpec) -> bool:
        """Whether ``spec``'s trace is already materialized in this store."""
        with self._lock:
            return spec in self._traces

    def get(self, spec: TraceSpec) -> NetworkTrace:
        """The trace described by ``spec``, building it on first request."""
        return self.fetch(spec)[0]

    def fetch(self, spec: TraceSpec) -> tuple[NetworkTrace, bool]:
        """Like :meth:`get`, also reporting whether *this call* built the trace.

        The boolean lets per-request stats views (the serve worker pool)
        count builds exactly, without a check-then-act race against other
        threads fetching the same spec concurrently.
        """
        with self._lock:
            trace = self._traces.get(spec)
            if trace is not None:
                self.reuses += 1
                return trace, False
        built = self._build(spec)
        with self._lock:
            trace = self._traces.setdefault(spec, built)
            if trace is built:
                self.builds += 1
                return trace, True
            self.reuses += 1
            return trace, False

    def _build(self, spec: TraceSpec) -> NetworkTrace:
        """Build ``spec``'s trace, through the fabric when one is wired."""
        if self.artifacts is None:
            return spec.build()
        from repro.runtime.trace_cache import MmapTraceBacking

        calibration = self.artifacts.network_calibration(spec)
        trace = spec.build(calibration=calibration)
        trace.attach_backing(MmapTraceBacking(self.artifacts, spec))
        return trace

    def __len__(self) -> int:
        return len(self._traces)
