"""Wire form of planned runtime jobs: how the coordinator ships work.

The coordinator plans a client request with the *existing* job graph
(:func:`repro.runtime.jobs.build_plan`) and then has to move each primitive
:class:`~repro.runtime.engine.SimulationRequest` /
:class:`~repro.runtime.engine.StatisticsRequest` to a worker process over the
serve protocol.  This module is that codec plus the two internal job ops
(``sim_job`` / ``stat_job``) worker mode accepts from a registered
coordinator — clients never see them, the public protocol is unchanged
(``docs/cluster.md`` documents the split).

Round-tripping is exact by construction: every field of ``TraceSpec``,
``SamplingConfig``, ``PragmaticConfig`` and ``ChipConfig`` is carried, so the
reconstructed request produces byte-identical cache keys on the worker — the
property the whole design rests on (the worker stores under the same
fingerprint the coordinator planned and pruned against).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.arch.config import ChipConfig
from repro.arch.tiling import SamplingConfig
from repro.core.accelerator import PragmaticConfig
from repro.runtime import SimulationRequest, StatisticsRequest, TraceSpec, fingerprint
from repro.serve.protocol import ProtocolError

__all__ = [
    "INTERNAL_JOB_OPS",
    "SimulationJobRequest",
    "StatisticsJobRequest",
    "simulation_request_to_wire",
    "simulation_request_from_wire",
    "statistics_request_to_wire",
    "statistics_request_from_wire",
    "parse_internal_request",
]

#: Worker-mode-only job ops (require a registered coordinator connection).
INTERNAL_JOB_OPS = ("sim_job", "stat_job")


# ------------------------------------------------------------------- the codec
def _trace_to_wire(trace: TraceSpec) -> dict:
    wire = dataclasses.asdict(trace)
    if wire["precisions"] is not None:
        wire["precisions"] = list(wire["precisions"])
    return wire


def _trace_from_wire(wire: dict) -> TraceSpec:
    precisions = wire.get("precisions")
    return TraceSpec(
        network=wire["network"],
        representation=wire.get("representation", "fixed16"),
        suffix_bits=wire["suffix_bits"],
        seed=wire.get("seed", 0),
        precisions=tuple(precisions) if precisions is not None else None,
        dense_first_layer=wire.get("dense_first_layer", True),
    )


def _config_to_wire(config: PragmaticConfig) -> dict:
    return dataclasses.asdict(config)


def _config_from_wire(wire: dict) -> PragmaticConfig:
    chip = wire.get("chip")
    return PragmaticConfig(
        first_stage_bits=wire["first_stage_bits"],
        synchronization=wire["synchronization"],
        ssr_count=wire.get("ssr_count"),
        software_trimming=wire.get("software_trimming", True),
        chip=ChipConfig(**chip) if chip is not None else ChipConfig(),
        encoding=wire.get("encoding", "positional"),
        label=wire.get("label"),
    )


def simulation_request_to_wire(request: SimulationRequest) -> dict:
    """A :class:`SimulationRequest` as a JSON-ready object."""
    return {
        "trace": _trace_to_wire(request.trace),
        "sampling": dataclasses.asdict(request.sampling),
        "configs": [
            [label, _config_to_wire(config)] for label, config in request.configs
        ],
    }


def simulation_request_from_wire(wire: dict) -> SimulationRequest:
    """Rebuild a :class:`SimulationRequest` from its wire object."""
    try:
        return SimulationRequest(
            trace=_trace_from_wire(wire["trace"]),
            configs=tuple(
                (label, _config_from_wire(config)) for label, config in wire["configs"]
            ),
            sampling=SamplingConfig(**wire["sampling"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(f"malformed sim_job payload: {error}") from error


def statistics_request_to_wire(request: StatisticsRequest) -> dict:
    """A :class:`StatisticsRequest` as a JSON-ready object."""
    return {
        "statistic": request.statistic,
        "trace": _trace_to_wire(request.trace),
        "samples_per_layer": request.samples_per_layer,
    }


def statistics_request_from_wire(wire: dict) -> StatisticsRequest:
    """Rebuild a :class:`StatisticsRequest` from its wire object."""
    try:
        return StatisticsRequest(
            statistic=wire["statistic"],
            trace=_trace_from_wire(wire["trace"]),
            samples_per_layer=wire["samples_per_layer"],
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(f"malformed stat_job payload: {error}") from error


# --------------------------------------------------------- typed internal jobs
@dataclass(frozen=True)
class SimulationJobRequest:
    """One planned config-group simulation, dispatchable over the wire.

    Wraps a runtime :class:`SimulationRequest`; the worker executes it
    through the normal :func:`repro.runtime.engine.simulate` funnel, so the
    results land in the shared cache under their planned keys.  The response
    payload carries only counters — the cache *is* the data channel.
    """

    request: SimulationRequest

    op = "sim_job"

    def key(self) -> str:
        """Content hash: the cache keys of the underlying simulation units."""
        return fingerprint(
            {"op": self.op, "units": sorted(self.request.keys().values())}
        )

    def describe(self) -> str:
        return (
            f"sim_job {self.request.trace.network} "
            f"({len(self.request.configs)} configs)"
        )

    def to_message(self) -> dict:
        return {"op": self.op, "request": simulation_request_to_wire(self.request)}


@dataclass(frozen=True)
class StatisticsJobRequest:
    """One planned per-network statistics pass, dispatchable over the wire."""

    request: StatisticsRequest

    op = "stat_job"

    def key(self) -> str:
        return fingerprint({"op": self.op, "unit": self.request.key()})

    def describe(self) -> str:
        return f"stat_job {self.request.statistic} {self.request.trace.network}"

    def to_message(self) -> dict:
        return {"op": self.op, "request": statistics_request_to_wire(self.request)}


def parse_internal_request(message: dict) -> SimulationJobRequest | StatisticsJobRequest:
    """Parse a coordinator-sent internal job op into its typed request."""
    op = message.get("op")
    wire = message.get("request")
    if not isinstance(wire, dict):
        raise ProtocolError(f"{op} requires a request object")
    if op == "sim_job":
        return SimulationJobRequest(request=simulation_request_from_wire(wire))
    if op == "stat_job":
        request = statistics_request_from_wire(wire)
        from repro.runtime.engine import STATISTICS

        if request.statistic not in STATISTICS:
            raise ProtocolError(f"unknown statistic {request.statistic!r}")
        return StatisticsJobRequest(request=request)
    raise ProtocolError(
        f"unknown internal op {op!r}; internal ops: {', '.join(INTERNAL_JOB_OPS)}"
    )
