"""Plain-text table rendering shared by the experiment harness and examples."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_percent", "format_ratio"]


def format_percent(value: float, digits: int = 1) -> str:
    """Render a fraction as a percentage string (``0.078`` → ``"7.8%"``)."""
    return f"{100.0 * value:.{digits}f}%"


def format_ratio(value: float, digits: int = 2) -> str:
    """Render a ratio with an ``x`` suffix (``2.59`` → ``"2.59x"``)."""
    return f"{value:.{digits}f}x"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table.

    Cells are converted with ``str``; numeric alignment is right, text alignment
    is left (based on the column's header row being text).
    """
    if not headers:
        raise ValueError("headers must not be empty")
    str_rows = [[str(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers: {row}"
            )
    widths = [
        max(len(str(headers[col])), *(len(row[col]) for row in str_rows)) if str_rows else len(str(headers[col]))
        for col in range(len(headers))
    ]

    def render_row(cells: Sequence[str]) -> str:
        padded = []
        for col, cell in enumerate(cells):
            if col == 0:
                padded.append(cell.ljust(widths[col]))
            else:
                padded.append(cell.rjust(widths[col]))
        return "  ".join(padded)

    separator = "  ".join("-" * width for width in widths)
    lines = [render_row([str(h) for h in headers]), separator]
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)
