"""Oneffset (essential bit) encoding.

The Pragmatic representation of a neuron is an explicit list of the powers of two
that make up its magnitude, which the paper calls *oneffsets*.  For example the
value ``5.5 = 0101.1₂`` becomes ``(2, 0, -1)``; in integer LSB units the value
``101₂ = 5`` becomes ``(2, 0)``.

The hardware streams one oneffset per neuron per cycle, most work being saved when
the magnitudes contain few set bits.  Each streamed oneffset carries a 4-bit power
and an end-of-neuron marker, modelled here by :class:`OneffsetStream`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.numerics.fixedpoint import bit_matrix, popcount

__all__ = [
    "encode_oneffsets",
    "decode_oneffsets",
    "encode_array",
    "essential_bit_counts",
    "essential_bit_fraction",
    "OneffsetStream",
]


def encode_oneffsets(value: int, ascending: bool = True) -> tuple[int, ...]:
    """Return the bit positions set in ``|value|``.

    Parameters
    ----------
    value:
        Integer whose magnitude is encoded.
    ascending:
        When True (the hardware order used by the two-stage shifting control of
        Figure 7) positions are returned least-significant first; otherwise
        most-significant first.
    """
    magnitude = abs(int(value))
    positions = []
    bit = 0
    while magnitude:
        if magnitude & 1:
            positions.append(bit)
        magnitude >>= 1
        bit += 1
    if not ascending:
        positions.reverse()
    return tuple(positions)


def decode_oneffsets(offsets: tuple[int, ...] | list[int]) -> int:
    """Reconstruct the magnitude from a list of bit positions."""
    value = 0
    seen: set[int] = set()
    for offset in offsets:
        if offset < 0:
            raise ValueError(f"oneffset positions must be non-negative, got {offset}")
        if offset in seen:
            raise ValueError(f"duplicate oneffset position {offset}")
        seen.add(offset)
        value += 1 << int(offset)
    return value


def encode_array(values: np.ndarray, bits: int = 16) -> list[tuple[int, ...]]:
    """Encode every magnitude of ``values`` (flattened) as an oneffset tuple."""
    flat = np.abs(np.asarray(values, dtype=np.int64)).ravel()
    limit = (1 << bits) - 1
    if flat.size and int(flat.max()) > limit:
        raise ValueError(f"value {int(flat.max())} does not fit in {bits} bits")
    return [encode_oneffsets(int(v)) for v in flat]


def essential_bit_counts(values: np.ndarray, bits: int = 16) -> np.ndarray:
    """Number of essential bits (oneffsets) of each magnitude."""
    return popcount(values, bits=bits)


def essential_bit_fraction(
    values: np.ndarray, bits: int = 16, nonzero_only: bool = False
) -> float:
    """Average fraction of non-zero bits per neuron (the Table I statistic).

    Parameters
    ----------
    values:
        Integer magnitudes in the storage representation.
    bits:
        Storage width (16 for fixed-point, 8 for the quantized representation).
    nonzero_only:
        When True, the average is taken over non-zero neurons only (the "NZ"
        rows of Table I); otherwise over all neurons (the "All" rows).
    """
    arr = np.abs(np.asarray(values, dtype=np.int64)).ravel()
    if arr.size == 0:
        raise ValueError("cannot compute essential bit fraction of an empty array")
    if nonzero_only:
        arr = arr[arr != 0]
        if arr.size == 0:
            return 0.0
    counts = popcount(arr, bits=bits)
    return float(counts.mean() / bits)


@dataclass(frozen=True)
class OneffsetStream:
    """The serial wire-level encoding of one neuron's oneffsets.

    Each entry is a ``(pow, eon)`` pair: ``pow`` is the bit position (4 bits wide
    for a 16-bit representation) and ``eon`` is the end-of-neuron marker that is
    set on the last entry.  A zero-valued neuron is transmitted as a single
    ``(0, eon=1)`` null entry whose term is suppressed by the PIP's AND gate.
    """

    entries: tuple[tuple[int, bool], ...]

    @classmethod
    def from_value(cls, value: int, bits: int = 16) -> "OneffsetStream":
        """Encode ``value`` the way the oneffset generator serializes it."""
        magnitude = abs(int(value))
        if magnitude >= (1 << bits):
            raise ValueError(f"value {value} does not fit in {bits} bits")
        offsets = encode_oneffsets(magnitude, ascending=True)
        if not offsets:
            return cls(entries=((0, True),))
        entries = tuple(
            (offset, index == len(offsets) - 1) for index, offset in enumerate(offsets)
        )
        return cls(entries=entries)

    @property
    def is_null(self) -> bool:
        """True when the stream encodes a zero-valued neuron."""
        return len(self.entries) == 1 and self.entries[0][1] and self.value == 0

    @property
    def value(self) -> int:
        """Magnitude reconstructed from the stream."""
        offsets = [pow_ for pow_, _ in self.entries]
        if len(self.entries) == 1 and self.entries[0] == (0, True):
            # Could be a genuine value of 1 or the null encoding of 0.  The null
            # encoding is only produced by from_value(0); a genuine 1 is encoded as
            # the same wire pattern, so reconstruct 1 unless flagged otherwise.
            # Disambiguation is handled by the PIP through the null-term AND gate,
            # which is driven by a separate zero flag in the dispatcher; here we
            # keep the conservative reconstruction used by the functional model.
            return decode_oneffsets(offsets)
        return decode_oneffsets(offsets)

    @property
    def cycles(self) -> int:
        """Cycles needed to stream the neuron (one oneffset per cycle, minimum 1)."""
        return max(1, len(self.entries))

    def __iter__(self):
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)


def bit_planes(values: np.ndarray, bits: int = 16) -> np.ndarray:
    """Convenience re-export of :func:`repro.numerics.fixedpoint.bit_matrix`."""
    return bit_matrix(values, bits=bits)
