"""Worker mode: a serve process that executes planned jobs for a coordinator.

``python -m repro serve --worker`` runs a :class:`WorkerService` — the plain
:class:`~repro.serve.service.ExperimentService` (same queue, same worker
pool, same public protocol) extended with the cluster-facing surface
(``docs/cluster.md``):

* a **registration handshake**: after authenticating (worker mode *requires*
  a shared auth token), a coordinator sends ``{"op": "register"}`` and gets
  back the worker's identity (pid, capacity).  Only registered connections
  may submit the internal job ops — a client that somehow reaches a worker's
  port can speak the public protocol but cannot inject planned jobs.
* the **internal job ops** ``sim_job``/``stat_job``
  (:mod:`repro.cluster.plan`): primitive planned jobs whose results travel
  through the shared cache backend, not the wire — the response carries only
  per-job ``RunStats`` counters for the coordinator to merge.
* a **shared-directory cache**: worker mode stores results through
  :class:`~repro.runtime.backends.SharedDirectoryBackend`, so sibling
  workers and warm-assembly experiment jobs observe each other's stores.

Everything else — coalescing, priorities, streaming progress, cooperative
cancellation — is inherited unchanged, which is the point: a worker is just a
serve process that learned two more ops.
"""

from __future__ import annotations

import asyncio
import os
from pathlib import Path

from repro.runtime import ResultCache, RuntimeSession, SharedDirectoryBackend, simulate
from repro.runtime.engine import analyze
from repro.runtime.session import use_session
from repro.serve.protocol import JOB_OPS, ProtocolError, ServeRequest
from repro.serve.service import ConnectionContext, ExperimentService
from repro.serve.workers import execute_request, job_session
from repro.cluster.plan import (
    INTERNAL_JOB_OPS,
    SimulationJobRequest,
    StatisticsJobRequest,
    parse_internal_request,
)

__all__ = ["WorkerService", "execute_worker_request", "worker_session"]


def worker_session(
    cache_dir: str | Path | None,
    trace_dir: str | Path | None = None,
    no_trace_cache: bool = False,
    cache_backend: object | None = None,
) -> RuntimeSession:
    """A session whose cache is safe to share with sibling worker processes.

    ``cache_backend`` (a ``--cache-backend`` spec such as
    ``remote://host:port``, see ``docs/cachenet.md``) replaces the
    shared-directory result tier with the network cache tier — a worker then
    runs with zero local filesystem cache while still observing every sibling
    host's stores.  The trace store is wired through the zero-copy trace
    fabric (:mod:`repro.runtime.trace_cache`) against the same resolution
    rule as :func:`~repro.runtime.session.configure_session` — by default a
    ``traces/`` directory beside the shared cache, so every worker on the
    host maps one physical copy of each trace tensor.
    """
    from repro.runtime.session import resolve_trace_dir

    resolved = resolve_trace_dir(cache_dir, trace_dir, no_trace_cache)
    traces = None
    if resolved is not None:
        from repro.runtime import TraceArtifactStore, TraceStore

        traces = TraceStore(artifacts=TraceArtifactStore(resolved))
    if cache_backend is not None:
        from repro.cachenet.backend import resolve_backend

        return RuntimeSession(
            cache=ResultCache(backend=resolve_backend(cache_backend)), traces=traces
        )
    if cache_dir is None:
        return RuntimeSession(cache=ResultCache(), traces=traces)
    return RuntimeSession(
        cache=ResultCache(backend=SharedDirectoryBackend(cache_dir)), traces=traces
    )


def execute_worker_request(request, shared: RuntimeSession, progress=None):
    """Execute one request, including the internal planned-job types.

    ``sim_job``/``stat_job`` run through the exact engine funnels the local
    scheduler uses (:func:`~repro.runtime.engine.simulate` /
    :func:`~repro.runtime.engine.analyze`), under a per-job stats view of the
    shared session — results land in the shared cache under their planned
    keys and only the counters travel back.  Everything else falls through to
    the standard :func:`~repro.serve.workers.execute_request`.
    """
    if isinstance(request, SimulationJobRequest):
        if progress is not None:
            progress.checkpoint()
        view = job_session(shared, progress)
        with use_session(view):
            results = simulate(request.request, session=view)
        payload = {
            "kind": "sim_job",
            "network": request.request.trace.network,
            "configs": len(results),
        }
        return payload, view.stats().as_dict()
    if isinstance(request, StatisticsJobRequest):
        if progress is not None:
            progress.checkpoint()
        view = job_session(shared, progress)
        with use_session(view):
            analyze(request.request, session=view)
        payload = {
            "kind": "stat_job",
            "statistic": request.request.statistic,
            "network": request.request.trace.network,
        }
        return payload, view.stats().as_dict()
    return execute_request(request, shared, progress)


class WorkerService(ExperimentService):
    """An :class:`ExperimentService` that also executes planned cluster jobs.

    Parameters mirror the base service; ``auth_token`` is **mandatory** —
    worker registration is the trust boundary of the cluster, and an
    unauthenticated worker would accept planned jobs from anyone who can
    reach its port.
    """

    job_ops = JOB_OPS + INTERNAL_JOB_OPS

    def __init__(self, *args, auth_token: str | None = None, **kwargs) -> None:
        if not auth_token:
            raise ValueError(
                "worker mode requires an auth token "
                "(--auth-token or REPRO_SERVE_TOKEN)"
            )
        kwargs.setdefault("executor", execute_worker_request)
        super().__init__(*args, auth_token=auth_token, **kwargs)
        self.registrations = 0

    def parse_job(self, message: dict) -> ServeRequest:
        if message.get("op") in INTERNAL_JOB_OPS:
            return parse_internal_request(message)
        return super().parse_job(message)

    def registration_info(self) -> dict:
        """The identity payload a registering coordinator receives."""
        return {
            "event": "registered",
            "pid": os.getpid(),
            "workers": self.pool.workers,
            "cache_dir": str(self.session.cache.directory)
            if self.session.cache.directory
            else None,
        }

    async def handle_message(
        self, message: dict, send, tickets: list | None = None,
        context: ConnectionContext | None = None,
    ) -> bool:
        if context is None:
            context = ConnectionContext.local()
            if tickets is not None:
                context.tickets = tickets
        op = message.get("op")
        client_id = message.get("id")

        def reply(payload: dict) -> None:
            send({"id": client_id, **payload} if client_id is not None else payload)

        if not context.authenticated:
            # Let the base service run the auth gate (it closes the
            # connection on anything but a valid ``auth`` op) — registration
            # and internal ops are only reachable once that passed.
            return await super().handle_message(message, send, context=context)
        if op == "register":
            context.registered = True
            self.registrations += 1
            reply(self.registration_info())
            return True
        if op == "prewarm":
            if not context.registered:
                reply({"event": "error", "error": "prewarm requires a registered coordinator"})
                return True
            artifacts = getattr(self.session.traces, "artifacts", None)
            warmed = {"tensors": 0, "calibrations": 0}
            if artifacts is not None:
                # Manifest refresh + mmap opens are blocking I/O; keep the
                # event loop responsive while the fabric warms.
                warmed = await asyncio.to_thread(artifacts.prewarm)
            reply({"event": "prewarmed", **warmed})
            return True
        if op in INTERNAL_JOB_OPS and not context.registered:
            reply({"event": "error", "error": f"{op} requires a registered coordinator"})
            return True
        return await super().handle_message(message, send, context=context)
