"""Table I — essential (non-zero) bit content of the neuron streams."""

from __future__ import annotations

from repro.analysis.essential_bits import essential_bit_table
from repro.analysis.tables import format_percent
from repro.experiments.base import ExperimentResult, Preset, get_preset

__all__ = ["run"]


def run(preset: str | Preset = "fast", seed: int = 0) -> ExperimentResult:
    """Reproduce Table I for both storage representations."""
    config = get_preset(preset)
    headers = [
        "network",
        "representation",
        "All (measured)",
        "All (paper)",
        "NZ (measured)",
        "NZ (paper)",
    ]
    rows: list[list[object]] = []
    metadata: dict[str, float] = {}
    for representation in ("fixed16", "quant8"):
        entries = essential_bit_table(
            representation=representation,
            networks=config.networks,
            samples_per_layer=config.samples_per_layer,
            seed=seed,
        )
        for entry in entries:
            rows.append(
                [
                    entry.network,
                    representation,
                    format_percent(entry.all_fraction),
                    format_percent(entry.paper_all_fraction)
                    if entry.paper_all_fraction is not None
                    else "-",
                    format_percent(entry.nonzero_fraction),
                    format_percent(entry.paper_nonzero_fraction)
                    if entry.paper_nonzero_fraction is not None
                    else "-",
                ]
            )
            metadata[f"{representation}:{entry.network}:all"] = entry.all_fraction
            metadata[f"{representation}:{entry.network}:nz"] = entry.nonzero_fraction
    notes = (
        "Synthetic traces are calibrated against the paper's NZ statistic for each\n"
        "representation (DESIGN.md §4); the All column follows from the calibrated\n"
        "zero fraction and the dense image-fed first layer."
    )
    return ExperimentResult(
        experiment="table1",
        title="Table I: average fraction of non-zero bits per neuron",
        headers=headers,
        rows=rows,
        notes=notes,
        metadata=metadata,
    )
