"""Golden-equivalence suite for the batched drain kernel.

The batched kernel (:mod:`repro.core.kernels`) replaces the cycle-by-cycle
drain scheduler on every hot path, so this module is the proof that nothing
changed numerically:

* the kernel reproduces ``_reference_drain_cycles`` (the pre-batch loop, kept
  as the executable specification) bit for bit, across random traces, both
  storage widths and every first-stage reach;
* :func:`repro.core.sweep.sweep_network` remains **bit-identical** (exact
  float equality, same sampling seed) to
  :class:`repro.core.accelerator.PragmaticAccelerator` over a randomized grid
  of chips, storage encodings, ``first_stage_bits``, SSR counts and both
  synchronization schemes;
* the optional numba backend flag degrades gracefully when numba is absent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.config import DEFAULT_CHIP, ChipConfig
from repro.arch.tiling import SamplingConfig
from repro.core.accelerator import PragmaticAccelerator, PragmaticConfig
from repro.core.kernels import (
    KERNEL_MAX_POSITIONS,
    batched_drain_cycles,
    drain_backend,
    pack_bit_planes,
    pack_drain_masks,
    packed_essential_terms,
)
from repro.core.scheduling import (
    _reference_drain_cycles,
    column_drain_cycles,
    essential_terms,
    step_drain_cycles,
)
from repro.core.software import SoftwareGuidance
from repro.core.sweep import SweepStats, sweep_network
from repro.core.variants import fig9_variants
from repro.nn.layers import ConvLayerSpec
from repro.nn.networks import Network
from repro.nn.precision import LayerPrecision
from repro.nn.traces import LayerTraceParams, NetworkTrace
from repro.numerics.fixedpoint import bit_matrix

#: A deliberately non-default chip so the grid covers structural variation.
SMALL_CHIP = ChipConfig(tiles=4, filters_per_tile=8, nm_row_bytes=256)


def random_trace(seed: int, storage_bits: int = 16) -> NetworkTrace:
    """A small random two-layer network with a deterministic trace."""
    rng = np.random.default_rng(seed)
    layers = tuple(
        ConvLayerSpec(
            name=f"l{index}",
            input_channels=int(rng.choice([8, 16, 24])),
            input_height=int(rng.integers(5, 9)),
            input_width=int(rng.integers(5, 9)),
            num_filters=int(rng.integers(2, 6)),
            filter_height=3,
            filter_width=3,
            stride=int(rng.choice([1, 2])),
            padding=1,
        )
        for index in range(2)
    )
    network = Network(name=f"rand{seed}", display_name=f"Random {seed}", layers=layers)
    precisions = tuple(
        LayerPrecision(
            msb=int(rng.integers(5, storage_bits - 1)), lsb=int(rng.integers(0, 3))
        )
        for _ in layers
    )
    params = tuple(
        LayerTraceParams(
            sigma=float(rng.uniform(10.0, 120.0)),
            zero_fraction=float(rng.uniform(0.2, 0.7)),
            max_magnitude=(1 << storage_bits) - 1,
        )
        for _ in layers
    )
    return NetworkTrace(
        network=network,
        precisions=precisions,
        params=params,
        seed=seed,
        storage_bits=storage_bits,
    )


def config_grid(chip: ChipConfig) -> dict[str, PragmaticConfig]:
    """Both sync schemes x first-stage widths x SSR counts x trimming."""
    configs: dict[str, PragmaticConfig] = {}
    for bits in (0, 1, 2, 4):
        configs[f"pallet-{bits}"] = PragmaticConfig(
            first_stage_bits=bits, synchronization="pallet", chip=chip
        )
    for ssr in (1, 3, None):
        label = "ideal" if ssr is None else str(ssr)
        configs[f"column-{label}"] = PragmaticConfig(
            first_stage_bits=2, synchronization="column", ssr_count=ssr, chip=chip
        )
    configs["pallet-2-fp"] = PragmaticConfig(
        first_stage_bits=2, synchronization="pallet", software_trimming=False, chip=chip
    )
    configs["column-1-fp"] = PragmaticConfig(
        first_stage_bits=1,
        synchronization="column",
        ssr_count=1,
        software_trimming=False,
        chip=chip,
    )
    return configs


def random_columns(rng, columns=40, lanes=16, value_bits=16, density=0.4):
    values = rng.integers(0, 1 << value_bits, size=(columns, lanes))
    values[rng.random(values.shape) < (1 - density)] = 0
    return values


class TestKernelMatchesReference:
    """The batched kernel against the pre-batch cycle-by-cycle loop."""

    @pytest.mark.parametrize("first_stage_bits", range(5))
    @pytest.mark.parametrize("seed", range(4))
    def test_bit_identical_to_reference_loop(self, seed, first_stage_bits):
        rng = np.random.default_rng(seed)
        values = random_columns(
            rng,
            columns=int(rng.integers(10, 60)),
            lanes=int(rng.integers(2, 17)),
            density=float(rng.uniform(0.1, 0.9)),
        )
        reference = _reference_drain_cycles(
            bit_matrix(values, bits=16), first_stage_bits
        )
        batched = batched_drain_cycles(
            pack_drain_masks(values, 16), (1 << first_stage_bits,)
        )[0]
        np.testing.assert_array_equal(batched, reference)
        np.testing.assert_array_equal(
            column_drain_cycles(bit_matrix(values, bits=16), first_stage_bits),
            reference,
        )

    @pytest.mark.parametrize("storage_bits", (8, 16))
    def test_step_drain_matches_reference_on_trace_samples(self, storage_bits):
        """The exact drain-group computation of a sweep, against the old path."""
        trace = random_trace(11, storage_bits=storage_bits)
        values = trace.sample_layer_values(0, 2 * 16 * 16).reshape(2, 1, 16, 16)
        for trimming in (True, False):
            guidance = SoftwareGuidance.from_trace(trace, enabled=trimming)
            trimmed = guidance.apply(values, 0)
            for first_stage_bits in range(5):
                reference = _reference_drain_cycles(
                    bit_matrix(trimmed, bits=storage_bits), first_stage_bits
                )
                np.testing.assert_array_equal(
                    step_drain_cycles(trimmed, first_stage_bits, storage_bits),
                    reference,
                )

    def test_multi_reach_call_equals_single_reach_calls(self):
        rng = np.random.default_rng(3)
        masks = pack_drain_masks(random_columns(rng, columns=80), 16)
        reaches = [1, 2, 4, 8, 16]
        together = batched_drain_cycles(masks, reaches)
        for slot, reach in enumerate(reaches):
            np.testing.assert_array_equal(
                together[slot], batched_drain_cycles(masks, (reach,))[0]
            )

    def test_packed_essential_terms_matches_bit_matrix_sum(self):
        rng = np.random.default_rng(4)
        values = random_columns(rng)
        masks = pack_drain_masks(values, 16)
        assert packed_essential_terms(masks) == float(
            bit_matrix(values, bits=16).sum()
        )
        assert essential_terms(values, 16) == packed_essential_terms(masks)

    def test_pack_bit_planes_round_trips_masks(self):
        rng = np.random.default_rng(5)
        values = random_columns(rng, value_bits=12)
        planes = bit_matrix(values, bits=12)
        np.testing.assert_array_equal(
            pack_bit_planes(planes), pack_drain_masks(values, 12)
        )

    def test_wide_position_planes_fall_back_to_reference(self):
        """Planes beyond the 32-position packed width still work via fallback."""
        rng = np.random.default_rng(6)
        planes = rng.random((20, 8, KERNEL_MAX_POSITIONS + 1)) < 0.3
        np.testing.assert_array_equal(
            column_drain_cycles(planes, 1), _reference_drain_cycles(planes, 1)
        )

    @pytest.mark.parametrize("first_stage_bits", range(5))
    def test_csd_max_span_column_takes_packed_path(self, first_stage_bits):
        """17-position CSD planes now run the packed kernel, not the bailout.

        0xFFFF encodes as +2^16 - 2^0 under CSD: a single column of such
        values spans the full 17 positions, the exact shape that used to hit
        the >16-position reference fallback.  Pin kernel == reference on it,
        and on a dense random batch of 17-position planes.
        """
        from repro.numerics.encodings import get_encoding

        rng = np.random.default_rng(7)
        values = rng.integers(0, 1 << 16, size=(40, 16))
        values[0, :] = 0xFFFF  # the synthetic max-span column
        masks = get_encoding("csd").term_masks(values, bits=16)
        assert masks.dtype == np.uint32
        positions = 17
        planes = (
            (masks[..., None] >> np.arange(positions, dtype=np.uint32)) & 1
        ).astype(bool)
        reference = _reference_drain_cycles(planes, first_stage_bits)
        batched = batched_drain_cycles(masks, (1 << first_stage_bits,))[0]
        np.testing.assert_array_equal(batched, reference)
        np.testing.assert_array_equal(
            column_drain_cycles(planes, first_stage_bits), reference
        )
        np.testing.assert_array_equal(pack_bit_planes(planes), masks)

    def test_uint32_packing_round_trips(self):
        """pack/unpack helpers agree for storage widths above 16."""
        rng = np.random.default_rng(8)
        values = rng.integers(0, 1 << 24, size=(30, 8))
        masks = pack_drain_masks(values, 24)
        assert masks.dtype == np.uint32
        np.testing.assert_array_equal(masks, values.astype(np.uint32))
        planes = bit_matrix(values, bits=24)
        np.testing.assert_array_equal(pack_bit_planes(planes), masks)
        assert packed_essential_terms(masks) == float(planes.sum())

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            pack_drain_masks(np.array([1 << 12]), 12)
        with pytest.raises(ValueError):
            pack_drain_masks(np.array([1]), KERNEL_MAX_POSITIONS + 1)
        with pytest.raises(ValueError):
            batched_drain_cycles(np.zeros((2, 2), dtype=np.uint16), ())
        with pytest.raises(ValueError):
            batched_drain_cycles(np.zeros((2, 2), dtype=np.uint16), (0,))
        with pytest.raises(ValueError):
            pack_bit_planes(np.zeros((2, KERNEL_MAX_POSITIONS + 1), dtype=bool))


class TestGoldenSweepEquivalence:
    """sweep_network vs PragmaticAccelerator: exact equality, never approx."""

    @pytest.mark.parametrize(
        "seed,storage_bits,chip",
        [
            (0, 16, DEFAULT_CHIP),
            (1, 16, SMALL_CHIP),
            (2, 8, DEFAULT_CHIP),
            (3, 8, SMALL_CHIP),
            (4, 16, DEFAULT_CHIP),
        ],
    )
    def test_sweep_bit_identical_to_accelerator(self, seed, storage_bits, chip):
        trace = random_trace(seed, storage_bits=storage_bits)
        configs = config_grid(chip)
        sampling = SamplingConfig(max_pallets=3, seed=1000 + seed)
        stats = SweepStats()
        swept = sweep_network(trace, configs, sampling=sampling, stats=stats)
        assert stats.configs_simulated == len(configs)
        for label, config in configs.items():
            direct = PragmaticAccelerator(config).simulate_network(trace, sampling)
            assert swept[label].network == direct.network
            assert swept[label].accelerator == direct.accelerator
            # LayerResult is a frozen dataclass of floats: tuple equality is
            # exact bitwise float comparison, which is the whole point.
            assert swept[label].layers == direct.layers

    def test_fig9_variant_set_on_fast_sampling(self):
        """The golden check CI runs: the fig9 grid at fast-preset sampling."""
        trace = random_trace(7)
        configs = fig9_variants()
        sampling = SamplingConfig(max_pallets=6, seed=2024)
        swept = sweep_network(trace, configs, sampling=sampling)
        for label, config in configs.items():
            direct = PragmaticAccelerator(config).simulate_network(trace, sampling)
            assert swept[label].layers == direct.layers

    def test_exact_sampling_mode_stays_identical(self, tiny_trace):
        configs = config_grid(DEFAULT_CHIP)
        sampling = SamplingConfig(exact=True)
        swept = sweep_network(tiny_trace, configs, sampling=sampling)
        for label, config in configs.items():
            direct = PragmaticAccelerator(config).simulate_network(tiny_trace, sampling)
            assert swept[label].layers == direct.layers


class TestBackendFlag:
    """REPRO_DRAIN_BACKEND switches the frontier loop, never the results."""

    def test_default_backend_is_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_DRAIN_BACKEND", raising=False)
        assert drain_backend() == "numpy"

    def test_unknown_backend_value_falls_back_to_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_DRAIN_BACKEND", "cuda")
        assert drain_backend() == "numpy"

    def test_numba_request_degrades_gracefully_and_stays_identical(self, monkeypatch):
        """With numba missing the flag is a no-op; with it, results match."""
        rng = np.random.default_rng(8)
        values = random_columns(rng)
        masks = pack_drain_masks(values, 16)
        monkeypatch.delenv("REPRO_DRAIN_BACKEND", raising=False)
        baseline = batched_drain_cycles(masks, (1, 2, 4))
        monkeypatch.setenv("REPRO_DRAIN_BACKEND", "numba")
        assert drain_backend() in ("numpy", "numba")
        np.testing.assert_array_equal(batched_drain_cycles(masks, (1, 2, 4)), baseline)
