"""Tests for sessions and run statistics.

The serving layer reports per-request stats as dicts over the wire and
rebuilds them with ``RunStats.merge``, so the dict path and the
merge-after-``as_dict`` round trip are load-bearing contracts here.
"""

import threading

from repro.runtime import RunStats, RuntimeSession, current_session, use_session


def stats_with(hits=0, misses=0, stores=0, errors=0, sims=0, drains=0, built=0, reused=0):
    stats = RunStats()
    stats.cache.hits = hits
    stats.cache.misses = misses
    stats.cache.stores = stores
    stats.cache.errors = errors
    stats.sweep.configs_simulated = sims
    stats.sweep.drain_groups_computed = drains
    stats.traces_built = built
    stats.traces_reused = reused
    return stats


class TestRunStatsMerge:
    def test_merge_accepts_runstats(self):
        total = stats_with(hits=1, sims=2, built=1)
        total.merge(stats_with(hits=2, misses=3, sims=4, reused=5))
        assert total.cache.hits == 3
        assert total.cache.misses == 3
        assert total.sweep.configs_simulated == 6
        assert total.traces_built == 1
        assert total.traces_reused == 5

    def test_merge_accepts_dict(self):
        # The wire path: workers and serve responses ship as_dict() payloads.
        total = stats_with(stores=1, drains=2)
        total.merge(
            {
                "cache": {"hits": 4, "stores": 1},
                "sweep": {"drain_groups_computed": 3},
                "traces_built": 2,
                "traces_reused": 7,
            }
        )
        assert total.cache.hits == 4
        assert total.cache.stores == 2
        assert total.sweep.drain_groups_computed == 5
        assert total.traces_built == 2
        assert total.traces_reused == 7

    def test_merge_accepts_partial_and_empty_dicts(self):
        total = stats_with(hits=1, sims=1)
        total.merge({})
        total.merge({"cache": {}})
        assert total.cache.hits == 1
        assert total.sweep.configs_simulated == 1

    def test_merge_after_as_dict_round_trip(self):
        original = stats_with(hits=3, misses=2, stores=1, errors=1, sims=9, drains=4, built=2, reused=6)
        rebuilt = RunStats()
        rebuilt.merge(original.as_dict())
        assert rebuilt.as_dict() == original.as_dict()
        # Merging the round-tripped dict again doubles every counter.
        rebuilt.merge(original.as_dict())
        assert rebuilt.cache.hits == 6
        assert rebuilt.sweep.configs_simulated == 18
        assert rebuilt.traces_reused == 12

    def test_summary_mentions_every_counter_family(self):
        text = stats_with(hits=1, sims=2, built=3).summary()
        assert "cache 1 hits" in text
        assert "simulated 2 configs" in text
        assert "traces 3 built" in text


class TestThreadScopedSessions:
    def test_use_session_overrides_only_the_calling_thread(self):
        outer = current_session()
        inner = RuntimeSession()
        seen_in_thread = []

        def observe():
            seen_in_thread.append(current_session())

        with use_session(inner):
            assert current_session() is inner
            worker = threading.Thread(target=observe)
            worker.start()
            worker.join()
        assert current_session() is outer
        # The other thread saw the process default, not this thread's override.
        assert seen_in_thread == [outer]

    def test_use_session_nests(self):
        first, second = RuntimeSession(), RuntimeSession()
        with use_session(first):
            with use_session(second):
                assert current_session() is second
            assert current_session() is first

    def test_concurrent_threads_hold_distinct_sessions(self):
        sessions = [RuntimeSession() for _ in range(4)]
        observed = {}
        barrier = threading.Barrier(len(sessions))

        def work(index):
            with use_session(sessions[index]):
                barrier.wait()  # all overrides active simultaneously
                observed[index] = current_session()

        threads = [threading.Thread(target=work, args=(i,)) for i in range(len(sessions))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(observed[i] is sessions[i] for i in range(len(sessions)))
