"""Registry of oneffset encoding families.

The paper's conclusion notes that Pragmatic applies to *any* explicit
power-of-two representation of the neurons: the accelerator streams signed
terms, so the oneffset generator is the only block that changes between
representations.  This module makes that observation first-class.  An
:class:`Encoding` turns stored neuron magnitudes into signed power-of-two
terms — a scalar generator for the wire-level models and a vectorized
term-mask form for the packed drain kernels — and a registry
(:func:`register_encoding` / :func:`get_encoding`, mirroring
:mod:`repro.runtime.backends`) lets every stratum of the stack select one by
name.

Four encodings ship:

``positional``
    The paper's oneffset representation: one ``+`` term per set bit of the
    magnitude.  Bit-identical to the pre-registry behaviour.
``csd``
    Canonical signed digit (non-adjacent form), delegating to
    :mod:`repro.numerics.csd` — minimal signed terms, never two adjacent
    positions, may use position ``bits`` (one above the storage width).
``hese``
    Signed-digit adjacent-term pairing in the term-revealing (HESE) style:
    each maximal run of consecutive set bits ``[s, e]`` with ``e > s``
    becomes the pair ``(-2^s, +2^(e+1))``; isolated set bits stay single
    ``+`` terms.  No carry propagates across runs, so the encoding is a
    purely local rewrite — cheaper to generate than CSD while removing the
    same long runs.
``binary``
    1-bit sign-only traces: any non-zero magnitude becomes the single term
    ``+2^0``.  Lossy by construction (``represent`` collapses magnitudes to
    ``min(1, |v|)``); it models binarized-network traffic where essential-term
    skipping degenerates to zero-skipping.

Every encoding produces terms with pairwise-distinct positions, so the
vectorized term masks carry one bit per term and the packed drain kernels of
:mod:`repro.core.kernels` schedule any registered encoding unchanged.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.numerics.csd import csd_term_counts, encode_csd

__all__ = [
    "Encoding",
    "DEFAULT_ENCODING",
    "register_encoding",
    "get_encoding",
    "encoding_names",
]

#: The encoding every pre-registry code path used (and every default uses).
DEFAULT_ENCODING = "positional"


class Encoding(abc.ABC):
    """One explicit power-of-two representation of neuron magnitudes.

    Subclasses implement the scalar term generator (:meth:`terms`) and the
    vectorized term masks (:meth:`term_masks`); decoding, term counting and
    the shared validation ride on those.  Term positions of one value must be
    pairwise distinct — the mask form carries one bit per term.
    """

    #: Registry name of the encoding.
    name: str = ""
    #: Whether the encoding emits negative terms (the PIP's negation input).
    signed: bool = False
    #: Whether ``decode(terms(v)) == |v|`` for every representable value.
    lossless: bool = True

    @abc.abstractmethod
    def terms(self, value: int, bits: int = 16) -> tuple[tuple[int, int], ...]:
        """Signed terms of ``|value|`` as ``(sign, position)`` pairs, ascending.

        ``sign`` is ``+1`` or ``-1``; positions are pairwise distinct and at
        most :meth:`max_position`.  Zero encodes as the empty tuple.
        """

    @abc.abstractmethod
    def term_masks(self, values: np.ndarray, bits: int = 16) -> np.ndarray:
        """Bit mask of term positions for every magnitude of ``values``.

        Shape-preserving; dtype ``uint16`` when every position fits in 16
        bits, ``uint32`` otherwise (CSD/HESE may use position ``bits``).  The
        sign of a term does not affect drain timing — the PIP negates for
        free — so the mask is all the packed kernels need.
        """

    def represent(self, value: int, bits: int = 16) -> int:
        """The magnitude the encoding actually represents (lossy encodings
        collapse it); the decode target of :meth:`terms`."""
        return self._validate(value, bits)

    def decode(self, terms: tuple[tuple[int, int], ...]) -> int:
        """Reconstruct the represented magnitude from ``(sign, position)`` terms."""
        value = 0
        seen: set[int] = set()
        for sign, position in terms:
            if sign not in (-1, 1):
                raise ValueError(f"term signs must be +1 or -1, got {sign}")
            if position < 0:
                raise ValueError(f"term positions must be non-negative, got {position}")
            if position in seen:
                raise ValueError(f"duplicate term position {position}")
            seen.add(position)
            value += sign * (1 << position)
        return value

    def term_counts(self, values: np.ndarray, bits: int = 16) -> np.ndarray:
        """Number of terms per magnitude (popcount of :meth:`term_masks`)."""
        masks = self.term_masks(values, bits=bits).astype(np.uint32)
        counts = np.zeros(masks.shape, dtype=np.int64)
        while masks.any():
            counts += (masks & 1).astype(np.int64)
            masks >>= 1
        return counts

    def max_terms(self, bits: int = 16) -> int:
        """Upper bound on the term count of any ``bits``-wide magnitude."""
        return bits

    def max_position(self, bits: int = 16) -> int:
        """Highest term position any ``bits``-wide magnitude can use."""
        return bits - 1

    def _validate(self, value: int, bits: int) -> int:
        magnitude = abs(int(value))
        if magnitude >= (1 << bits):
            raise ValueError(f"value {value} does not fit in {bits} bits")
        return magnitude

    def _validated_magnitudes(self, values: np.ndarray, bits: int) -> np.ndarray:
        magnitudes = np.abs(np.asarray(values, dtype=np.int64))
        limit = (1 << bits) - 1
        if magnitudes.size and int(magnitudes.max()) > limit:
            raise ValueError(
                f"magnitude {int(magnitudes.max())} does not fit in {bits} bits"
            )
        return magnitudes

    def _mask_dtype(self, bits: int):
        return np.uint16 if self.max_position(bits) < 16 else np.uint32


class PositionalEncoding(Encoding):
    """The paper's oneffset representation: one ``+`` term per set bit."""

    name = "positional"
    signed = False
    lossless = True

    def terms(self, value: int, bits: int = 16) -> tuple[tuple[int, int], ...]:
        magnitude = self._validate(value, bits)
        out = []
        position = 0
        while magnitude:
            if magnitude & 1:
                out.append((1, position))
            magnitude >>= 1
            position += 1
        return tuple(out)

    def term_masks(self, values: np.ndarray, bits: int = 16) -> np.ndarray:
        # The magnitude *is* its own positional term mask — identical to
        # repro.core.kernels.pack_drain_masks (the bit-identity anchor).
        return self._validated_magnitudes(values, bits).astype(self._mask_dtype(bits))


class CsdEncoding(Encoding):
    """Canonical signed digit (NAF), delegating to :mod:`repro.numerics.csd`."""

    name = "csd"
    signed = True
    lossless = True

    def terms(self, value: int, bits: int = 16) -> tuple[tuple[int, int], ...]:
        self._validate(value, bits)
        return encode_csd(int(abs(value)), bits=bits)

    def term_masks(self, values: np.ndarray, bits: int = 16) -> np.ndarray:
        magnitudes = self._validated_magnitudes(values, bits)
        masks = np.zeros(magnitudes.shape, dtype=np.uint32)
        # Same digit recurrence as csd_term_counts, accumulating positions.
        for position in range(bits + 2):
            if not magnitudes.any():
                break
            odd = (magnitudes & 1).astype(bool)
            remainder = np.where(magnitudes % 4 == 1, 1, -1)
            masks |= np.where(odd, np.uint32(1) << np.uint32(position), 0).astype(
                np.uint32
            )
            magnitudes = np.where(odd, magnitudes - remainder, magnitudes) >> 1
        return masks

    def term_counts(self, values: np.ndarray, bits: int = 16) -> np.ndarray:
        # The dedicated vectorized counter avoids materializing masks.
        self._validated_magnitudes(values, bits)
        return csd_term_counts(values, bits=bits)

    def max_terms(self, bits: int = 16) -> int:
        # NAF never uses two adjacent positions out of bits + 1 available.
        return bits // 2 + 1

    def max_position(self, bits: int = 16) -> int:
        return bits


class HeseEncoding(Encoding):
    """Signed-digit adjacent-term pairing (HESE / term-revealing style).

    Each maximal run of consecutive set bits ``[s, e]`` with ``e > s``
    becomes ``(-2^s, +2^(e+1))``; an isolated set bit stays ``+2^s``.  The
    rewrite is purely local (no carry crosses the zero between runs), so the
    ``+`` term of one run — landing on that zero — can never collide with the
    next run's ``-`` term.
    """

    name = "hese"
    signed = True
    lossless = True

    def terms(self, value: int, bits: int = 16) -> tuple[tuple[int, int], ...]:
        magnitude = self._validate(value, bits)
        out: list[tuple[int, int]] = []
        position = 0
        while magnitude:
            if magnitude & 1:
                start = position
                while magnitude & 1:
                    magnitude >>= 1
                    position += 1
                if position - start == 1:
                    out.append((1, start))
                else:
                    out.append((-1, start))
                    out.append((1, position))
            else:
                magnitude >>= 1
                position += 1
        return tuple(out)

    def term_masks(self, values: np.ndarray, bits: int = 16) -> np.ndarray:
        m = self._validated_magnitudes(values, bits)
        starts = m & ~(m << 1)  # lowest bit of every run
        ends = m & ~(m >> 1)  # highest bit of every run
        isolated = starts & ends  # runs of length one
        masks = isolated | (starts & ~isolated) | ((ends & ~isolated) << 1)
        return masks.astype(np.uint32)

    def max_terms(self, bits: int = 16) -> int:
        # Worst case is the run pattern 11011011…: two terms per three bits.
        return 2 * (bits // 3) + min(bits % 3, 2)

    def max_position(self, bits: int = 16) -> int:
        return bits


class BinaryEncoding(Encoding):
    """1-bit sign-only traces: non-zero magnitudes collapse to ``+2^0``.

    Models binarized-network traffic (PAPERS.md: Bitwise Neural Networks).
    Essential-term skipping degenerates: every non-zero neuron costs exactly
    one term, so Pragmatic's advantage reduces to zero-skipping.
    """

    name = "binary"
    signed = False
    lossless = False

    def terms(self, value: int, bits: int = 16) -> tuple[tuple[int, int], ...]:
        magnitude = self._validate(value, bits)
        return ((1, 0),) if magnitude else ()

    def term_masks(self, values: np.ndarray, bits: int = 16) -> np.ndarray:
        magnitudes = self._validated_magnitudes(values, bits)
        return (magnitudes != 0).astype(np.uint16)

    def represent(self, value: int, bits: int = 16) -> int:
        return min(1, self._validate(value, bits))

    def max_terms(self, bits: int = 16) -> int:
        return 1

    def max_position(self, bits: int = 16) -> int:
        return 0


_REGISTRY: dict[str, Encoding] = {}


def register_encoding(encoding: Encoding, replace: bool = False) -> Encoding:
    """Register an encoding under its ``name`` (mirrors the runtime backends).

    Raises :class:`ValueError` on unnamed encodings and on duplicate names
    unless ``replace=True``.
    """
    if not encoding.name:
        raise ValueError("encodings must carry a non-empty name")
    if encoding.name in _REGISTRY and not replace:
        raise ValueError(f"encoding {encoding.name!r} is already registered")
    _REGISTRY[encoding.name] = encoding
    return encoding


def get_encoding(name: str) -> Encoding:
    """Look up a registered encoding by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown encoding {name!r}; registered: {', '.join(sorted(_REGISTRY))}"
        ) from None


def encoding_names() -> tuple[str, ...]:
    """Names of every registered encoding, in registration order."""
    return tuple(_REGISTRY)


register_encoding(PositionalEncoding())
register_encoding(CsdEncoding())
register_encoding(HeseEncoding())
register_encoding(BinaryEncoding())
