"""Unit tests for synthetic trace generation."""

import numpy as np
import pytest

from repro.nn.traces import (
    DEFAULT_SHAPE,
    LayerTraceParams,
    NetworkTrace,
    generate_layer_values,
    generate_synapses,
)
from repro.nn.precision import LayerPrecision


class TestLayerTraceParams:
    def test_defaults(self):
        params = LayerTraceParams(sigma=10.0, zero_fraction=0.5)
        assert params.distribution == "lognormal"
        assert params.shape == DEFAULT_SHAPE

    def test_rejects_invalid_sigma(self):
        with pytest.raises(ValueError):
            LayerTraceParams(sigma=0.0, zero_fraction=0.1)

    def test_rejects_invalid_zero_fraction(self):
        with pytest.raises(ValueError):
            LayerTraceParams(sigma=1.0, zero_fraction=1.0)

    def test_rejects_unknown_distribution(self):
        with pytest.raises(ValueError):
            LayerTraceParams(sigma=1.0, zero_fraction=0.1, distribution="pareto")


class TestGenerateLayerValues:
    def test_values_are_nonnegative_and_bounded(self, rng):
        params = LayerTraceParams(sigma=100.0, zero_fraction=0.3, max_magnitude=255)
        values = generate_layer_values((1000,), params, rng)
        assert values.min() >= 0
        assert values.max() <= 255

    def test_zero_fraction_is_respected(self, rng):
        params = LayerTraceParams(sigma=50.0, zero_fraction=0.6)
        values = generate_layer_values((20000,), params, rng)
        zero_rate = np.count_nonzero(values == 0) / values.size
        assert abs(zero_rate - 0.6) < 0.02

    def test_shape_is_preserved(self, rng):
        params = LayerTraceParams(sigma=10.0, zero_fraction=0.1)
        assert generate_layer_values((3, 4, 5), params, rng).shape == (3, 4, 5)

    def test_uniform_distribution_spans_range(self, rng):
        params = LayerTraceParams(sigma=255.0, zero_fraction=0.0, distribution="uniform")
        values = generate_layer_values((5000,), params, rng)
        assert values.max() > 200
        assert values.min() >= 1

    def test_half_normal_scale_controls_magnitude(self, rng):
        small = LayerTraceParams(sigma=4.0, zero_fraction=0.0, distribution="half_normal")
        large = LayerTraceParams(sigma=400.0, zero_fraction=0.0, distribution="half_normal")
        small_values = generate_layer_values((2000,), small, rng)
        large_values = generate_layer_values((2000,), large, rng)
        assert large_values.mean() > 10 * small_values.mean()


class TestGenerateSynapses:
    def test_shape_matches_layer(self, tiny_layer, rng):
        synapses = generate_synapses(tiny_layer, rng)
        assert synapses.shape == (
            tiny_layer.num_filters,
            tiny_layer.input_channels,
            tiny_layer.filter_height,
            tiny_layer.filter_width,
        )

    def test_values_are_signed_and_bounded(self, tiny_layer, rng):
        synapses = generate_synapses(tiny_layer, rng, magnitude_bits=4)
        assert synapses.min() < 0 < synapses.max()
        assert np.abs(synapses).max() <= 16

    def test_rejects_invalid_magnitude_bits(self, tiny_layer, rng):
        with pytest.raises(ValueError):
            generate_synapses(tiny_layer, rng, magnitude_bits=0)


class TestNetworkTrace:
    def test_layer_input_shape(self, tiny_trace, tiny_layer):
        values = tiny_trace.layer_input(0)
        assert values.shape == (
            tiny_layer.input_channels,
            tiny_layer.input_height,
            tiny_layer.input_width,
        )

    def test_layer_input_is_deterministic(self, tiny_trace):
        np.testing.assert_array_equal(tiny_trace.layer_input(0), tiny_trace.layer_input(0))

    def test_different_layers_get_different_values(self, tiny_trace):
        a = tiny_trace.sample_layer_values(0, 500)
        b = tiny_trace.sample_layer_values(1, 500)
        assert not np.array_equal(a[:500], b[:500])

    def test_sample_values_deterministic(self, tiny_trace):
        np.testing.assert_array_equal(
            tiny_trace.sample_layer_values(1, 100), tiny_trace.sample_layer_values(1, 100)
        )

    def test_cache_flag_retains_tensor(self, tiny_trace):
        first = tiny_trace.layer_input(0, cache=True)
        assert tiny_trace.layer_input(0) is first

    def test_sample_rejects_nonpositive_count(self, tiny_trace):
        with pytest.raises(ValueError):
            tiny_trace.sample_layer_values(0, 0)

    def test_weights_match_layer_count(self, tiny_trace):
        assert tiny_trace.layer_weights().shape == (2,)
        assert tiny_trace.stream_weights().shape == (2,)

    def test_mismatched_params_rejected(self, tiny_network):
        with pytest.raises(ValueError):
            NetworkTrace(
                network=tiny_network,
                precisions=(LayerPrecision(msb=9),),
                params=(LayerTraceParams(sigma=1.0, zero_fraction=0.1),) * 2,
            )
