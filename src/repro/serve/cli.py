"""``python -m repro serve`` — command-line entry of the serving front-end.

Modes:

* ``--stdio`` (default) — speak the line-delimited JSON protocol over
  stdin/stdout until EOF or a ``shutdown`` op.
* ``--tcp HOST:PORT`` — listen for concurrent protocol connections
  (``PORT 0`` picks an ephemeral port, printed on startup).
* ``--selftest`` — start an in-process TCP server, run one full request
  round-trip through a real client connection, print the outcome and exit
  non-zero on any failure.  CI runs this on every tier-1 platform.

``--workers`` bounds concurrent job execution; ``--cache-dir``/``--no-cache``
select the shared result cache exactly like the batch CLI.  See
``docs/serving.md`` for the protocol and examples.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.runtime.session import default_cache_dir

__all__ = ["main"]


def _parse_endpoint(value: str) -> tuple[str, int]:
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(f"expected HOST:PORT, got {value!r}")
    return host, int(port)


async def _selftest(workers: int) -> int:
    """One request round-trip through a real TCP connection."""
    from repro.serve.client import ServeClient
    from repro.serve.service import ExperimentService

    service = ExperimentService(cache_dir=None, workers=workers)
    async with service:
        server = await service.serve_tcp("127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        async with server:
            client = await ServeClient.connect("127.0.0.1", port)
            try:
                if not await client.ping():
                    print("selftest: ping failed", file=sys.stderr)
                    return 1
                listing = await client.list_experiments()
                names = [entry["name"] for entry in listing.get("experiments", [])]
                if "fig9" not in names:
                    print("selftest: experiment listing incomplete", file=sys.stderr)
                    return 1
                response = await client.run_experiment("table3", preset="smoke")
                if not response.ok or not response.result:
                    print(f"selftest: request failed: {response.error}", file=sys.stderr)
                    return 1
                rows = response.result["experiment"]["rows"]
                stats = await client.stats()
                completed = stats["queue"]["completed"]
                print(
                    "selftest ok: table3 --preset smoke round-trip "
                    f"({len(rows)} rows, {completed} job(s) completed, "
                    f"stats: {response.stats.summary()})"
                )
                return 0
            finally:
                await client.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve experiment/simulation requests from one warm runtime session.",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--stdio",
        action="store_true",
        help="speak the JSON-lines protocol over stdin/stdout (default)",
    )
    mode.add_argument(
        "--tcp",
        type=_parse_endpoint,
        metavar="HOST:PORT",
        help="listen for protocol connections on HOST:PORT (port 0 = ephemeral)",
    )
    mode.add_argument(
        "--selftest",
        action="store_true",
        help="run one in-process request round-trip and exit",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="bound on concurrently executing jobs (default: 2)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="shared on-disk result cache (default: ~/.cache/repro-pragmatic "
        "or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache entirely"
    )
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be at least 1")

    if args.selftest:
        return asyncio.run(_selftest(args.workers))

    from repro.serve.service import ExperimentService

    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    service = ExperimentService(
        cache_dir=cache_dir, no_cache=args.no_cache, workers=args.workers
    )

    async def run_tcp(host: str, port: int) -> None:
        async with service:
            server = await service.serve_tcp(host, port)
            bound = server.sockets[0].getsockname()
            print(f"repro serve: listening on {bound[0]}:{bound[1]}", file=sys.stderr)
            async with server:
                # Returns when a client sends the shutdown op (or on ^C).
                await service.wait_shutdown()

    try:
        if args.tcp:
            asyncio.run(run_tcp(*args.tcp))
        else:
            asyncio.run(service.run_stdio())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
