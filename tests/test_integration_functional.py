"""Integration tests: every engine computes the same outputs, and the functional
Pragmatic tile agrees with the cycle model on small layers."""

import numpy as np
import pytest

from repro.arch.tiling import SamplingConfig
from repro.baselines.dadiannao import DaDianNaoFunctional, DaDianNaoModel
from repro.baselines.stripes import StripesFunctional, StripesModel
from repro.core.accelerator import PragmaticAccelerator, PragmaticConfig
from repro.core.pip import PragmaticTileFunctional
from repro.nn.layers import ConvLayerSpec
from repro.nn.precision import LayerPrecision
from repro.nn.reference import conv2d_reference
from repro.nn.traces import generate_synapses


@pytest.fixture
def functional_layer():
    return ConvLayerSpec(
        name="functional",
        input_channels=32,
        input_height=7,
        input_width=7,
        num_filters=8,
        filter_height=3,
        filter_width=3,
        stride=1,
        padding=1,
    )


@pytest.fixture
def functional_inputs(functional_layer, rng):
    neurons = rng.integers(0, 2**9, size=(32, 7, 7))
    neurons[rng.random(neurons.shape) < 0.55] = 0
    synapses = generate_synapses(functional_layer, rng)
    return neurons, synapses


class TestFunctionalEquivalence:
    def test_every_engine_computes_identical_outputs(self, functional_layer, functional_inputs):
        neurons, synapses = functional_inputs
        reference = conv2d_reference(functional_layer, neurons, synapses)
        dadn = DaDianNaoFunctional().compute_layer(functional_layer, neurons, synapses)
        stripes = StripesFunctional().compute_layer(
            functional_layer, neurons, synapses, LayerPrecision(msb=8, lsb=0)
        )
        np.testing.assert_array_equal(dadn, reference)
        np.testing.assert_array_equal(stripes, reference)
        for first_stage_bits in (0, 1, 2, 3, 4):
            pragmatic, _ = PragmaticTileFunctional(
                first_stage_bits=first_stage_bits
            ).compute_layer(functional_layer, neurons, synapses)
            np.testing.assert_array_equal(pragmatic, reference)

    def test_pragmatic_functional_cycles_match_cycle_model(self, tiny_trace, rng):
        layer = tiny_trace.layer(0)
        neurons = tiny_trace.layer_input(0, cache=True)
        synapses = generate_synapses(layer, rng)
        for first_stage_bits in (0, 2, 4):
            _, functional_cycles = PragmaticTileFunctional(
                first_stage_bits=first_stage_bits
            ).compute_layer(layer, neurons, synapses)
            config = PragmaticConfig(
                first_stage_bits=first_stage_bits, software_trimming=False
            )
            model = PragmaticAccelerator(config).simulate_layer(
                tiny_trace, 0, SamplingConfig(exact=True)
            )
            assert functional_cycles == pytest.approx(model.cycles)

    def test_cycle_model_orderings_hold_on_real_structure(self, tiny_trace):
        sampling = SamplingConfig(exact=True)
        dadn_cycles = sum(
            DaDianNaoModel().layer_cycles(layer) for layer in tiny_trace.network.layers
        )
        stripes_cycles = StripesModel().network_cycles(tiny_trace)
        pragmatic = PragmaticAccelerator(PragmaticConfig(software_trimming=False))
        pragmatic_cycles = pragmatic.simulate_network(tiny_trace, sampling).cycles
        assert pragmatic_cycles <= stripes_cycles <= dadn_cycles

    def test_stripes_speedup_matches_utilization_corrected_ideal(self, tiny_trace):
        # The ideal 16/p speedup is scaled by window-lane utilization when a layer's
        # window count is not a multiple of the 16-wide pallet.
        stripes_cycles = StripesModel().network_cycles(tiny_trace)
        expected = 0.0
        for index, layer in enumerate(tiny_trace.network.layers):
            width = tiny_trace.layer_precision(index).width
            expected += layer.window_groups * layer.bricks_per_window * width
        assert stripes_cycles == pytest.approx(expected)
        dadn_cycles = sum(
            DaDianNaoModel().layer_cycles(layer) for layer in tiny_trace.network.layers
        )
        assert 1.0 < dadn_cycles / stripes_cycles <= 16.0
