#!/usr/bin/env python3
"""Software guidance study: how much do per-layer precisions help Pragmatic?

Section V-F of the paper describes the one software hook Pragmatic exposes:
after each layer, software may zero out prefix and suffix bits of the output
neurons according to profiled per-layer precisions, shrinking the essential bit
content the next layer must process.  This example quantifies that effect for
every network the paper evaluates (Table V) and also shows the underlying
essential-bit savings per layer for one network.

Run it with::

    python examples/software_precision_study.py
"""

from __future__ import annotations

from repro.analysis.speedup import geometric_mean
from repro.analysis.tables import format_percent, format_ratio, format_table
from repro.arch.tiling import SamplingConfig
from repro.core.software import SoftwareGuidance
from repro.core.sweep import sweep_network
from repro.core.variants import column_variant
from repro.nn.calibration import calibrated_trace
from repro.nn.networks import NETWORK_NAMES, get_network


def speedup_with_and_without_guidance(network: str, sampling: SamplingConfig):
    trace = calibrated_trace(network)
    configs = {
        "guided": column_variant(1, software_trimming=True),
        "unguided": column_variant(1, software_trimming=False),
    }
    results = sweep_network(trace, configs, sampling=sampling)
    return results["guided"].speedup, results["unguided"].speedup


def per_layer_savings(network: str, samples: int = 20000) -> list[list[object]]:
    trace = calibrated_trace(network)
    guidance = SoftwareGuidance.from_trace(trace)
    rows = []
    for index, layer in enumerate(trace.network.layers):
        values = trace.sample_layer_values(index, samples)
        savings = guidance.essential_bit_savings(values, index)
        rows.append([layer.name, trace.layer_precision(index).width, format_percent(savings)])
    return rows


def main() -> None:
    sampling = SamplingConfig(max_pallets=6)

    print("== Speedup benefit of software-provided precisions (PRA-2b-1R) ==")
    rows = []
    benefits = []
    for name in NETWORK_NAMES:
        guided, unguided = speedup_with_and_without_guidance(name, sampling)
        benefit = guided / unguided - 1.0
        benefits.append(1.0 + benefit)
        rows.append(
            [get_network(name).name, format_ratio(guided), format_ratio(unguided), format_percent(benefit, 0)]
        )
    rows.append(["geomean", "-", "-", format_percent(geometric_mean(benefits) - 1.0, 0)])
    print(format_table(["network", "with software", "without software", "benefit"], rows))
    print("(The paper's Table V reports 10%-23% per network, 19% on average.)")
    print()

    print("== Per-layer essential-bit savings from trimming (AlexNet) ==")
    print(format_table(["layer", "precision (bits)", "essential bits removed"], per_layer_savings("alexnet")))


if __name__ == "__main__":
    main()
