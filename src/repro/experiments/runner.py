"""Experiment registry and command-line entry point.

Run a single experiment::

    python -m repro.experiments.runner --experiment fig9 --preset fast

or regenerate every table and figure::

    python -m repro.experiments.runner --all --preset full
"""

from __future__ import annotations

import argparse
from typing import Callable

from repro.experiments import (
    ablation,
    extension_csd,
    fig2,
    fig3,
    fig9,
    fig10,
    fig11,
    fig12,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.experiments.base import ExperimentResult, PRESETS, Preset

__all__ = ["EXPERIMENTS", "run_experiment", "run_all", "main"]

#: Registry of experiment id → run function, in the paper's presentation order.
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "table2": table2.run,
    "fig9": fig9.run,
    "table3": table3.run,
    "fig10": fig10.run,
    "table4": table4.run,
    "fig11": fig11.run,
    "table5": table5.run,
    "fig12": fig12.run,
    "ablation": ablation.run,
    "extension_csd": extension_csd.run,
}


def run_experiment(
    name: str, preset: str | Preset = "fast", seed: int = 0
) -> ExperimentResult:
    """Run one experiment by id."""
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; available: {', '.join(EXPERIMENTS)}")
    return EXPERIMENTS[name](preset=preset, seed=seed)


def run_all(preset: str | Preset = "fast", seed: int = 0) -> dict[str, ExperimentResult]:
    """Run every experiment in presentation order."""
    return {name: run(preset=preset, seed=seed) for name, run in EXPERIMENTS.items()}


def main(argv: list[str] | None = None) -> int:
    """Command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate the tables and figures of the Bit-Pragmatic paper.",
    )
    parser.add_argument("--experiment", choices=sorted(EXPERIMENTS), help="experiment id")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--preset", choices=sorted(PRESETS), default="fast")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if not args.all and not args.experiment:
        parser.error("specify --experiment NAME or --all")

    if args.all:
        for name, result in run_all(preset=args.preset, seed=args.seed).items():
            print(result.to_text())
            print()
    else:
        print(run_experiment(args.experiment, preset=args.preset, seed=args.seed).to_text())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
