"""The bounded worker pool: executing serve jobs against one shared session.

Each worker is an asyncio task that pulls jobs off the
:class:`~repro.serve.queue.RequestQueue` and executes them on a thread
(``asyncio.to_thread``), so the event loop stays responsive while numpy does
the heavy lifting.  Every job runs under a *stats view* of the shared
:class:`~repro.runtime.session.RuntimeSession`: a private session whose cache
and trace store delegate to the shared ones (so all jobs reuse one warm
``ResultCache`` + ``TraceStore``) but count hits/misses/stores, sweep work and
trace builds into per-job counters — which is how each response can report
exactly what *its* request cost.  Thread-scoped session activation (see
:mod:`repro.runtime.session`) keeps concurrent jobs from interfering.

``docs/serving.md`` describes the execution model; ``docs/runtime.md`` the
session semantics underneath it.
"""

from __future__ import annotations

import asyncio

from repro.core.progress import ProgressToken, SweepCancelled
from repro.runtime import RuntimeSession, simulate, use_session
from repro.runtime.cache import CacheStats
from repro.runtime.serialization import network_result_to_dict
from repro.serve.protocol import (
    ExperimentRequest,
    RunAllRequest,
    ServeRequest,
    SimulateRequest,
)
from repro.serve.queue import RequestQueue

__all__ = ["WorkerPool", "execute_request", "job_session"]


class _CacheView:
    """Per-job counting facade over the shared :class:`ResultCache`."""

    def __init__(self, inner) -> None:
        self._inner = inner
        self.stats = CacheStats()

    @property
    def directory(self):
        return self._inner.directory

    @property
    def enabled(self) -> bool:
        return self._inner.enabled

    @property
    def persistent(self) -> bool:
        return self._inner.persistent

    def _delegate(self, operation, *args, **kwargs):
        """Run an inner-cache call, attributing its error delta to this view."""
        before = self._inner.stats.errors
        result = operation(*args, **kwargs)
        self.stats.errors += max(0, self._inner.stats.errors - before)
        return result

    def get(self, key: str, kind: str = "network_result"):
        payload = self._delegate(self._inner.get, key, kind=kind)
        if payload is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return payload

    def contains(self, key: str, kind: str = "network_result") -> bool:
        return self._delegate(self._inner.contains, key, kind=kind)

    def put(self, key: str, payload: dict, kind: str = "network_result") -> None:
        self._delegate(self._inner.put, key, payload, kind=kind)
        self.stats.stores += 1

    def __len__(self) -> int:
        return len(self._inner)


class _TraceView:
    """Per-job counting facade over the shared :class:`TraceStore`."""

    def __init__(self, inner) -> None:
        self._inner = inner
        self.builds = 0
        self.reuses = 0

    def known(self, spec) -> bool:
        return self._inner.known(spec)

    def get(self, spec):
        trace, built = self._inner.fetch(spec)
        if built:
            self.builds += 1
        else:
            self.reuses += 1
        return trace

    def __len__(self) -> int:
        return len(self._inner)


def job_session(
    shared: RuntimeSession, progress: ProgressToken | None = None
) -> RuntimeSession:
    """A stats view of ``shared``: same cache and traces, private counters.

    Public because every executor variant (the default one below, the cluster
    worker's internal-op executor) builds its per-job session this way.
    """
    return RuntimeSession(
        cache=_CacheView(shared.cache),
        traces=_TraceView(shared.traces),
        progress=progress,
    )


#: Backward-compatible alias of :func:`job_session`.
_job_session = job_session


def execute_request(
    request: ServeRequest,
    shared: RuntimeSession,
    progress: ProgressToken | None = None,
) -> tuple[dict, dict]:
    """Execute one typed request against the shared session (worker thread).

    Returns ``(result payload, per-request RunStats dict)``.  The payload is
    JSON-ready: experiment results via ``ExperimentResult.to_dict``, raw
    simulations via :func:`network_result_to_dict`.

    ``progress`` (the job's :class:`ProgressToken`) rides the per-job session
    view down into the runtime funnels: the sweep checks it at cooperative
    checkpoints (raising :class:`SweepCancelled` once the last interested
    ticket cancelled) and per-layer/per-network progress events flow back
    through it.  ``run_all`` additionally emits one ``experiment_done`` event
    with the partial result after each experiment completes.
    """
    from repro.experiments.runner import EXPERIMENTS, run_experiment

    if progress is not None:
        progress.checkpoint()
    view = job_session(shared, progress)
    with use_session(view):
        if isinstance(request, ExperimentRequest):
            result = run_experiment(
                request.experiment, preset=request.resolved_preset(), seed=request.seed
            )
            payload = {"kind": "experiment", "experiment": result.to_dict()}
        elif isinstance(request, RunAllRequest):
            preset = request.resolved_preset()
            results = {}
            for index, name in enumerate(EXPERIMENTS):
                results[name] = run_experiment(
                    name, preset=preset, seed=request.seed
                ).to_dict()
                if progress is not None:
                    progress.emit(
                        {
                            "stage": "experiment_done",
                            "experiment": name,
                            "completed": index + 1,
                            "total": len(EXPERIMENTS),
                            "result": results[name],
                        }
                    )
            payload = {"kind": "run_all", "experiments": results}
        elif isinstance(request, SimulateRequest):
            results = simulate(request.simulation_request())
            payload = {
                "kind": "simulation",
                "results": {
                    label: network_result_to_dict(result)
                    for label, result in results.items()
                },
            }
        else:  # pragma: no cover - parse_request guards this
            raise TypeError(f"unsupported request type {type(request).__name__}")
    return payload, view.stats().as_dict()


class WorkerPool:
    """``workers`` asyncio tasks executing queue jobs.

    ``executor`` decides *how* a job runs and defaults to
    :func:`execute_request` on a thread (``asyncio.to_thread``), keeping the
    event loop responsive while numpy works.  An ``async def`` executor is
    awaited on the loop instead — that is how the cluster coordinator
    substitutes its network-bound sharding dispatcher (``docs/cluster.md``)
    without changing the queue, ticketing, or cancellation machinery.  Either
    way the signature is ``executor(request, session, token) -> (payload,
    stats_dict)`` and a cancelled execution raises :class:`SweepCancelled`.
    """

    def __init__(
        self,
        queue: RequestQueue,
        session: RuntimeSession,
        workers: int = 2,
        executor=None,
    ) -> None:
        if workers < 1:
            raise ValueError("worker pool needs at least one worker")
        self.queue = queue
        self.session = session
        self.workers = workers
        self.executor = executor if executor is not None else execute_request
        self._tasks: list[asyncio.Task] = []

    async def start(self) -> None:
        """Spawn the worker tasks (idempotent)."""
        if self._tasks:
            return
        self._tasks = [
            asyncio.create_task(self._worker(index), name=f"repro-serve-worker-{index}")
            for index in range(self.workers)
        ]

    async def stop(self) -> None:
        """Drain-free shutdown: running jobs complete, queued jobs are failed.

        Workers finish the job they are currently executing (a simulation on
        a thread cannot be interrupted) but pull nothing further; every job
        still waiting in the queue is completed with an error so its tickets
        unblock instead of hanging.
        """
        self.queue.stop_workers(len(self._tasks))
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        self.queue.abandon_pending()

    async def _worker(self, index: int) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self.queue.next_job()
            if job is None:
                return
            # Progress events originate on the simulating thread; marshal
            # them onto the event loop before they touch queue/ticket state.
            job.token.on_progress = (
                lambda payload, job=job: loop.call_soon_threadsafe(
                    self.queue.deliver_progress, job, payload
                )
            )
            self.queue.mark_running(job)
            try:
                if asyncio.iscoroutinefunction(self.executor):
                    payload, stats = await self.executor(
                        job.request, self.session, job.token
                    )
                else:
                    payload, stats = await asyncio.to_thread(
                        self.executor, job.request, self.session, job.token
                    )
            except asyncio.CancelledError:
                self.queue.finish(job, error="worker cancelled")
                raise
            except SweepCancelled:
                # Every interested ticket is gone; the checkpoint freed us.
                self.queue.finish(
                    job, error="cancelled at a cooperative checkpoint", cancelled=True
                )
            except Exception as error:  # noqa: BLE001 - failures become responses
                self.queue.finish(job, error=f"{type(error).__name__}: {error}")
            else:
                self.queue.finish(job, result=payload, stats=stats)
