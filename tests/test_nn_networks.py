"""Unit tests for the network inventories."""

import pytest

from repro.nn.layers import ConvLayerSpec
from repro.nn.networks import NETWORK_NAMES, Network, all_networks, get_network, list_networks
from repro.nn.precision import TABLE2_PRECISIONS


class TestRegistry:
    def test_six_networks_available(self):
        assert len(NETWORK_NAMES) == 6
        assert set(NETWORK_NAMES) == {"alexnet", "nin", "googlenet", "vgg_m", "vgg_s", "vgg19"}

    def test_list_networks_matches_canonical_order(self):
        assert list_networks() == NETWORK_NAMES

    def test_all_networks_returns_objects_in_order(self):
        networks = all_networks()
        assert [n.name for n in networks] == list(NETWORK_NAMES)

    def test_get_network_accepts_aliases(self):
        assert get_network("VGG-M").name == "vgg_m"
        assert get_network("google").name == "googlenet"
        assert get_network("VGG 19").name == "vgg19"

    def test_get_network_rejects_unknown(self):
        with pytest.raises(KeyError):
            get_network("resnet50")


class TestInventories:
    @pytest.mark.parametrize("name", NETWORK_NAMES)
    def test_layer_counts_match_table2(self, name):
        assert get_network(name).num_layers == len(TABLE2_PRECISIONS[name])

    @pytest.mark.parametrize("name", NETWORK_NAMES)
    def test_all_layers_have_positive_macs(self, name):
        for layer in get_network(name).layers:
            assert layer.macs > 0

    def test_alexnet_first_layer_uses_stride_four(self):
        conv1 = get_network("alexnet").layers[0]
        assert conv1.stride == 4
        assert conv1.num_filters == 96

    def test_vgg19_uses_three_by_three_filters_throughout(self):
        for layer in get_network("vgg19").layers:
            assert layer.filter_height == 3 and layer.filter_width == 3

    def test_total_macs_ordering_is_plausible(self):
        # VGG-19's convolutional layers are by far the heaviest of the six networks.
        macs = {name: get_network(name).total_macs for name in NETWORK_NAMES}
        assert macs["vgg19"] == max(macs.values())
        assert macs["alexnet"] < macs["vgg19"]

    def test_layer_lookup_by_name(self):
        net = get_network("alexnet")
        assert net.layer("conv3").num_filters == 384
        with pytest.raises(KeyError):
            net.layer("missing")

    def test_describe_lists_every_layer(self):
        text = get_network("nin").describe()
        assert text.count("\n") == get_network("nin").num_layers


class TestNetworkValidation:
    def test_rejects_empty_layer_list(self):
        with pytest.raises(ValueError):
            Network(name="x", display_name="X", layers=())

    def test_rejects_duplicate_layer_names(self):
        layer = ConvLayerSpec("dup", 16, 8, 8, 4, 3, 3, padding=1)
        with pytest.raises(ValueError):
            Network(name="x", display_name="X", layers=(layer, layer))
