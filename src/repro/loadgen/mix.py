"""Declarative request mixes and the deterministic seeded scheduler.

A :class:`MixSpec` describes *what* traffic a load run replays — how many
requests, over how many concurrent clients, which experiments and presets
(weighted), how much of it re-requests a small **hot** working set versus
**cold** never-seen-before keys, how much streams progress versus plain
batch request/response, and what fraction is cancelled mid-flight.

:meth:`MixSpec.schedule` compiles the spec into a concrete list of
:class:`PlannedRequest`\\ s with a private ``random.Random(seed)``: the same
spec always produces byte-identical schedules, so two load runs on different
PRs replay *exactly* the same traffic and their reports are comparable.
Wall-clock interleaving still depends on the machine, but the requests, their
client assignment, hot/cold choice, stream/cancel flags and think times do
not.  ``docs/loadgen.md`` documents the JSON spec format.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, fields
from pathlib import Path

__all__ = ["MixError", "MixSpec", "PlannedRequest"]


class MixError(ValueError):
    """An invalid mix specification."""


#: Cold requests draw their seeds from this offset upward so they can never
#: collide with the hot pool's small fixed seeds (or with each other).
_COLD_SEED_BASE = 1000


@dataclass(frozen=True)
class PlannedRequest:
    """One concrete request of a compiled schedule."""

    index: int
    client: int
    message: dict
    hot: bool
    stream: bool
    cancel: bool
    #: Client-side delay before issuing this request (seconds).
    think_seconds: float


def _weighted(pairs: object, what: str, allowed: set[str] | None = None) -> tuple:
    """Validate a ``{name: weight}`` mapping into sorted ``(name, weight)`` pairs."""
    if isinstance(pairs, (list, tuple)):
        pairs = dict(pairs)
    if not isinstance(pairs, dict) or not pairs:
        raise MixError(f"{what} must be a non-empty object of name: weight")
    items = []
    for name in sorted(pairs):
        weight = pairs[name]
        if not isinstance(name, str):
            raise MixError(f"{what} names must be strings")
        if allowed is not None and name not in allowed:
            raise MixError(
                f"unknown {what[:-1]} {name!r}; available: {', '.join(sorted(allowed))}"
            )
        if isinstance(weight, bool) or not isinstance(weight, (int, float)) or weight <= 0:
            raise MixError(f"{what}[{name!r}] weight must be a positive number")
        items.append((name, float(weight)))
    return tuple(items)


def _ratio(value: object, what: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise MixError(f"{what} must be a number in [0, 1]")
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise MixError(f"{what} must be within [0, 1], got {value}")
    return value


def _non_negative(value: object, what: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)) or value < 0:
        raise MixError(f"{what} must be a non-negative number")
    return float(value)


def _positive_int(value: object, what: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise MixError(f"{what} must be a positive integer")
    return value


def _pick(rng: random.Random, pairs: tuple) -> str:
    total = sum(weight for _, weight in pairs)
    roll = rng.random() * total
    for name, weight in pairs:
        roll -= weight
        if roll < 0:
            return name
    return pairs[-1][0]


@dataclass(frozen=True)
class MixSpec:
    """One load run's traffic shape (all fields have safe defaults).

    The default experiment mix leans on the cheap analytic/statistics
    experiments so smoke runs finish in seconds even on a cold cache; point
    ``experiments`` at the sweep-heavy figures (and raise ``requests``) for a
    real soak.
    """

    requests: int = 24
    clients: int = 4
    seed: int = 0
    #: Fraction of requests drawn from the small hot pool (identical repeats
    #: that exercise coalescing and the warm cache); the rest are cold —
    #: every one carries a never-seen seed, forcing fresh work.
    hot_ratio: float = 0.5
    #: Distinct request shapes in the hot pool.
    hot_pool: int = 3
    #: Fraction of requests submitted with ``stream: true`` (progress events).
    stream_ratio: float = 0.25
    #: Fraction of requests cancelled as soon as their first event arrives.
    #: Nonzero by default: sustained traffic includes clients that walk away.
    cancel_rate: float = 0.125
    #: Weighted experiment distribution (name-sorted, like parsed specs).
    experiments: tuple = (("fig2", 1.0), ("fig3", 1.0), ("table1", 2.0), ("table3", 3.0))
    #: Weighted preset distribution.
    presets: tuple = (("smoke", 1.0),)
    #: Fraction of *cold* requests issued as single-network ``simulate`` ops
    #: instead of ``run_experiment`` (0 keeps the pre-simulate schedules
    #: byte-identical: no extra RNG draws happen when this is 0).
    simulate_ratio: float = 0.0
    #: Weighted network distribution for simulate ops.
    networks: tuple = (("alexnet", 1.0),)
    #: Variant group simulate ops request (a :mod:`repro.core.variants` family).
    variants: str = "fig9"
    #: Weighted oneffset-encoding distribution for simulate ops
    #: (:mod:`repro.numerics.encodings` registry names).
    encodings: tuple = (("positional", 1.0),)
    #: Preset overrides applied to every request (bounds hermetic run cost).
    overrides: tuple = ()
    #: Start of client ``k`` is delayed by ``k * ramp_seconds`` — a linear
    #: concurrency ramp instead of a thundering herd.
    ramp_seconds: float = 0.0
    #: Mean client think time between requests (exponential, sampled into the
    #: schedule so it is deterministic too).  0 disables pacing.
    think_seconds: float = 0.0

    # ------------------------------------------------------------------ parsing
    @classmethod
    def from_dict(cls, data: object) -> "MixSpec":
        """Validate a JSON object into a spec; raises :class:`MixError`."""
        from repro.experiments.base import PRESETS
        from repro.experiments.runner import EXPERIMENTS
        from repro.serve.protocol import ProtocolError, _normalize_overrides

        if not isinstance(data, dict):
            raise MixError("mix spec must be a JSON object")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise MixError(
                f"unknown mix field(s) {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(known))}"
            )
        kwargs: dict = {}
        if "requests" in data:
            kwargs["requests"] = _positive_int(data["requests"], "requests")
        if "clients" in data:
            kwargs["clients"] = _positive_int(data["clients"], "clients")
        if "hot_pool" in data:
            kwargs["hot_pool"] = _positive_int(data["hot_pool"], "hot_pool")
        if "seed" in data:
            seed = data["seed"]
            if isinstance(seed, bool) or not isinstance(seed, int):
                raise MixError("seed must be an integer")
            kwargs["seed"] = seed
        for name in ("hot_ratio", "stream_ratio", "cancel_rate"):
            if name in data:
                kwargs[name] = _ratio(data[name], name)
        for name in ("ramp_seconds", "think_seconds"):
            if name in data:
                kwargs[name] = _non_negative(data[name], name)
        if "experiments" in data:
            kwargs["experiments"] = _weighted(
                data["experiments"], "experiments", allowed=set(EXPERIMENTS)
            )
        if "presets" in data:
            kwargs["presets"] = _weighted(data["presets"], "presets", allowed=set(PRESETS))
        if "simulate_ratio" in data:
            kwargs["simulate_ratio"] = _ratio(data["simulate_ratio"], "simulate_ratio")
        if "networks" in data:
            from repro.nn.networks import NETWORK_NAMES

            kwargs["networks"] = _weighted(
                data["networks"], "networks", allowed=set(NETWORK_NAMES)
            )
        if "variants" in data:
            variants = data["variants"]
            allowed_variants = ("fig9", "fig10", "fig12", "encodings")
            if variants not in allowed_variants:
                raise MixError(
                    f"unknown variants group {variants!r}; "
                    f"available: {', '.join(allowed_variants)}"
                )
            kwargs["variants"] = variants
        if "encodings" in data:
            from repro.numerics.encodings import encoding_names

            kwargs["encodings"] = _weighted(
                data["encodings"], "encodings", allowed=set(encoding_names())
            )
        if kwargs.get("variants") == "encodings" and tuple(
            name for name, _ in kwargs.get("encodings", ())
        ) not in ((), ("positional",)):
            raise MixError(
                "the 'encodings' variant group already spans every encoding; "
                "drop the encodings weights"
            )
        if "overrides" in data:
            try:
                kwargs["overrides"] = _normalize_overrides(data["overrides"])
            except ProtocolError as error:
                raise MixError(str(error)) from error
        return cls(**kwargs)

    @classmethod
    def from_file(cls, path: str | Path) -> "MixSpec":
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            raise MixError(f"cannot read mix spec {path}: {error}") from error
        return cls.from_dict(data)

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "clients": self.clients,
            "seed": self.seed,
            "hot_ratio": self.hot_ratio,
            "hot_pool": self.hot_pool,
            "stream_ratio": self.stream_ratio,
            "cancel_rate": self.cancel_rate,
            "experiments": dict(self.experiments),
            "presets": dict(self.presets),
            "simulate_ratio": self.simulate_ratio,
            "networks": dict(self.networks),
            "variants": self.variants,
            "encodings": dict(self.encodings),
            "overrides": {key: list(value) if isinstance(value, tuple) else value
                          for key, value in self.overrides},
            "ramp_seconds": self.ramp_seconds,
            "think_seconds": self.think_seconds,
        }

    # --------------------------------------------------------------- scheduling
    def _message(self, experiment: str, preset: str, seed: int) -> dict:
        message = {
            "op": "run_experiment",
            "experiment": experiment,
            "preset": preset,
            "seed": seed,
        }
        overrides = {key: list(value) if isinstance(value, tuple) else value
                     for key, value in self.overrides}
        if overrides:
            message["overrides"] = overrides
        return message

    def _simulate_message(
        self, network: str, encoding: str, preset: str, seed: int
    ) -> dict:
        message = {
            "op": "simulate",
            "network": network,
            "variants": self.variants,
            "preset": preset,
            "seed": seed,
        }
        if encoding != "positional":
            message["encoding"] = encoding
        overrides = {key: list(value) if isinstance(value, tuple) else value
                     for key, value in self.overrides}
        if overrides:
            message["overrides"] = overrides
        return message

    def schedule(self) -> list[PlannedRequest]:
        """Compile the spec into a deterministic, replayable request list.

        Requests are assigned to clients round-robin (client assignment is
        part of the schedule, not the runtime); every random draw comes from
        one ``random.Random(self.seed)``, so identical specs produce
        identical schedules.
        """
        rng = random.Random(self.seed)
        # The hot pool: a few fixed request shapes drawn once, re-requested
        # verbatim for every hot slot (identical content keys → coalescing
        # and warm-cache hits on the server).
        pool = [
            self._message(_pick(rng, self.experiments), _pick(rng, self.presets), hot_seed)
            for hot_seed in range(self.hot_pool)
        ]
        planned: list[PlannedRequest] = []
        for index in range(self.requests):
            hot = rng.random() < self.hot_ratio
            if hot:
                message = dict(pool[rng.randrange(len(pool))])
            elif self.simulate_ratio and rng.random() < self.simulate_ratio:
                # The leading truthiness guard keeps simulate-free specs free
                # of extra RNG draws, so their schedules stay byte-identical
                # to the pre-simulate format.
                message = self._simulate_message(
                    _pick(rng, self.networks),
                    _pick(rng, self.encodings),
                    _pick(rng, self.presets),
                    _COLD_SEED_BASE + index,
                )
            else:
                message = self._message(
                    _pick(rng, self.experiments),
                    _pick(rng, self.presets),
                    _COLD_SEED_BASE + index,
                )
            think = rng.expovariate(1.0 / self.think_seconds) if self.think_seconds else 0.0
            planned.append(
                PlannedRequest(
                    index=index,
                    client=index % self.clients,
                    message=message,
                    hot=hot,
                    stream=rng.random() < self.stream_ratio,
                    cancel=rng.random() < self.cancel_rate,
                    think_seconds=round(think, 6),
                )
            )
        return planned
