"""Zero-skipping engines used in the motivation study (Section II).

The paper compares the number of terms processed by two zero-value-skipping
designs against DaDN, Stripes and Pragmatic:

* **ZN** — a hypothetical, ideal engine that skips *every* zero-valued neuron.
* **CVN** — Cnvlutin, a practical design that skips zero neurons in every layer
  except the first (whose input is the image, not a ReLU output).

Both still spend the full bit-parallel cost (``storage_bits`` terms) on every
non-zero neuron, which is why their savings are bounded by the zero-neuron
fraction rather than by the essential bit content.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.config import ChipConfig, DEFAULT_CHIP
from repro.nn.layers import ConvLayerSpec

__all__ = ["ZeroSkipModel", "zero_fraction"]


def zero_fraction(values: np.ndarray) -> float:
    """Fraction of exactly-zero neurons in a value sample."""
    arr = np.asarray(values)
    if arr.size == 0:
        raise ValueError("cannot compute the zero fraction of an empty sample")
    return float(np.count_nonzero(arr == 0) / arr.size)


@dataclass(frozen=True)
class ZeroSkipModel:
    """Term-count model for zero-neuron-skipping engines.

    Parameters
    ----------
    skip_first_layer:
        When False the first layer is processed without skipping, which models
        the practical Cnvlutin (CVN) design; when True all layers skip zero
        neurons, which models the ideal ZN engine.
    chip:
        Chip configuration (supplies the bit-parallel term cost per neuron).
    """

    skip_first_layer: bool = True
    chip: ChipConfig = DEFAULT_CHIP

    @property
    def name(self) -> str:
        return "ZN" if self.skip_first_layer else "CVN"

    def layer_terms(
        self,
        layer: ConvLayerSpec,
        values_sample: np.ndarray,
        layer_index: int,
        storage_bits: int | None = None,
    ) -> float:
        """Expected terms for one layer given a sample of its input neuron values."""
        bits = storage_bits if storage_bits is not None else self.chip.storage_bits
        if layer_index == 0 and not self.skip_first_layer:
            nonzero = 1.0
        else:
            nonzero = 1.0 - zero_fraction(values_sample)
        return layer.macs * bits * nonzero
