"""Per-layer neuron precision profiles (Table II) and the profiling path.

Stripes and the software-guided Pragmatic variant (PRA-red) rely on per-layer
neuron precisions obtained with the profiling method of Judd et al.: for each
layer, the smallest window of bit positions ``[lsb, msb]`` that preserves network
accuracy.  The paper publishes the resulting profiles in Table II; those values
are shipped here as data (:data:`TABLE2_PRECISIONS`).

For user-supplied networks (or synthetic traces) the same quantity can be derived
from observed activation values with :func:`profile_from_values`, which picks the
smallest window covering a configurable fraction of the layer's magnitude mass —
the distribution-based stand-in for the paper's accuracy-driven profiling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.networks import Network, get_network

__all__ = [
    "LayerPrecision",
    "TABLE2_PRECISIONS",
    "table2_precisions",
    "precision_profile",
    "profile_from_values",
    "DEFAULT_SUFFIX_BITS",
]

#: Fractional ("suffix") bits the trace generator places below the profiled
#: precision window.  Software guidance (Section V-F) trims these away.
DEFAULT_SUFFIX_BITS = 2


@dataclass(frozen=True)
class LayerPrecision:
    """The bit window ``[lsb, msb]`` a layer's neurons actually need.

    ``width`` is the per-layer precision ``p`` the paper reports; Stripes spends
    ``p`` cycles per neuron, and PRA-red masks every stored bit outside the
    window before generating oneffsets.
    """

    msb: int
    lsb: int = 0

    def __post_init__(self) -> None:
        if self.lsb < 0:
            raise ValueError(f"lsb must be non-negative, got {self.lsb}")
        if self.msb < self.lsb:
            raise ValueError(f"msb ({self.msb}) must be >= lsb ({self.lsb})")

    @property
    def width(self) -> int:
        """Precision in bits (``p`` in the paper)."""
        return self.msb - self.lsb + 1

    @property
    def mask(self) -> int:
        """Bit mask keeping only positions inside the window."""
        return ((1 << (self.msb + 1)) - 1) & ~((1 << self.lsb) - 1)

    def trim(self, values: np.ndarray) -> np.ndarray:
        """Zero out bits outside the window (the AND-gate trimming of Section V-F).

        Signs are preserved; the mask is applied to magnitudes.
        """
        arr = np.asarray(values, dtype=np.int64)
        magnitudes = np.abs(arr) & np.int64(self.mask)
        return np.where(arr < 0, -magnitudes, magnitudes)


#: Table II of the paper: per-layer neuron precisions in bits.
TABLE2_PRECISIONS: dict[str, tuple[int, ...]] = {
    "alexnet": (9, 8, 5, 5, 7),
    "nin": (8, 8, 8, 9, 7, 8, 8, 9, 9, 8, 8, 8),
    "googlenet": (10, 8, 10, 9, 8, 10, 9, 8, 9, 10, 7),
    "vgg_m": (7, 7, 7, 8, 7),
    "vgg_s": (7, 8, 9, 7, 9),
    "vgg19": (12, 12, 12, 11, 12, 10, 11, 11, 13, 12, 13, 13, 13, 13, 13, 13),
}


def table2_precisions(network: str | Network) -> tuple[int, ...]:
    """Return the published per-layer precisions for ``network``.

    Raises ``KeyError`` for networks the paper did not profile.
    """
    net = network if isinstance(network, Network) else get_network(network)
    if net.name not in TABLE2_PRECISIONS:
        raise KeyError(
            f"no published precision profile for {net.name!r}; "
            "use profile_from_values() on a trace instead"
        )
    precisions = TABLE2_PRECISIONS[net.name]
    if len(precisions) != net.num_layers:
        raise RuntimeError(
            f"precision profile length {len(precisions)} does not match "
            f"{net.name!r} layer count {net.num_layers}"
        )
    return precisions


def precision_profile(
    network: str | Network,
    suffix_bits: int = DEFAULT_SUFFIX_BITS,
    precisions: tuple[int, ...] | None = None,
) -> tuple[LayerPrecision, ...]:
    """Build per-layer :class:`LayerPrecision` windows for ``network``.

    Parameters
    ----------
    network:
        Network name or object.
    suffix_bits:
        Fractional bits stored below the precision window.  The storage
        representation keeps them; software guidance trims them.
    precisions:
        Per-layer widths.  Defaults to the published Table II profile.
    """
    net = network if isinstance(network, Network) else get_network(network)
    if suffix_bits < 0:
        raise ValueError("suffix_bits must be non-negative")
    widths = precisions if precisions is not None else table2_precisions(net)
    if len(widths) != net.num_layers:
        raise ValueError(
            f"got {len(widths)} precisions for {net.num_layers} layers of {net.name!r}"
        )
    return tuple(
        LayerPrecision(msb=suffix_bits + width - 1, lsb=suffix_bits) for width in widths
    )


def profile_from_values(
    values: np.ndarray,
    storage_bits: int = 16,
    coverage: float = 0.999,
    suffix_coverage: float = 0.01,
) -> LayerPrecision:
    """Derive a precision window from observed activation magnitudes.

    This is the trace-driven stand-in for the accuracy-driven profiling of Judd
    et al.: the most significant kept bit covers the ``coverage`` quantile of the
    non-zero magnitudes, and low-order bits whose removal perturbs values by less
    than a ``suffix_coverage`` relative error are dropped.

    Parameters
    ----------
    values:
        Integer activation values in the storage representation (LSB units).
    storage_bits:
        Width of the storage representation.
    coverage:
        Fraction of non-zero magnitude mass the window's MSB must cover.
    suffix_coverage:
        Maximum tolerated relative magnitude error introduced by dropping
        low-order bits.
    """
    if not 0.0 < coverage <= 1.0:
        raise ValueError("coverage must be in (0, 1]")
    if not 0.0 <= suffix_coverage < 1.0:
        raise ValueError("suffix_coverage must be in [0, 1)")
    magnitudes = np.abs(np.asarray(values, dtype=np.int64)).ravel()
    nonzero = magnitudes[magnitudes > 0]
    if nonzero.size == 0:
        return LayerPrecision(msb=0, lsb=0)
    top = float(np.quantile(nonzero, coverage))
    msb = max(0, int(np.floor(np.log2(max(top, 1.0)))))
    msb = min(msb, storage_bits - 1)

    typical = float(np.median(nonzero))
    # Dropping bits below position k introduces an error of at most 2**k - 1;
    # keep the largest k whose worst-case error stays under the tolerance.
    lsb = 0
    for candidate in range(msb, 0, -1):
        if (2**candidate - 1) <= suffix_coverage * typical:
            lsb = candidate
            break
    return LayerPrecision(msb=msb, lsb=lsb)
