"""The loadgen run report: one JSON object, one text rendering, one schema.

A :class:`LoadReport` is what a swarm run produces and what the perf
trajectory records: client-observed latency percentiles, the server-reported
queue-wait/execution breakdowns (the serve layer's per-request ``timings``
block), throughput, outcome counts, coalescing effectiveness and worker
utilization — every metric is defined in ``docs/loadgen.md``.
:func:`validate_report` is the schema check CI runs against every emitted
report — a malformed report fails the smoke step rather than silently
shipping garbage numbers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.loadgen.metrics import LatencyHistogram

__all__ = ["REPORT_SCHEMA", "LoadReport", "validate_report"]

#: Schema version of the report JSON (bump on breaking shape changes).
REPORT_SCHEMA = 1

#: Keys every percentile block must carry.
_PERCENTILE_KEYS = (
    "count",
    "mean_seconds",
    "min_seconds",
    "max_seconds",
    "p50_seconds",
    "p95_seconds",
    "p99_seconds",
)


@dataclass
class LoadReport:
    """Everything one load run measured."""

    target: str  # "serve" | "cluster" | "connect"
    mix: dict
    duration_seconds: float
    #: Client-observed request latency (submit → terminal event).
    latency: LatencyHistogram
    #: Server-reported queue wait / execution (the ``timings`` satellite).
    queue_wait: LatencyHistogram
    execution: LatencyHistogram
    issued: int = 0
    done: int = 0
    failed: int = 0
    cancelled: int = 0
    cancel_requested: int = 0
    coalesced_tickets: int = 0
    hot_issued: int = 0
    streamed: int = 0
    progress_events: int = 0
    errors: list[str] = field(default_factory=list)
    #: The server's ``stats`` payload sections captured after the run.
    server_coalescing: dict = field(default_factory=dict)
    server_queue: dict = field(default_factory=dict)
    workers: int | None = None
    per_worker: list[dict] = field(default_factory=list)
    cluster_coalescing: dict | None = None
    #: Zero-copy trace fabric counters (builds vs mmap opens vs reuses and
    #: artifact bytes shared) — fleet-merged against a cluster coordinator.
    trace_fabric: dict | None = None
    #: Network cache tier counters (``docs/cachenet.md``) — present when the
    #: target mounts a ``--cache-backend remote://`` tier: remote hit/miss/
    #: degraded totals and the tier endpoint, from the server's ``stats`` op.
    remote_cache: dict | None = None

    # ------------------------------------------------------------------ derived
    @property
    def throughput_rps(self) -> float:
        finished = self.done + self.failed + self.cancelled
        if self.duration_seconds <= 0:
            return 0.0
        return round(finished / self.duration_seconds, 3)

    @property
    def utilization(self) -> float | None:
        """Fraction of total worker capacity the run kept busy.

        Summed server-side execution seconds over ``duration * workers`` —
        honest for serve (one process), an approximation for a cluster
        (coordinator-side assembly time excluded).
        """
        if not self.workers or self.duration_seconds <= 0:
            return None
        return round(self.execution.total / (self.duration_seconds * self.workers), 4)

    # --------------------------------------------------------------------- JSON
    def to_dict(self) -> dict:
        payload = {
            "schema": REPORT_SCHEMA,
            "target": self.target,
            "mix": self.mix,
            "duration_seconds": round(self.duration_seconds, 3),
            "throughput_rps": self.throughput_rps,
            "requests": {
                "issued": self.issued,
                "done": self.done,
                "failed": self.failed,
                "cancelled": self.cancelled,
                "cancel_requested": self.cancel_requested,
                "coalesced_tickets": self.coalesced_tickets,
                "hot": self.hot_issued,
                "streamed": self.streamed,
                "progress_events": self.progress_events,
            },
            "latency": self.latency.summary(),
            "queue_wait": self.queue_wait.summary(),
            "execution": self.execution.summary(),
            "coalescing": self.server_coalescing,
            "server_queue": self.server_queue,
            "workers": self.workers,
            "utilization": self.utilization,
            "per_worker": self.per_worker,
            "errors": self.errors[:20],  # bounded: a soak of failures stays readable
        }
        if self.cluster_coalescing is not None:
            payload["cluster_coalescing"] = self.cluster_coalescing
        if self.trace_fabric is not None:
            payload["trace_fabric"] = self.trace_fabric
        if self.remote_cache is not None:
            payload["remote_cache"] = self.remote_cache
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    # --------------------------------------------------------------------- text
    def to_text(self) -> str:
        lat = self.latency.summary()
        qw = self.queue_wait.summary()
        ex = self.execution.summary()

        def fmt(block: dict, key: str) -> str:
            value = block.get(key)
            return f"{value * 1000:.1f}ms" if value is not None else "-"

        lines = [
            f"loadgen report — target {self.target}",
            f"  requests   {self.issued} issued: {self.done} done, "
            f"{self.failed} failed, {self.cancelled} cancelled "
            f"({self.cancel_requested} cancels sent, {self.hot_issued} hot, "
            f"{self.streamed} streamed)",
            f"  duration   {self.duration_seconds:.2f}s  "
            f"throughput {self.throughput_rps} req/s",
            f"  latency    p50 {fmt(lat, 'p50_seconds')}  p95 {fmt(lat, 'p95_seconds')}  "
            f"p99 {fmt(lat, 'p99_seconds')}  max {fmt(lat, 'max_seconds')}",
            f"  queue wait p50 {fmt(qw, 'p50_seconds')}  p95 {fmt(qw, 'p95_seconds')}",
            f"  execution  p50 {fmt(ex, 'p50_seconds')}  p95 {fmt(ex, 'p95_seconds')}",
        ]
        if self.server_coalescing:
            lines.append(
                f"  coalescing {self.server_coalescing.get('tickets_coalesced', 0)}"
                f"/{self.server_coalescing.get('tickets_attached', 0)} tickets "
                f"(hit rate {self.server_coalescing.get('hit_rate', 0.0):.1%}, "
                f"{self.server_coalescing.get('jobs_executed', 0)} jobs executed)"
            )
        if self.cluster_coalescing:
            lines.append(
                f"  flights    {self.cluster_coalescing.get('flights_executed', 0)} executed, "
                f"{self.cluster_coalescing.get('flights_coalesced', 0)} coalesced "
                f"(hit rate {self.cluster_coalescing.get('hit_rate', 0.0):.1%})"
            )
        if self.trace_fabric:
            fabric = self.trace_fabric
            lines.append(
                f"  traces     {fabric.get('traces_built', 0)} built / "
                f"{fabric.get('traces_reused', 0)} reused; fabric "
                f"{fabric.get('tensors_built', 0)} tensor builds / "
                f"{fabric.get('mmap_opens', 0)} mmap opens "
                f"({fabric.get('bytes_shared', 0)} bytes shared), "
                f"{fabric.get('calibrations_computed', 0)} calibrations computed / "
                f"{fabric.get('calibrations_loaded', 0)} loaded"
            )
        if self.remote_cache:
            remote = self.remote_cache
            lines.append(
                f"  remote     {remote.get('endpoint', '?')}: "
                f"{remote.get('hits', 0)} hits / {remote.get('misses', 0)} misses, "
                f"{remote.get('degraded', 0)} degraded, "
                f"{remote.get('suppressed_lookups', 0)} negative-suppressed"
            )
        if self.utilization is not None:
            lines.append(
                f"  workers    {self.workers} — utilization {self.utilization:.1%}"
            )
        for entry in self.per_worker:
            lines.append(
                f"    {entry.get('worker')}: {entry.get('completed', 0)} completed "
                f"of {entry.get('dispatched', 0)} dispatched"
            )
        if self.errors:
            lines.append(f"  errors     {len(self.errors)} (first: {self.errors[0]})")
        return "\n".join(lines)

    def trajectory_section(self) -> dict:
        """The compact block a perf-trajectory record stores per target."""
        lat = self.latency.summary()
        return {
            "requests": self.issued,
            "done": self.done,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "throughput_rps": self.throughput_rps,
            "p50_seconds": lat["p50_seconds"],
            "p95_seconds": lat["p95_seconds"],
            "p99_seconds": lat["p99_seconds"],
            "coalescing_hit_rate": self.server_coalescing.get("hit_rate"),
            "mix_seed": self.mix.get("seed"),
        }


def validate_report(payload: dict) -> None:
    """Assert a report dict is well-formed; raises ``ValueError`` if not."""
    if not isinstance(payload, dict):
        raise ValueError("report must be a JSON object")
    if payload.get("schema") != REPORT_SCHEMA:
        raise ValueError(f"report schema must be {REPORT_SCHEMA}")
    for key in ("target", "mix", "duration_seconds", "throughput_rps", "requests",
                "latency", "queue_wait", "execution", "coalescing", "workers"):
        if key not in payload:
            raise ValueError(f"report is missing {key!r}")
    requests = payload["requests"]
    for key in ("issued", "done", "failed", "cancelled", "cancel_requested"):
        if not isinstance(requests.get(key), int):
            raise ValueError(f"report requests.{key} must be an integer")
    for block_name in ("latency", "queue_wait", "execution"):
        block = payload[block_name]
        missing = [key for key in _PERCENTILE_KEYS if key not in block]
        if missing:
            raise ValueError(f"report {block_name} is missing {', '.join(missing)}")
    finished = requests["done"] + requests["failed"] + requests["cancelled"]
    if finished != requests["issued"]:
        raise ValueError(
            f"report accounts for {finished} outcomes but issued {requests['issued']}"
        )
    if requests["done"] and payload["latency"]["p95_seconds"] is None:
        raise ValueError("report has completed requests but no latency percentiles")
