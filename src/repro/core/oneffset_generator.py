"""On-the-fly oneffset generation (Section V-C).

Neurons are stored in NM in their positional representation and converted into
an explicit term representation as they are broadcast to the tiles.  The
conversion is a leading-one detector per neuron lane: every cycle it emits the
next outstanding power of two together with an end-of-neuron marker.

The converter is parameterized by a registered encoding
(:mod:`repro.numerics.encodings`): ``positional`` reproduces the paper's
oneffset generator exactly, while signed encodings (CSD, HESE) emit per-term
signs that ride the PIP's existing negation input — only the generator
changes, never the datapath.  This module provides both the batch converter
used by the functional models and a cycle-stepped generator that mirrors the
hardware's per-lane behaviour (used by the dispatcher model and its tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.numerics.encodings import DEFAULT_ENCODING, get_encoding
from repro.numerics.oneffsets import OneffsetStream

__all__ = ["OneffsetGenerator", "NeuronLaneState"]


@dataclass
class NeuronLaneState:
    """Per-lane state of the oneffset generator.

    ``pending`` holds the not-yet-emitted term positions of the current neuron
    in ascending order; ``sign`` is the neuron's sign, applied by the PIP's
    negation input.  For signed encodings ``term_signs`` carries the per-term
    signs (aligned with ``pending``); the wire-level sign of a term is the
    product of the neuron sign and its term sign.
    """

    pending: list[int]
    sign: int
    done: bool = False
    term_signs: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.term_signs:
            self.term_signs = [1] * len(self.pending)
        if len(self.term_signs) != len(self.pending):
            raise ValueError("term_signs must align with pending positions")

    def next_offset(self) -> tuple[int, bool, bool]:
        """Emit ``(offset, end_of_neuron, is_null)`` and advance the lane.

        A lane whose neuron is exhausted keeps emitting null terms (the PIP's
        AND gate suppresses their contribution) until the whole group advances.
        """
        offset, _, end, null = self.next_term()
        return offset, end, null

    def next_term(self) -> tuple[int, int, bool, bool]:
        """Emit ``(offset, term_sign, end_of_neuron, is_null)`` and advance."""
        if not self.pending:
            self.done = True
            return 0, 1, True, True
        offset = self.pending.pop(0)
        term_sign = self.term_signs.pop(0)
        end = not self.pending
        if end:
            self.done = True
        return offset, term_sign, end, False


class OneffsetGenerator:
    """Converts positional neuron values into per-encoding term streams.

    Parameters
    ----------
    storage_bits:
        Width of the storage representation; values must fit in it.
    encoding:
        Registered encoding name (:mod:`repro.numerics.encodings`).  The
        default ``positional`` reproduces the paper's oneffset generator
        bit-for-bit.
    """

    def __init__(
        self, storage_bits: int = 16, encoding: str = DEFAULT_ENCODING
    ) -> None:
        if storage_bits < 1:
            raise ValueError("storage_bits must be positive")
        self.storage_bits = storage_bits
        self.encoding = get_encoding(encoding)

    def convert_value(self, value: int) -> OneffsetStream:
        """Serialize one neuron into its wire-level term stream.

        The stream carries ``(pow, eon)`` entries; for signed encodings the
        per-term signs travel on the separate negation wire modelled by
        :meth:`lane_states` (so :attr:`OneffsetStream.value` reconstructs the
        unsigned positional sum only for unsigned encodings).
        """
        if self.encoding.name == DEFAULT_ENCODING:
            return OneffsetStream.from_value(int(value), bits=self.storage_bits)
        positions = [
            position
            for _, position in self.encoding.terms(int(value), bits=self.storage_bits)
        ]
        if not positions:
            return OneffsetStream(entries=((0, True),))
        return OneffsetStream(
            entries=tuple(
                (position, index == len(positions) - 1)
                for index, position in enumerate(positions)
            )
        )

    def convert_brick(self, values: np.ndarray) -> list[OneffsetStream]:
        """Serialize one 16-neuron brick."""
        return [self.convert_value(int(v)) for v in np.asarray(values).ravel()]

    def lane_states(self, values: np.ndarray) -> list[NeuronLaneState]:
        """Initial per-lane generator state for a brick of neuron values."""
        states = []
        for raw in np.asarray(values, dtype=np.int64).ravel():
            magnitude = int(abs(raw))
            if magnitude >= (1 << self.storage_bits):
                raise ValueError(
                    f"value {int(raw)} does not fit in {self.storage_bits} bits"
                )
            terms = self.encoding.terms(magnitude, bits=self.storage_bits)
            states.append(
                NeuronLaneState(
                    pending=[position for _, position in terms],
                    sign=-1 if raw < 0 else 1,
                    term_signs=[sign for sign, _ in terms],
                )
            )
        return states

    def oneffset_lists(self, values: np.ndarray) -> list[list[int]]:
        """Ascending term-position lists for a brick (the scheduler's input format)."""
        return [list(state.pending) for state in self.lane_states(values)]

    def max_stream_length(self, values: np.ndarray) -> int:
        """Cycles the slowest lane of a brick needs (minimum 1)."""
        lists = self.oneffset_lists(values)
        return max(1, max((len(lst) for lst in lists), default=1))
