"""repro.runtime — parallel, cached experiment execution engine.

The runtime decomposes an experiment run into ``(network, preset,
config-group)`` simulation jobs with explicit dependencies, fans them out over
a process pool (``--jobs N``) and reassembles the results deterministically.
Expensive cycle simulations are memoized in a content-addressed on-disk cache
keyed by a stable fingerprint of (trace spec, sampling config, accelerator
config, code version), and each network's calibrated trace is built once per
session through a shared trace store.

Layering::

    fingerprint   stable content hashes (no repro dependencies)
    serialization NetworkResult/LayerResult <-> JSON payloads
    lifecycle     manifest index, gzip entry codec, LRU garbage collection
    backends      pluggable storage (memory / filesystem / shared directory)
    cache         content-addressed result cache (policy over one backend)
    trace_cache   the zero-copy trace fabric: mmap-backed tensor artifacts
    trace_store   TraceSpec + per-session calibrated-trace store
    session       RuntimeSession (cache + traces + stats) and the active session
    engine        simulate()/analyze(): cached execution against the session
    jobs          job model and run planning (dedup across experiments)
    scheduler     process-pool execution, serial fallback, run reports

The job model, cache-key scheme and session semantics are documented in
``docs/runtime.md``; :mod:`repro.serve` builds the async serving front-end on
top of this package, and :mod:`repro.cachenet` (``docs/cachenet.md``) plugs a
network-shared cache tier into the ``backends`` seam
(``--cache-backend remote://host:port``).
"""

from repro.core.progress import ProgressToken, SweepCancelled
from repro.runtime.backends import (
    CacheBackend,
    CorruptEntry,
    FilesystemBackend,
    InMemoryBackend,
    SharedDirectoryBackend,
)
from repro.runtime.cache import CacheStats, ResultCache
from repro.runtime.engine import SimulationRequest, StatisticsRequest, analyze, simulate
from repro.runtime.fingerprint import (
    code_fingerprint,
    fingerprint,
    simulation_key,
    statistics_key,
    trace_tensor_key,
)
from repro.runtime.jobs import (
    ExperimentJob,
    RunPlan,
    SimulationJob,
    StatisticsJob,
    build_plan,
)
from repro.runtime.lifecycle import CacheManifest, GCResult
from repro.runtime.scheduler import RunReport, run_experiments
from repro.runtime.session import (
    DEFAULT_CACHE_DIR,
    RunStats,
    RuntimeSession,
    configure_session,
    current_session,
    default_cache_dir,
    isolated_session,
    resolve_trace_dir,
    use_session,
)
from repro.runtime.trace_cache import (
    MmapTraceBacking,
    TraceArtifactStore,
    default_trace_dir,
)
from repro.runtime.trace_store import TraceSpec, TraceStore

__all__ = [
    "CacheBackend",
    "CacheManifest",
    "CacheStats",
    "CorruptEntry",
    "FilesystemBackend",
    "InMemoryBackend",
    "SharedDirectoryBackend",
    "ProgressToken",
    "SweepCancelled",
    "DEFAULT_CACHE_DIR",
    "GCResult",
    "ResultCache",
    "default_cache_dir",
    "SimulationRequest",
    "StatisticsRequest",
    "analyze",
    "simulate",
    "code_fingerprint",
    "fingerprint",
    "simulation_key",
    "statistics_key",
    "ExperimentJob",
    "RunPlan",
    "SimulationJob",
    "StatisticsJob",
    "build_plan",
    "RunReport",
    "run_experiments",
    "RunStats",
    "RuntimeSession",
    "configure_session",
    "current_session",
    "isolated_session",
    "use_session",
    "resolve_trace_dir",
    "MmapTraceBacking",
    "TraceArtifactStore",
    "default_trace_dir",
    "trace_tensor_key",
    "TraceSpec",
    "TraceStore",
]
