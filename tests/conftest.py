"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import ConvLayerSpec
from repro.nn.networks import Network
from repro.nn.precision import LayerPrecision
from repro.nn.traces import LayerTraceParams, NetworkTrace


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_layer() -> ConvLayerSpec:
    """A small convolutional layer usable by the functional models."""
    return ConvLayerSpec(
        name="tiny",
        input_channels=24,
        input_height=6,
        input_width=6,
        num_filters=4,
        filter_height=3,
        filter_width=3,
        stride=1,
        padding=1,
    )


@pytest.fixture
def strided_layer() -> ConvLayerSpec:
    """A small layer with stride 2 (exercises window/pallet arithmetic)."""
    return ConvLayerSpec(
        name="strided",
        input_channels=16,
        input_height=9,
        input_width=9,
        num_filters=3,
        filter_height=3,
        filter_width=3,
        stride=2,
        padding=0,
    )


@pytest.fixture
def tiny_network(tiny_layer, strided_layer) -> Network:
    """A two-layer network built from the tiny layers."""
    return Network(name="tiny_net", display_name="Tiny", layers=(tiny_layer, strided_layer))


@pytest.fixture
def tiny_trace(tiny_network) -> NetworkTrace:
    """A deterministic trace over the tiny network."""
    precisions = (LayerPrecision(msb=9, lsb=2), LayerPrecision(msb=8, lsb=2))
    params = (
        LayerTraceParams(sigma=80.0, zero_fraction=0.5),
        LayerTraceParams(sigma=60.0, zero_fraction=0.4),
    )
    return NetworkTrace(
        network=tiny_network,
        precisions=precisions,
        params=params,
        seed=7,
        storage_bits=16,
    )
