"""Length-prefixed JSON frame codec for the cache-server wire protocol.

Every message — request or response — is one *frame*: a 4-byte big-endian
unsigned length followed by that many bytes of UTF-8 JSON (newline-terminated,
so a captured stream is also valid JSON-lines for debugging).  The length
prefix is what distinguishes this protocol from the serve layer's
newline-delimited one: cache payloads are arbitrary JSON documents that may be
large, and the prefix lets both sides size their reads exactly instead of
scanning for delimiters.

Frames are bounded by :data:`MAX_FRAME_BYTES`; an oversized or malformed
frame raises :class:`FrameError` and the connection is dropped (a damaged
stream cannot be resynchronized).  Both helpers speak to binary file objects
(``socket.makefile("rwb")`` on the client, the request handler's
``rfile``/``wfile`` on the server) so socket timeouts apply unchanged.

Protocol semantics — the ops, auth and failure behavior — are documented in
``docs/cachenet.md``.
"""

from __future__ import annotations

import json
import struct
from typing import BinaryIO

__all__ = ["FrameError", "MAX_FRAME_BYTES", "read_frame", "write_frame"]

#: Upper bound on one frame's body.  Entry payloads are gzip-sized JSON
#: documents (typically kilobytes); anything near this bound is damage.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


class FrameError(ValueError):
    """The stream does not contain a valid frame (connection must drop)."""


def _read_exact(stream: BinaryIO, count: int) -> bytes:
    """Exactly ``count`` bytes from ``stream``; ``b""`` on clean EOF at a
    frame boundary, :class:`FrameError` on EOF mid-frame."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            if remaining == count:
                return b""
            raise FrameError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def write_frame(stream: BinaryIO, message: dict) -> None:
    """Serialize ``message`` as one length-prefixed JSON frame and flush."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    stream.write(_HEADER.pack(len(body)) + body)
    stream.flush()


def read_frame(stream: BinaryIO) -> dict | None:
    """The next frame's message, or ``None`` on clean end-of-stream."""
    header = _read_exact(stream, _HEADER.size)
    if not header:
        return None
    (length,) = _HEADER.unpack(header)
    if length == 0 or length > MAX_FRAME_BYTES:
        raise FrameError(f"invalid frame length {length}")
    body = _read_exact(stream, length)
    if len(body) != length:
        raise FrameError("connection closed mid-frame")
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FrameError(f"frame body is not JSON: {error}") from error
    if not isinstance(message, dict):
        raise FrameError("frame body is not a JSON object")
    return message
