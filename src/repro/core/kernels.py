"""Batched drain kernel: whole-array cycle computation for the sweep engine.

The drain computation — how many cycles a PIP column needs to stream its
neurons' oneffsets through the two-stage shifter — is the hot path of every
sweep.  The original implementation (kept as
:func:`repro.core.scheduling._reference_drain_cycles`) walks the schedule one
cycle at a time over a boolean bit-plane tensor; this module replaces it with
a packed formulation that the whole batch shares:

* **Packed masks.**  Every column's 16 neuron magnitudes are stored as one
  ``uint16`` bit mask per lane (``pack_drain_masks``), 16x denser than the
  boolean bit-plane tensor, so one kernel call can hold *all* sampled pallets
  and *all* drain groups of a layer at once.  Signed-term encodings
  (:mod:`repro.numerics.encodings`) that use positions above 15 — CSD and
  HESE reach position 16 — pack into ``uint32`` masks and take the same fast
  path; the lookup tables stay 16-bit and wide masks are split into halves.
* **Closed-form fast path.**  A column whose set bits all fit inside one
  first-stage window (``highest - lowest < reach``) never stalls: it finishes
  in exactly its busiest lane's popcount.  This generalizes the full-reach
  shortcut (``reach >= positions``) and resolves the large majority of
  trimmed columns without any iteration.
* **Batched frontier loop.**  The remaining slow columns of *every* drain
  group advance together, one whole-array update per cycle, so the number of
  Python-level iterations is bounded by the maximum drain depth across the
  whole batch — not summed per group as the per-group loop was.

:func:`batched_drain_cycles` evaluates many ``first_stage_bits`` reaches over
one packed tensor in a single call (the per-column statistics are computed
once and shared); :func:`repro.core.sweep.sweep_network` dispatches all of a
layer's ``(first_stage_bits, software_trimming)`` drain groups through it.

The results are **bit-identical** to the reference scheduler — the golden
suite (``tests/test_core_kernels.py``) proves it against both
``_reference_drain_cycles`` and :class:`~repro.core.accelerator.PragmaticAccelerator`,
and ``docs/runtime.md`` documents the guarantee.

An optional compiled backend for the frontier loop can be selected with
``REPRO_DRAIN_BACKEND=numba``; when numba is not installed (or fails to
compile) the kernel silently falls back to the numpy loop, and both backends
produce identical cycle counts.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "KERNEL_MAX_POSITIONS",
    "pack_drain_masks",
    "pack_bit_planes",
    "batched_drain_cycles",
    "packed_essential_terms",
    "drain_backend",
]

#: Widest bit position the packed representation holds (``uint32`` masks for
#: signed-term planes; plain positional packing stays ``uint16``).
KERNEL_MAX_POSITIONS = 32

#: Width of the lookup tables (wider masks are split into 16-bit halves).
_TABLE_POSITIONS = 16

#: Sentinel head value of an empty ``uint16`` lane (no outstanding oneffsets).
_EMPTY_HEAD = _TABLE_POSITIONS

#: Environment variable selecting the frontier-loop backend.
_BACKEND_ENV = "REPRO_DRAIN_BACKEND"

# Lazily-built lookup tables over all 2**16 masks: trailing-zero position
# (lowest set bit; 16 for mask 0), popcount, and highest set bit (-1 for 0).
_TZ16: np.ndarray | None = None
_POP16: np.ndarray | None = None
_HB16: np.ndarray | None = None

_NUMBA_FRONTIER = None
_NUMBA_FAILED = False


def _tables() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The (trailing-zero, popcount, highest-bit) tables, built once."""
    global _TZ16, _POP16, _HB16
    if _TZ16 is None:
        n = np.arange(1 << _TABLE_POSITIONS, dtype=np.uint32)
        tz = np.full(n.size, _EMPTY_HEAD, dtype=np.uint8)
        hb = np.full(n.size, -1, dtype=np.int8)
        pop = np.zeros(n.size, dtype=np.uint8)
        for position in range(_TABLE_POSITIONS - 1, -1, -1):
            set_here = ((n >> position) & 1).astype(bool)
            tz[set_here] = position
            pop += set_here
        for position in range(_TABLE_POSITIONS):
            hb[((n >> position) & 1).astype(bool)] = position
        _TZ16, _POP16, _HB16 = tz, pop, hb
    return _TZ16, _POP16, _HB16


# Half-splitting helpers: wide (uint32) masks reuse the 16-bit tables.  Each
# returns int16/int64 arrays so downstream arithmetic never wraps.
def _mask_width(masks: np.ndarray) -> int:
    return _TABLE_POSITIONS if masks.dtype == np.uint16 else KERNEL_MAX_POSITIONS


def _trailing_zeros(masks: np.ndarray) -> np.ndarray:
    """Lowest set bit per mask (the mask's width for an empty mask)."""
    tz, _, _ = _tables()
    if masks.dtype == np.uint16:
        return tz[masks].astype(np.int16)
    lo = (masks & np.uint32(0xFFFF)).astype(np.uint16)
    hi = (masks >> np.uint32(16)).astype(np.uint16)
    low = tz[lo].astype(np.int16)
    high = np.int16(16) + tz[hi].astype(np.int16)
    return np.where(lo != 0, low, high)


def _popcounts(masks: np.ndarray) -> np.ndarray:
    """Set-bit count per mask."""
    _, pop, _ = _tables()
    if masks.dtype == np.uint16:
        return pop[masks].astype(np.int64)
    lo = (masks & np.uint32(0xFFFF)).astype(np.uint16)
    hi = (masks >> np.uint32(16)).astype(np.uint16)
    return pop[lo].astype(np.int64) + pop[hi].astype(np.int64)


def _highest_bits(masks: np.ndarray) -> np.ndarray:
    """Highest set bit per mask (-1 for an empty mask)."""
    _, _, hb = _tables()
    if masks.dtype == np.uint16:
        return hb[masks].astype(np.int64)
    lo = (masks & np.uint32(0xFFFF)).astype(np.uint16)
    hi = (masks >> np.uint32(16)).astype(np.uint16)
    return np.where(hi != 0, 16 + hb[hi].astype(np.int64), hb[lo].astype(np.int64))


# --------------------------------------------------------------------- packing
def pack_drain_masks(values: np.ndarray, storage_bits: int) -> np.ndarray:
    """Pack integer neuron values into per-lane ``uint16`` bit masks.

    ``values`` may have any shape; element ``[...]`` of the result holds the
    magnitude bits of the corresponding neuron.  Raises :class:`ValueError`
    when a magnitude does not fit in ``storage_bits`` (same contract as
    :func:`repro.numerics.fixedpoint.bit_matrix`) or when ``storage_bits``
    exceeds the packed width.  Widths above 16 pack into ``uint32`` masks.
    """
    if not 1 <= storage_bits <= KERNEL_MAX_POSITIONS:
        raise ValueError(
            f"storage_bits must be in [1, {KERNEL_MAX_POSITIONS}], got {storage_bits}"
        )
    magnitudes = np.abs(np.asarray(values, dtype=np.int64))
    limit = (1 << storage_bits) - 1
    if magnitudes.size and int(magnitudes.max()) > limit:
        raise ValueError(
            f"magnitude {int(magnitudes.max())} does not fit in {storage_bits} bits "
            f"(max {limit})"
        )
    dtype = np.uint16 if storage_bits <= _TABLE_POSITIONS else np.uint32
    return magnitudes.astype(dtype)


def pack_bit_planes(bits: np.ndarray) -> np.ndarray:
    """Pack a boolean bit-plane tensor ``(..., positions)`` into mask words.

    Up to 16 positions pack into ``uint16`` masks (the positional storage
    formats); 17–32 positions (signed-term planes such as 17-position CSD
    tensors) pack into ``uint32``.
    """
    arr = np.asarray(bits, dtype=bool)
    if arr.ndim < 1:
        raise ValueError("bits must have at least a positions dimension")
    positions = arr.shape[-1]
    if positions > KERNEL_MAX_POSITIONS:
        raise ValueError(
            f"cannot pack {positions} bit positions into {KERNEL_MAX_POSITIONS}-bit masks"
        )
    weights = (np.int64(1) << np.arange(positions, dtype=np.int64))
    packed = np.tensordot(arr.astype(np.int64), weights, axes=([-1], [0]))
    dtype = np.uint16 if positions <= _TABLE_POSITIONS else np.uint32
    return packed.astype(dtype)


def packed_essential_terms(masks: np.ndarray) -> float:
    """Total terms (set bits) of a packed mask tensor."""
    return float(_popcounts(_as_masks(masks)).sum(dtype=np.int64))


def _as_masks(masks: np.ndarray) -> np.ndarray:
    """Coerce a tensor into packed mask form, preserving wide masks."""
    masks = np.asarray(masks)
    if masks.dtype in (np.uint16, np.uint32):
        return masks
    return masks.astype(np.uint16)


# -------------------------------------------------------------- frontier loops
def _frontier_numpy(masks: np.ndarray, reach: np.ndarray) -> np.ndarray:
    """Drain the slow columns with one whole-array update per cycle.

    ``masks`` is ``uint16``/``uint32 [columns, lanes]`` (consumed by value —
    the caller passes a private copy); ``reach`` is ``int16 [columns]``.
    Returns the per-column cycle counts.  Columns retire from the working set
    as they drain, so late iterations touch only the deepest columns.
    """
    empty_head = _mask_width(masks)
    one = masks.dtype.type(1)
    out = np.zeros(masks.shape[0], dtype=np.int64)
    cycles = np.zeros(masks.shape[0], dtype=np.int64)
    index = np.arange(masks.shape[0])
    reach = reach.astype(np.int16, copy=False)
    while masks.size:
        heads = _trailing_zeros(masks)
        column_minimum = heads.min(axis=1)
        eligible = (heads < empty_head) & (
            heads < (column_minimum + reach)[:, None]
        )
        masks = np.where(eligible, masks & (masks - one), masks)
        cycles += 1
        alive = masks.any(axis=1)
        if not alive.all():
            finished = ~alive
            out[index[finished]] = cycles[finished]
            masks = masks[alive]
            reach = reach[alive]
            cycles = cycles[alive]
            index = index[alive]
    return out


def _load_numba_frontier():
    """JIT-compile the frontier loop with numba, or ``None`` when unavailable."""
    global _NUMBA_FRONTIER, _NUMBA_FAILED
    if _NUMBA_FRONTIER is not None:
        return _NUMBA_FRONTIER
    if _NUMBA_FAILED:
        return None
    try:
        import numba

        @numba.njit(cache=False)
        def frontier(masks, reach):  # pragma: no cover - requires numba
            rows, lanes = masks.shape
            out = np.zeros(rows, dtype=np.int64)
            for row in range(rows):
                cycles = 0
                while True:
                    column_minimum = 64
                    for lane in range(lanes):
                        value = masks[row, lane]
                        if value != 0:
                            trailing = 0
                            while value & 1 == 0:
                                value >>= 1
                                trailing += 1
                            if trailing < column_minimum:
                                column_minimum = trailing
                    if column_minimum == 64:
                        break
                    limit = column_minimum + reach[row]
                    for lane in range(lanes):
                        value = masks[row, lane]
                        if value != 0:
                            trailing = 0
                            while value & 1 == 0:
                                value >>= 1
                                trailing += 1
                            if trailing < limit:
                                masks[row, lane] &= masks[row, lane] - 1
                    cycles += 1
                out[row] = cycles
            return out

        def wrapper(masks: np.ndarray, reach: np.ndarray) -> np.ndarray:
            return frontier(masks.astype(np.int64), reach.astype(np.int64))

        # Compile eagerly on a trivial input so a broken toolchain falls back
        # here instead of mid-sweep.
        wrapper(np.array([[1]], dtype=np.uint16), np.array([1], dtype=np.int16))
        _NUMBA_FRONTIER = wrapper
        return wrapper
    except Exception:
        _NUMBA_FAILED = True
        return None


def drain_backend() -> str:
    """The frontier-loop backend the next kernel call will use."""
    if os.environ.get(_BACKEND_ENV, "").strip().lower() == "numba":
        if _load_numba_frontier() is not None:
            return "numba"
    return "numpy"


def _frontier(masks: np.ndarray, reach: np.ndarray) -> np.ndarray:
    if drain_backend() == "numba":
        return _NUMBA_FRONTIER(masks, reach)
    return _frontier_numpy(masks, reach)


# --------------------------------------------------------------------- kernel
def batched_drain_cycles(masks: np.ndarray, reaches) -> np.ndarray:
    """Drain cycles of every column under every first-stage reach, in one call.

    Parameters
    ----------
    masks:
        Packed term masks shaped ``(..., lanes)`` — the lanes of one PIP
        column along the last axis, any leading batch shape (the sweep packs
        ``[pallets, steps, windows, neurons]``).  ``uint16`` for positional
        packing, ``uint32`` for signed-term planes using positions above 15
        (other dtypes are coerced to ``uint16``).
    reaches:
        Sequence of first-stage reaches (``2 ** first_stage_bits``, each at
        least 1) to evaluate.  The per-column statistics (popcounts, bit
        span) are computed once and shared by every reach.

    Returns
    -------
    numpy.ndarray
        ``int64`` cycle counts shaped ``(len(reaches), *masks.shape[:-1])``.
        Columns with no set bits report zero cycles, exactly like the
        reference scheduler.
    """
    masks = _as_masks(masks)
    if masks.ndim < 1:
        raise ValueError("masks must have at least a lanes dimension")
    reaches = [int(reach) for reach in reaches]
    if not reaches:
        raise ValueError("reaches must not be empty")
    if any(reach < 1 for reach in reaches):
        raise ValueError("every reach must be at least 1")

    *lead, lanes = masks.shape
    flat = np.ascontiguousarray(masks.reshape(-1, lanes))
    columns = flat.shape[0]
    out = np.zeros((len(reaches), columns), dtype=np.int64)
    if columns:
        busiest = _popcounts(flat).max(axis=1)
        column_mask = np.bitwise_or.reduce(flat, axis=1)
        # Bit span of the column; empty columns go deeply negative and are
        # therefore always closed-form (zero busiest lanes -> zero cycles).
        span = _highest_bits(column_mask) - _trailing_zeros(column_mask)
        slow_sets: list[tuple[int, np.ndarray]] = []
        for slot, reach in enumerate(reaches):
            closed = span < reach
            out[slot] = np.where(closed, busiest, 0)
            slow = np.nonzero(~closed)[0]
            if slow.size:
                slow_sets.append((slot, slow))
        if slow_sets:
            rows = np.concatenate([slow for _, slow in slow_sets])
            row_reach = np.concatenate(
                [
                    np.full(slow.size, reaches[slot], dtype=np.int16)
                    for slot, slow in slow_sets
                ]
            )
            cycles = _frontier(flat[rows], row_reach)
            offset = 0
            for slot, slow in slow_sets:
                out[slot, slow] = cycles[offset : offset + slow.size]
                offset += slow.size
    return out.reshape((len(reaches), *lead))
