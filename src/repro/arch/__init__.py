"""Shared architecture substrate: chip configuration, tiling and memory models."""

from repro.arch.config import DEFAULT_CHIP, ChipConfig
from repro.arch.memory import AccessCounters, NeuronMemory, SynapseBuffer, layer_fits_on_chip
from repro.arch.tiling import (
    BrickPosition,
    SamplingConfig,
    brick_positions,
    exact_pallet_values,
    extract_brick,
    extract_pallet_step,
    iter_pallet_steps,
    pallet_window_coordinates,
    sample_pallet_values,
    window_coordinates,
)

__all__ = [
    "ChipConfig",
    "DEFAULT_CHIP",
    "NeuronMemory",
    "SynapseBuffer",
    "AccessCounters",
    "layer_fits_on_chip",
    "BrickPosition",
    "SamplingConfig",
    "brick_positions",
    "window_coordinates",
    "pallet_window_coordinates",
    "extract_brick",
    "extract_pallet_step",
    "iter_pallet_steps",
    "exact_pallet_values",
    "sample_pallet_values",
]
