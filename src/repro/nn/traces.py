"""Synthetic activation traces.

The paper measures its statistics (essential bit content, term counts, cycle
counts) on activation traces collected from real ImageNet inference.  Those
traces are not redistributable, so this module generates synthetic per-layer
activation streams with the same *bit statistics*:

* a fraction of exactly-zero neurons (the ReLU-censored mass), and
* non-zero magnitudes drawn from a half-normal distribution whose scale is tied
  to the layer's precision window and calibrated (see
  :mod:`repro.nn.calibration`) so that the per-network essential-bit content
  matches the paper's own Table I.

Every quantity the architecture exploits — how many bits are set, where they
are, how they distribute across neurons within a pallet — is a function of the
value distribution, so reproducing the published bit statistics reproduces the
inputs the evaluation needs.  The substitution is documented in DESIGN.md §4.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field

import numpy as np

from repro.nn.layers import ConvLayerSpec
from repro.nn.networks import Network
from repro.nn.precision import LayerPrecision

__all__ = [
    "FULL_CACHE_ENTRIES",
    "LayerTraceParams",
    "NetworkTrace",
    "TraceBacking",
    "generate_layer_values",
    "generate_synapses",
]


#: Magnitude distributions the trace generator supports.
DISTRIBUTIONS = ("lognormal", "half_normal", "uniform")

#: Bound on :attr:`NetworkTrace._full_cache` (``cache=True`` tensors kept per
#: trace).  Full layer tensors are large (tens of MB for early VGG layers);
#: an unbounded per-trace dict silently grows RSS in long-lived processes, so
#: only the most recently used few stay resident.
FULL_CACHE_ENTRIES = 4

#: Default lognormal shape (log-space standard deviation).  Real post-ReLU
#: activation magnitudes are heavy tailed; this shape, combined with the
#: calibrated scale, reproduces both the mean essential-bit content of Table I
#: and pallet-maximum statistics consistent with the paper's measured speedups.
DEFAULT_SHAPE = 1.5


@dataclass(frozen=True)
class LayerTraceParams:
    """Distribution parameters for one layer's synthetic activations.

    Attributes
    ----------
    sigma:
        Scale in LSB units of the storage representation: the median magnitude
        for the lognormal distribution, the standard deviation for the
        half-normal, or the maximum value for the uniform distribution.
    zero_fraction:
        Probability that a neuron is exactly zero.
    max_magnitude:
        Saturation limit of the storage representation.
    distribution:
        ``"lognormal"`` (ReLU-fed layers), ``"half_normal"``, or ``"uniform"``
        (image-fed first layer).
    shape:
        Log-space standard deviation of the lognormal distribution; ignored by
        the other distributions.
    """

    sigma: float
    zero_fraction: float
    max_magnitude: int = (1 << 16) - 1
    distribution: str = "lognormal"
    shape: float = DEFAULT_SHAPE

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError(f"sigma must be positive, got {self.sigma}")
        if not 0.0 <= self.zero_fraction < 1.0:
            raise ValueError(f"zero_fraction must be in [0, 1), got {self.zero_fraction}")
        if self.max_magnitude < 1:
            raise ValueError("max_magnitude must be positive")
        if self.distribution not in DISTRIBUTIONS:
            raise ValueError(
                f"distribution must be one of {DISTRIBUTIONS}, got {self.distribution!r}"
            )
        if self.shape <= 0:
            raise ValueError(f"shape must be positive, got {self.shape}")


def generate_layer_values(
    shape: tuple[int, ...],
    params: LayerTraceParams,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw synthetic post-ReLU activation values (non-negative integers).

    Values are zero with probability ``params.zero_fraction``; otherwise their
    magnitude is drawn from the configured distribution, rounded to the nearest
    integer (minimum 1, since the zero mass is modelled explicitly) and
    saturated to the storage range.
    """
    count = int(np.prod(shape))
    if params.distribution == "lognormal":
        magnitudes = rng.lognormal(mean=np.log(params.sigma), sigma=params.shape, size=count)
    elif params.distribution == "half_normal":
        magnitudes = np.abs(rng.normal(loc=0.0, scale=params.sigma, size=count))
    else:  # uniform
        magnitudes = rng.uniform(0.0, params.sigma, size=count)
    values = np.rint(magnitudes).astype(np.int64)
    values = np.clip(values, 1, params.max_magnitude)
    zero_mask = rng.random(count) < params.zero_fraction
    values[zero_mask] = 0
    return values.reshape(shape)


def generate_synapses(
    layer: ConvLayerSpec,
    rng: np.random.Generator,
    magnitude_bits: int = 8,
) -> np.ndarray:
    """Generate signed synthetic synapses ``[N, I, Fy, Fx]`` for functional tests."""
    if magnitude_bits < 1 or magnitude_bits > 15:
        raise ValueError("magnitude_bits must be in [1, 15]")
    limit = 1 << magnitude_bits
    shape = (
        layer.num_filters,
        layer.input_channels,
        layer.filter_height,
        layer.filter_width,
    )
    return rng.integers(-limit, limit, size=shape, dtype=np.int64)


class TraceBacking:
    """The pluggable seam behind :meth:`NetworkTrace.layer_input`.

    A backing resolves full layer tensors from somewhere other than the
    on-demand generator — the zero-copy trace fabric
    (:mod:`repro.runtime.trace_cache`) returns read-only ``np.memmap`` views
    of content-addressed ``.npy`` artifacts, so every process on a host
    shares one physical copy.  Returning ``None`` falls back to on-demand
    generation; because artifacts are keyed by a content hash of the spec and
    the trace-generating code, a backed tensor is bit-identical to a
    generated one by construction (and proven so by the fabric's golden
    tests).
    """

    def layer_tensor(
        self, trace: "NetworkTrace", layer_index: int
    ) -> np.ndarray | None:  # pragma: no cover - interface default
        return None


@dataclass
class NetworkTrace:
    """Per-layer synthetic activation streams for one network.

    The trace is deterministic: layer ``i`` always produces the same values for
    a given ``seed``, independently of which other layers were generated first.

    Attributes
    ----------
    network:
        The network whose layers the trace covers.
    precisions:
        Per-layer precision windows (drives the magnitude scale and the
        software-trimming experiments).
    params:
        Per-layer :class:`LayerTraceParams`.
    seed:
        Base seed for the deterministic per-layer generators.
    storage_bits:
        Width of the storage representation the values are bounded by.
    """

    network: Network
    precisions: tuple[LayerPrecision, ...]
    params: tuple[LayerTraceParams, ...]
    seed: int = 0
    storage_bits: int = 16
    #: Small LRU of ``cache=True`` tensors (bounded by FULL_CACHE_ENTRIES);
    #: underscore-prefixed fields are excluded from fingerprints and equality.
    _full_cache: "collections.OrderedDict[int, np.ndarray]" = field(
        default_factory=collections.OrderedDict, repr=False, compare=False
    )
    #: Optional :class:`TraceBacking` resolving tensors through the trace
    #: fabric; ``None`` keeps the pure generate-on-demand path.
    _backing: "TraceBacking | None" = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        expected = self.network.num_layers
        if len(self.precisions) != expected:
            raise ValueError(
                f"expected {expected} precision entries, got {len(self.precisions)}"
            )
        if len(self.params) != expected:
            raise ValueError(f"expected {expected} param entries, got {len(self.params)}")

    # ------------------------------------------------------------------ helpers
    def _rng(self, layer_index: int, stream: int = 0) -> np.random.Generator:
        return np.random.default_rng((self.seed, layer_index, stream))

    def layer(self, layer_index: int) -> ConvLayerSpec:
        """The layer spec at ``layer_index``."""
        return self.network.layers[layer_index]

    def layer_precision(self, layer_index: int) -> LayerPrecision:
        """The precision window of the layer at ``layer_index``."""
        return self.precisions[layer_index]

    def layer_params(self, layer_index: int) -> LayerTraceParams:
        """The trace distribution parameters of the layer at ``layer_index``."""
        return self.params[layer_index]

    # ----------------------------------------------------------------- backing
    def attach_backing(self, backing: "TraceBacking | None") -> None:
        """Install (or remove) the tensor backing this trace resolves through."""
        self._backing = backing

    @property
    def backing(self) -> "TraceBacking | None":
        return self._backing

    # ------------------------------------------------------------------ values
    def layer_input(self, layer_index: int, cache: bool = False) -> np.ndarray:
        """Full synthetic input tensor ``[I, Ny, Nx]`` for the layer.

        Resolution order: the per-trace LRU of ``cache=True`` tensors, then
        the attached :class:`TraceBacking` (read-only shared mmap), then
        on-demand generation.  ``cache=True`` keeps the returned tensor for
        repeat use (bounded by ``FULL_CACHE_ENTRIES``); large tensors are
        otherwise resolved fresh per call.
        """
        cached = self._full_cache.get(layer_index)
        if cached is not None:
            self._full_cache.move_to_end(layer_index)
            return cached
        values = None
        if self._backing is not None:
            values = self._backing.layer_tensor(self, layer_index)
        if values is None:
            values = self.generate_layer_input(layer_index)
        if cache:
            self._full_cache[layer_index] = values
            while len(self._full_cache) > FULL_CACHE_ENTRIES:
                self._full_cache.popitem(last=False)
        return values

    def generate_layer_input(self, layer_index: int) -> np.ndarray:
        """Generate the layer's full tensor on demand (no cache, no backing).

        This is the ground truth the fabric materializes from: the backing's
        builder calls it exactly once per ``(spec, layer)`` per host, and the
        golden tests assert the mmap path returns arrays exactly equal to it.
        """
        layer = self.layer(layer_index)
        shape = (layer.input_channels, layer.input_height, layer.input_width)
        return generate_layer_values(
            shape, self.layer_params(layer_index), self._rng(layer_index)
        )

    def sample_layer_values(self, layer_index: int, count: int) -> np.ndarray:
        """Draw ``count`` i.i.d. neuron values from the layer's distribution.

        Used by the analysis passes and by the sampled cycle simulator; drawn
        from a separate deterministic stream so samples do not depend on whether
        the full tensor was generated.
        """
        if count < 1:
            raise ValueError("count must be positive")
        return generate_layer_values(
            (count,), self.layer_params(layer_index), self._rng(layer_index, stream=1)
        )

    def layer_weights(self) -> np.ndarray:
        """MAC count of each layer, used to weight per-layer statistics."""
        return np.array([layer.macs for layer in self.network.layers], dtype=np.float64)

    def stream_weights(self) -> np.ndarray:
        """Neuron-stream length of each layer (weights for Table I statistics)."""
        return np.array(
            [layer.neuron_stream_length() for layer in self.network.layers], dtype=np.float64
        )
