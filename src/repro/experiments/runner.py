"""Experiment registry and command-line entry point.

Run a single experiment::

    python -m repro.experiments.runner --experiment fig9 --preset fast

regenerate every table and figure in parallel with a warm result cache::

    python -m repro.experiments.runner --all --preset full --jobs 4

list what is available::

    python -m repro.experiments.runner --list

or maintain the on-disk result cache::

    python -m repro.experiments.runner --cache-stats
    python -m repro.experiments.runner --cache-gc --max-bytes 500M --max-age 30d
    python -m repro.experiments.runner --cache-clear

``python -m repro`` is an alias for this module, and the installed console
script is ``repro-experiments``.  Runs are executed by :mod:`repro.runtime`:
``--jobs N`` fans simulation and experiment jobs out over a process pool,
``--cache-dir``/``--no-cache`` control the content-addressed result cache, and
``--out DIR`` exports one JSON artifact per experiment.  The cache verbs read
the manifest maintained by :mod:`repro.runtime.lifecycle` — no directory
scans — and garbage collection evicts least-recently-used entries first.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable

from repro.experiments import (
    ablation,
    encodings,
    extension_csd,
    fig2,
    fig3,
    fig9,
    fig10,
    fig11,
    fig12,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.experiments.base import (
    ExperimentResult,
    PRESETS,
    Preset,
    export_results,
    parse_age,
    parse_size,
)

__all__ = [
    "EXPERIMENTS",
    "experiment_description",
    "run_experiment",
    "run_all",
    "main",
]


def _format_bytes(count: int) -> str:
    """Human-readable rendering next to the exact byte count."""
    size = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024
    return f"{count} B"  # pragma: no cover - loop always returns


def _cache_maintenance(args) -> int:
    """Handle ``--cache-stats`` / ``--cache-gc`` / ``--cache-clear``."""
    from repro.runtime import ResultCache, default_cache_dir

    directory = Path(args.cache_dir or default_cache_dir()).expanduser()
    if not directory.is_dir():
        # Read-only verbs must not conjure directories (a typo'd --cache-dir
        # would silently look like an empty cache).  An explicit --trace-dir
        # is an independent tier and still gets reported/maintained.
        print(f"cache dir: {directory} (does not exist)")
        if args.cache_clear or args.cache_gc:
            _trace_tier_maintenance(args, directory)
        else:
            _trace_tier_stats(args, directory)
        return 0
    cache = ResultCache(directory=directory)
    if args.cache_clear:
        removed = cache.clear()
        print(f"cache dir: {cache.directory}")
        print(f"cleared {removed} entries")
        _trace_tier_maintenance(args, directory)
        return 0
    if args.cache_gc:
        result = cache.gc(max_bytes=args.max_bytes, max_age=args.max_age)
        print(f"cache dir: {cache.directory}")
        print(f"gc: {result.summary()}")
        _trace_tier_maintenance(args, directory)
        return 0
    usage = cache.usage()
    print(f"cache dir: {cache.directory}")
    print(f"entries: {usage['entries']}")
    print(f"disk bytes: {usage['disk_bytes']} ({_format_bytes(usage['disk_bytes'])})")
    if usage["oldest_age_seconds"] is not None:
        print(f"oldest entry age: {usage['oldest_age_seconds']:.0f}s")
        print(f"least-recently-used age: {usage['lru_age_seconds']:.0f}s")
    _trace_tier_stats(args, directory)
    return 0


def _trace_dir_for(args, cache_directory: Path):
    """The trace tier the maintenance verbs operate on (or ``None``)."""
    from repro.runtime.session import resolve_trace_dir

    trace_dir = resolve_trace_dir(
        cache_directory,
        getattr(args, "trace_dir", None),
        getattr(args, "no_trace_cache", False),
    )
    if trace_dir is None or not trace_dir.is_dir():
        return None
    return trace_dir


def _trace_tier_maintenance(args, cache_directory: Path) -> None:
    """Apply ``--cache-gc``/``--cache-clear`` to the trace-artifact tier."""
    from repro.runtime import TraceArtifactStore

    trace_dir = _trace_dir_for(args, cache_directory)
    if trace_dir is None:
        return
    store = TraceArtifactStore(trace_dir)
    if args.cache_clear:
        removed = store.clear()
        print(f"cleared {removed} trace artifacts")
    else:
        result = store.gc(max_bytes=args.max_bytes, max_age=args.max_age)
        print(f"trace gc: {result.summary()}")


def _trace_tier_stats(args, cache_directory: Path) -> None:
    """Report the trace-artifact tier alongside ``--cache-stats`` output."""
    from repro.runtime import TraceArtifactStore

    trace_dir = _trace_dir_for(args, cache_directory)
    if trace_dir is None:
        print("trace dir: (no artifacts)")
        return
    usage = TraceArtifactStore(trace_dir).usage()
    print(f"trace dir: {usage['directory']}")
    print(
        f"trace artifacts: {usage['tensors']} tensors "
        f"({usage['tensor_bytes']} bytes, {_format_bytes(usage['tensor_bytes'])}), "
        f"{usage['calibrations']} calibrations"
    )
    print(
        f"trace disk bytes: {usage['disk_bytes']} "
        f"({_format_bytes(usage['disk_bytes'])})"
    )

#: Registry of experiment id → run function, in the paper's presentation order.
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "table2": table2.run,
    "fig9": fig9.run,
    "table3": table3.run,
    "fig10": fig10.run,
    "table4": table4.run,
    "fig11": fig11.run,
    "table5": table5.run,
    "fig12": fig12.run,
    "ablation": ablation.run,
    "extension_csd": extension_csd.run,
    "encodings": encodings.run,
}


def experiment_description(name: str) -> str:
    """One-line description of an experiment (its module docstring's first line)."""
    module = sys.modules[EXPERIMENTS[name].__module__]
    doc = module.__doc__ or ""
    first = doc.strip().splitlines()[0] if doc.strip() else ""
    return first.rstrip(".")


def run_experiment(
    name: str, preset: str | Preset = "fast", seed: int = 0
) -> ExperimentResult:
    """Run one experiment by id (within the caller's runtime session).

    If the active session carries a :class:`~repro.core.progress.ProgressToken`
    the run checks it before starting (so cancelling a multi-experiment job
    also stops between experiments, even when every sweep is a warm cache hit)
    and announces the experiment through it.
    """
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; available: {', '.join(EXPERIMENTS)}")
    from repro.runtime.session import current_session

    progress = getattr(current_session(), "progress", None)
    if progress is not None:
        progress.checkpoint()
        progress.emit({"stage": "experiment", "experiment": name})
    return EXPERIMENTS[name](preset=preset, seed=seed)


def run_all(preset: str | Preset = "fast", seed: int = 0) -> dict[str, ExperimentResult]:
    """Run every experiment in presentation order (serial, session-cached)."""
    from repro.runtime import run_experiments

    report = run_experiments(list(EXPERIMENTS), preset=preset, seed=seed)
    return report.results


def main(argv: list[str] | None = None) -> int:
    """Command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate the tables and figures of the Bit-Pragmatic paper.",
    )
    parser.add_argument("--experiment", choices=sorted(EXPERIMENTS), help="experiment id")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and descriptions"
    )
    parser.add_argument("--preset", choices=sorted(PRESETS), default="fast")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the run (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="on-disk result cache directory (default: ~/.cache/repro-pragmatic "
        "or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache entirely"
    )
    parser.add_argument(
        "--cache-backend",
        default=None,
        metavar="SPEC",
        help="result-cache backend URI instead of --cache-dir: "
        "remote://HOST:PORT (network cache tier, see docs/cachenet.md), "
        "memory://, or a directory path",
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="trace-fabric artifact directory (default: <cache-dir>/traces); "
        "workers sharing it open one physical copy of each trace tensor",
    )
    parser.add_argument(
        "--no-trace-cache",
        action="store_true",
        help="disable the zero-copy trace fabric (generate traces in-process)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="export one JSON artifact per experiment into DIR",
    )
    maintenance = parser.add_argument_group("cache maintenance")
    maintenance.add_argument(
        "--cache-stats",
        action="store_true",
        help="report entry count, disk usage and entry ages from the cache manifest",
    )
    maintenance.add_argument(
        "--cache-gc",
        action="store_true",
        help="garbage-collect the cache (LRU-first) down to --max-bytes/--max-age",
    )
    maintenance.add_argument(
        "--cache-clear", action="store_true", help="delete every cache entry"
    )
    maintenance.add_argument(
        "--max-bytes",
        type=parse_size,
        default=None,
        metavar="SIZE",
        help="gc byte cap (plain bytes or K/M/G suffix, e.g. 500M)",
    )
    maintenance.add_argument(
        "--max-age",
        type=parse_age,
        default=None,
        metavar="AGE",
        help="gc age cap on last use (seconds or s/m/h/d suffix, e.g. 30d)",
    )
    args = parser.parse_args(argv)

    if args.cache_stats or args.cache_gc or args.cache_clear:
        if args.no_cache:
            parser.error("cache maintenance verbs require a disk cache (drop --no-cache)")
        if args.cache_gc and args.max_bytes is None and args.max_age is None:
            parser.error("--cache-gc needs --max-bytes and/or --max-age")
        return _cache_maintenance(args)

    if args.list:
        width = max(len(name) for name in EXPERIMENTS)
        for name in EXPERIMENTS:
            print(f"{name:<{width}}  {experiment_description(name)}")
        return 0

    if not args.all and not args.experiment:
        parser.error("specify --experiment NAME, --all, or --list")
    if args.jobs < 1:
        parser.error("--jobs must be at least 1")

    from repro.runtime import run_experiments
    from repro.runtime.session import default_cache_dir

    names = list(EXPERIMENTS) if args.all else [args.experiment]
    if args.no_cache:
        cache_dir = None
    elif args.cache_backend is not None:
        # Results go to the backend; an explicit --cache-dir still anchors
        # the trace fabric, but don't conjure the default dir for it.
        cache_dir = args.cache_dir
    else:
        cache_dir = args.cache_dir or default_cache_dir()
    report = run_experiments(
        names,
        preset=args.preset,
        seed=args.seed,
        jobs=args.jobs,
        cache_dir=cache_dir,
        no_cache=args.no_cache,
        trace_dir=args.trace_dir,
        no_trace_cache=args.no_trace_cache,
        cache_backend=args.cache_backend,
    )

    for result in report.results.values():
        print(result.to_text())
        print()
    if args.out:
        paths = export_results(report.results, args.out)
        print(f"exported {len(paths)} artifact(s) to {args.out}")
    print(report.summary())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
