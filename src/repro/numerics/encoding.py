"""Two-stage shift decomposition and serial term scheduling (Section V-D).

A shift by ``K`` can be decomposed as two smaller shifts ``K = K' + C``.  The
2-stage Pragmatic PIP exploits this by giving each synapse a narrow first-stage
shifter (``L`` control bits, reach ``0 … 2**L - 1``) and placing one shared
second-stage shifter after the adder tree.  Each cycle the control picks the
minimum outstanding oneffset ``C`` across the column; a synapse whose current
oneffset ``K`` satisfies ``K - C < 2**L`` is processed that cycle, otherwise it
stalls.

This module implements that control algorithm both for a single group of neurons
(:func:`serial_term_schedule`, used by the functional PIP and by the Figure 7
unit test) and exposes the pure decomposition helper
(:func:`two_stage_decompose`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "two_stage_decompose",
    "serial_term_schedule",
    "ScheduleCycle",
    "schedule_cycle_count",
]


def two_stage_decompose(offsets: list[int], first_stage_bits: int) -> tuple[int, list[int | None]]:
    """Decompose a set of shift offsets into a common stage-2 shift and stage-1 shifts.

    Returns ``(common, per_offset)`` where ``common`` is the minimum offset and
    ``per_offset[i]`` is ``offsets[i] - common`` when it fits in the first stage
    (``< 2**first_stage_bits``) and ``None`` when the offset must stall.
    """
    if not offsets:
        raise ValueError("offsets must not be empty")
    if first_stage_bits < 0:
        raise ValueError("first_stage_bits must be non-negative")
    reach = 1 << first_stage_bits
    common = min(offsets)
    per_offset: list[int | None] = []
    for offset in offsets:
        delta = offset - common
        per_offset.append(delta if delta < reach else None)
    return common, per_offset


@dataclass(frozen=True)
class ScheduleCycle:
    """One cycle of the 2-stage shifting control.

    Attributes
    ----------
    common_shift:
        The second-stage shift applied to the adder tree output this cycle.
    first_stage_shifts:
        Per-lane first stage shift, or ``None`` for lanes that are idle or
        stalled this cycle.
    consumed:
        Per-lane oneffset consumed this cycle (``None`` when none was consumed).
    """

    common_shift: int
    first_stage_shifts: tuple[int | None, ...]
    consumed: tuple[int | None, ...]


def serial_term_schedule(
    oneffset_lists: list[list[int]] | list[tuple[int, ...]],
    first_stage_bits: int,
) -> list[ScheduleCycle]:
    """Schedule the oneffsets of a group of neurons onto a 2-stage shifting PIP.

    Parameters
    ----------
    oneffset_lists:
        One ascending list of oneffsets per neuron lane (empty list for a
        zero-valued neuron).
    first_stage_bits:
        Width in bits of the first-stage (per-synapse) shifter control; the
        paper's PRA-2b uses 2, the single-stage design uses 4 (full reach).

    Returns
    -------
    list of :class:`ScheduleCycle`
        The cycle-by-cycle schedule.  Its length is the number of cycles the
        column needs to drain this group of neurons under per-column control.
    """
    if first_stage_bits < 0:
        raise ValueError("first_stage_bits must be non-negative")
    reach = 1 << first_stage_bits
    pending = [list(lst) for lst in oneffset_lists]
    for lane, lst in enumerate(pending):
        if any(earlier > later for earlier, later in zip(lst, lst[1:])):
            raise ValueError(f"oneffsets of lane {lane} must be ascending: {lst}")

    schedule: list[ScheduleCycle] = []
    while any(pending):
        heads = [lst[0] for lst in pending if lst]
        common = min(heads)
        first_stage: list[int | None] = []
        consumed: list[int | None] = []
        for lst in pending:
            if lst and (lst[0] - common) < reach:
                delta = lst.pop(0) - common
                first_stage.append(delta)
                consumed.append(delta + common)
            else:
                first_stage.append(None)
                consumed.append(None)
        schedule.append(
            ScheduleCycle(
                common_shift=common,
                first_stage_shifts=tuple(first_stage),
                consumed=tuple(consumed),
            )
        )
    return schedule


def schedule_cycle_count(
    oneffset_lists: list[list[int]] | list[tuple[int, ...]],
    first_stage_bits: int,
) -> int:
    """Number of cycles to drain the group (minimum 1, matching the hardware).

    Even when every neuron in the group is zero the PIP column spends one cycle
    on the (null) pallet step, so the count is clamped to at least 1.
    """
    return max(1, len(serial_term_schedule(oneffset_lists, first_stage_bits)))
