"""Unit tests for the named design variants and the design-space sweep helper."""

import pytest

from repro.arch.tiling import SamplingConfig
from repro.core.accelerator import PragmaticAccelerator
from repro.core.progress import ProgressToken, SweepCancelled
from repro.core.sweep import sweep_network
from repro.core.variants import (
    FIG9_FIRST_STAGE_BITS,
    FIG10_SSR_COUNTS,
    column_variant,
    fig9_variants,
    fig10_variants,
    fig12_variants,
    pallet_variant,
    paper_variants,
    single_stage_variant,
)


class TestVariants:
    def test_pallet_variant_names(self):
        assert pallet_variant(0).name == "PRA-0b"
        assert pallet_variant(4).name == "PRA-4b"

    def test_single_stage_variant_is_four_bit(self):
        config = single_stage_variant()
        assert config.first_stage_bits == 4
        assert config.name == "PRA-single"

    def test_column_variant_configuration(self):
        config = column_variant(4)
        assert config.synchronization == "column"
        assert config.ssr_count == 4
        assert column_variant(None).ssr_count is None

    def test_fig9_variants_cover_all_shifter_widths(self):
        variants = fig9_variants()
        assert set(variants) == {f"{bits}-bit" for bits in FIG9_FIRST_STAGE_BITS}
        assert all(v.synchronization == "pallet" for v in variants.values())

    def test_fig10_variants_cover_ssr_counts(self):
        variants = fig10_variants()
        assert len(variants) == len(FIG10_SSR_COUNTS)
        assert variants["perCol-ideal"].ssr_count is None

    def test_fig12_variants_disable_software_trimming(self):
        assert all(not v.software_trimming for v in fig12_variants().values())

    def test_paper_variants_unique_names(self):
        variants = paper_variants()
        assert len(variants) == len(set(variants))
        assert "PRA-2b" in variants and "PRA-2b-1R" in variants


class TestSweep:
    def test_sweep_matches_individual_simulation(self, tiny_trace):
        sampling = SamplingConfig(exact=True)
        configs = {"a": pallet_variant(2), "b": column_variant(1), "c": pallet_variant(0)}
        swept = sweep_network(tiny_trace, configs, sampling=sampling)
        for label, config in configs.items():
            direct = PragmaticAccelerator(config).simulate_network(tiny_trace, sampling)
            assert swept[label].cycles == pytest.approx(direct.cycles)
            assert swept[label].speedup == pytest.approx(direct.speedup)

    def test_sweep_rejects_empty_configs(self, tiny_trace):
        with pytest.raises(ValueError):
            sweep_network(tiny_trace, {})

    def test_sweep_result_labels(self, tiny_trace):
        swept = sweep_network(
            tiny_trace, {"x": pallet_variant(3)}, sampling=SamplingConfig(max_pallets=1)
        )
        assert swept["x"].accelerator == "PRA-3b"
        assert swept["x"].network == tiny_trace.network.name


class TestSweepProgress:
    def test_progress_token_does_not_change_results(self, tiny_trace):
        sampling = SamplingConfig(exact=True)
        configs = {"a": pallet_variant(2), "b": column_variant(1)}
        plain = sweep_network(tiny_trace, configs, sampling=sampling)
        events = []
        observed = sweep_network(
            tiny_trace, configs, sampling=sampling, progress=ProgressToken(events.append)
        )
        for label in configs:
            assert observed[label].cycles == pytest.approx(plain[label].cycles)
        layer_events = [event for event in events if event["stage"] == "layer"]
        assert len(layer_events) == tiny_trace.network.num_layers
        assert [event["index"] for event in layer_events] == [0, 1]
        assert all(
            event["network"] == tiny_trace.network.name for event in layer_events
        )

    def test_cancelled_token_aborts_before_any_work(self, tiny_trace):
        token = ProgressToken()
        token.cancel()
        with pytest.raises(SweepCancelled):
            sweep_network(tiny_trace, {"x": pallet_variant(2)}, progress=token)

    def test_cancellation_interrupts_between_layers(self, tiny_trace):
        token = ProgressToken()
        events = []

        def cancel_after_first_layer(event):
            events.append(event)
            token.cancel()

        token.on_progress = cancel_after_first_layer
        with pytest.raises(SweepCancelled):
            sweep_network(tiny_trace, {"x": pallet_variant(2)}, progress=token)
        # Exactly one layer completed before the checkpoint fired.
        assert [event["index"] for event in events if event["stage"] == "layer"] == [0]

    def test_raising_observer_is_disarmed_not_fatal(self, tiny_trace):
        def broken(event):
            raise RuntimeError("observer bug")

        token = ProgressToken(broken)
        swept = sweep_network(tiny_trace, {"x": pallet_variant(2)}, progress=token)
        assert "x" in swept
        assert token.on_progress is None  # disarmed after the first failure
