#!/usr/bin/env python3
"""Design-space exploration: first-stage shifter width and SSR count.

The two knobs the paper sweeps are the width ``L`` of the per-synapse
first-stage shifters (Figure 9 / Table III) and, for per-column
synchronization, the number of synapse set registers (Figure 10 / Table IV).
This example sweeps both over any network and reports performance together
with the area/power cost of each point — the data a designer would use to pick
the PRA-2b-1R configuration the paper recommends.

The sweeps run through :mod:`repro.runtime`, so design points are memoized in
a content-addressed cache: re-running the exploration (or widening it by a few
configurations) only simulates what has not been simulated before.

Run it with::

    python examples/design_space_exploration.py [network] [cache-dir]
"""

from __future__ import annotations

import sys

from repro.analysis.tables import format_ratio, format_table
from repro.arch.tiling import SamplingConfig
from repro.core.variants import column_variant, pallet_variant
from repro.energy.area import design_area
from repro.energy.efficiency import design_efficiency
from repro.energy.power import design_power
from repro.runtime import (
    SimulationRequest,
    TraceSpec,
    configure_session,
    current_session,
    simulate,
)


def main(network: str = "vgg_m", cache_dir: str | None = None) -> None:
    if cache_dir:
        # Persist simulation results so repeat explorations are instant.
        configure_session(cache_dir=cache_dir)
    spec = TraceSpec(network=network)
    sampling = SamplingConfig(max_pallets=8)

    print(f"== First-stage shifter sweep (per-pallet sync) on {network} ==")
    shifter_configs = {f"PRA-{bits}b": pallet_variant(bits) for bits in range(5)}
    results = simulate(
        SimulationRequest(trace=spec, configs=tuple(shifter_configs.items()), sampling=sampling)
    )
    rows = []
    for name, config in shifter_configs.items():
        result = results[name]
        rows.append(
            [
                name,
                format_ratio(result.speedup),
                f"{design_area(config).chip_mm2:.0f} mm2",
                f"{design_power(config).chip_w:.1f} W",
                format_ratio(design_efficiency(config, result).efficiency),
            ]
        )
    print(format_table(["design", "speedup", "chip area", "chip power", "energy eff."], rows))
    print()

    print(f"== SSR sweep (per-column sync, L = 2) on {network} ==")
    ssr_configs = {
        ("ideal" if count is None else f"{count} SSR"): column_variant(count)
        for count in (1, 2, 4, 8, 16, None)
    }
    results = simulate(
        SimulationRequest(trace=spec, configs=tuple(ssr_configs.items()), sampling=sampling)
    )
    rows = []
    for name, config in ssr_configs.items():
        result = results[name]
        rows.append(
            [
                name,
                format_ratio(result.speedup),
                f"{design_area(config).unit_mm2:.2f} mm2/unit",
                f"{design_power(config).chip_w:.1f} W",
                format_ratio(design_efficiency(config, result).efficiency),
            ]
        )
    print(format_table(["SSRs", "speedup", "unit area", "chip power", "energy eff."], rows))
    print()
    print(
        "The knee of both curves is the configuration the paper recommends:\n"
        "2-bit first-stage shifters with per-column synchronization and one SSR."
    )
    print()
    print(current_session().stats().summary())


if __name__ == "__main__":
    main(
        sys.argv[1] if len(sys.argv) > 1 else "vgg_m",
        sys.argv[2] if len(sys.argv) > 2 else None,
    )
