"""The cluster coordinator: shard planned jobs across worker processes.

:class:`ClusterService` speaks the *unchanged* public serve protocol to
clients — it **is** an :class:`~repro.serve.service.ExperimentService`, with
the local thread executor swapped for a sharding dispatcher.  One client
request flows through the coordinator like this (``docs/cluster.md`` walks
the full lifecycle):

1. the request enters the inherited queue (coalescing identical in-flight
   client requests exactly as a single serve process would);
2. the executor plans it with the existing job graph
   (:func:`repro.runtime.jobs.build_plan`), pruning units the shared cache
   already holds;
3. each primitive simulation/statistics job becomes a **flight** routed to a
   worker by rendezvous hash of its content key
   (:mod:`repro.cluster.hashing`) — stable shards keep per-worker trace
   stores and memos warm, and identical jobs needed by concurrent client
   requests coalesce onto one flight cluster-wide;
4. once an experiment's dependency flights land, its assembly
   (``run_experiment``) is dispatched at a raised priority — every input is
   a warm cache hit by then, so assembly is cheap presentation logic;
5. per-worker ``RunStats`` come back on each flight and are merged with the
   distinct-cache gauge rule; streamed progress events hop worker →
   coordinator → client, and a client's cancel hops the other way through
   :attr:`~repro.core.progress.ProgressToken.on_cancel`.

Worker death is handled by requeueing: a flight whose worker connection
drops walks its rendezvous preference order onto the next live worker.
Everything the dead worker completed is already in the shared cache backend,
so a requeued flight only recomputes the remainder.

Membership is **elastic** (``docs/cluster.md``): a background monitor task
auto-respawns spawned workers that die (relaunch + re-register under the same
worker id, so subsequent rendezvous walks see the replacement), and recycles
workers after ``max_jobs_per_worker`` completed jobs to bound long-run memory
growth.  Joining workers — initial, respawned or recycled — are sent a
``prewarm`` op right after registration so the zero-copy trace fabric is
mapped before the first flight lands.  Pending flights need no special
handling on membership changes: every dispatch re-walks the rendezvous rank
over the *currently* live links, which is exactly the reshuffle.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import secrets
import shutil
import sys
import tempfile
from pathlib import Path

from repro.core.progress import SweepCancelled
from repro.runtime import RunStats
from repro.runtime.jobs import build_plan
from repro.runtime.session import resolve_trace_dir
from repro.serve.client import ServeClient
from repro.serve.protocol import (
    ExperimentRequest,
    RunAllRequest,
    SimulateRequest,
)
from repro.serve.service import ExperimentService
from repro.cluster.hashing import rendezvous_rank
from repro.cluster.plan import SimulationJobRequest, StatisticsJobRequest

__all__ = ["ClusterError", "WorkerDied", "WorkerLink", "ClusterService"]

#: Seconds allowed for a spawned worker to print its listening endpoint.
SPAWN_TIMEOUT = 60.0

#: Seconds allowed for the auth + register handshake with one worker.
HANDSHAKE_TIMEOUT = 30.0

#: Per-worker bound on the (concurrent) stats fan-out of the ``stats`` op.
STATS_TIMEOUT = 5.0

#: Poll cadence of the membership monitor (death detection + recycling).
MONITOR_INTERVAL = 0.25

#: A flight gives up after this many worker deaths (each one requeues).
MAX_FLIGHT_REQUEUES = 8


class ClusterError(RuntimeError):
    """A cluster-level failure (no live workers, handshake failure, ...)."""


class WorkerDied(ClusterError):
    """The worker connection dropped while a flight was assigned to it."""


class _FlightFailed(ClusterError):
    """A worker reported a genuine job failure (not a death)."""


class WorkerLink:
    """Coordinator-side handle of one worker: connection, identity, process."""

    def __init__(
        self,
        worker_id: str,
        host: str,
        port: int,
        client: ServeClient,
        info: dict,
        process: asyncio.subprocess.Process | None = None,
    ) -> None:
        self.worker_id = worker_id
        self.host = host
        self.port = port
        self.client = client
        self.info = info
        self.process = process
        self.dispatched = 0
        self.completed = 0
        #: Flights currently executing on this worker — recycling waits for
        #: zero so an in-flight job is never yanked from under a client.
        self.inflight = 0

    @property
    def alive(self) -> bool:
        return not self.client.closed.is_set()

    @property
    def pid(self) -> int | None:
        return self.info.get("pid")

    def describe(self) -> dict:
        return {
            "worker": self.worker_id,
            "endpoint": f"{self.host}:{self.port}",
            "pid": self.pid,
            "alive": self.alive,
            "spawned": self.process is not None,
            "dispatched": self.dispatched,
            "completed": self.completed,
            "inflight": self.inflight,
        }

    async def close(self) -> None:
        with contextlib.suppress(Exception):
            await self.client.close()
        if self.process is not None:
            if self.process.returncode is None:
                with contextlib.suppress(ProcessLookupError):
                    self.process.terminate()
            with contextlib.suppress(Exception):
                await asyncio.wait_for(self.process.wait(), timeout=10)
            if self.process.returncode is None:  # pragma: no cover - last resort
                with contextlib.suppress(ProcessLookupError):
                    self.process.kill()
                with contextlib.suppress(Exception):
                    await self.process.wait()


class _Flight:
    """One planned job in flight cluster-wide (1..N client jobs share it)."""

    def __init__(self, key: str, message: dict, priority: int) -> None:
        self.key = key
        self.message = message
        self.priority = priority
        self.future: asyncio.Future = asyncio.get_running_loop().create_future()
        #: Client-job contexts awaiting this flight; the first is the
        #: initiator, whose stats the flight's counters are credited to.
        self.interested: list["_JobContext"] = []
        self.link: WorkerLink | None = None
        self.ticket: str | None = None
        self.requeues = 0
        self.cancelled = False

    def emit_progress(self, payload: dict) -> None:
        for ctx in list(self.interested):
            ctx.token.emit(payload)


class _JobContext:
    """Cluster-side execution state of one client job."""

    def __init__(self, token) -> None:
        self.token = token
        self.cancelled = asyncio.Event()
        self.stats = RunStats()
        self.flights: list[_Flight] = []
        #: Flights whose stats were already folded into this job — several
        #: assemblies of one run_all await the same shared dependency flight,
        #: and its counters must be credited exactly once.
        self._credited: set[int] = set()
        self.planned_units = 0
        self.planned_hits = 0
        #: Summed worker-side execution seconds of this job's flights — the
        #: ``timings`` blocks the workers report, forwarded so a client sees
        #: the cluster-wide compute its request cost (not just coordinator
        #: wall time, which overlaps flights).
        self.worker_execution_seconds = 0.0

    def credit_flight(self, flight: "_Flight", payload: dict) -> None:
        """Fold one flight's stats and worker timings into this job, once."""
        if id(flight) in self._credited:
            return
        self._credited.add(id(flight))
        stats = payload.get("stats")
        if stats:
            # Distinct caches: each flight ran in a different worker process.
            self.stats.merge(stats, distinct_caches=True)
        timings = payload.get("timings") or {}
        self.worker_execution_seconds += timings.get("execution_seconds", 0.0)


class ClusterService(ExperimentService):
    """Serve-protocol front-end that shards execution across worker processes.

    Parameters
    ----------
    spawn_workers:
        Number of local worker processes to spawn on :meth:`start` (each is
        ``python -m repro serve --worker`` sharing ``cache_dir``).
    connect:
        ``(host, port)`` endpoints of pre-started workers to attach
        (``repro cluster --connect``); they must share a cache backend with
        each other for cross-worker reuse to function.
    cache_dir:
        Shared cache directory.  ``None`` creates a private temporary
        directory (removed on :meth:`stop`) — correct for a self-contained
        local cluster, while a real deployment points every worker at one
        shared path.
    worker_processes:
        ``--workers`` passed to each spawned worker (its own job-execution
        bound).
    concurrent_requests:
        Bound on client jobs the coordinator plans/dispatches concurrently
        (the inherited pool size).
    worker_token:
        Shared secret for worker registration; generated when omitted.
        Spawned workers receive it via ``REPRO_SERVE_TOKEN`` in their
        environment, never on their command line.
    auth_token:
        Optional client-facing shared secret (same semantics as
        ``repro serve --auth-token``).
    trace_dir / no_trace_cache:
        Trace-fabric wiring forwarded to every spawned worker (and the
        coordinator's own planning session).  The default — a ``traces/``
        directory beside the shared cache — is what makes N workers on one
        host materialize each trace tensor exactly once and map it
        read-only (``docs/cluster.md``).
    cache_backend:
        Optional ``--cache-backend`` spec (``remote://host:port``, see
        ``docs/cachenet.md``) forwarded to every spawned worker and used for
        the coordinator's own planning session.  The result tier then lives
        in the network cache instead of the shared directory; ``cache_dir``
        keeps anchoring the trace fabric only.
    max_jobs_per_worker:
        Recycle a spawned worker (terminate + relaunch + re-register) once
        it has completed this many jobs, bounding per-process memory growth
        over long serving runs.  ``None`` disables recycling.
    """

    def __init__(
        self,
        spawn_workers: int = 0,
        connect: list[tuple[str, int]] | None = None,
        cache_dir: str | Path | None = None,
        worker_processes: int = 2,
        concurrent_requests: int = 4,
        worker_token: str | None = None,
        auth_token: str | None = None,
        trace_dir: str | Path | None = None,
        no_trace_cache: bool = False,
        cache_backend: str | None = None,
        max_jobs_per_worker: int | None = None,
    ) -> None:
        if spawn_workers < 0:
            raise ValueError("spawn_workers must be non-negative")
        if spawn_workers == 0 and not connect:
            raise ValueError("a cluster needs spawned workers and/or --connect endpoints")
        if max_jobs_per_worker is not None and max_jobs_per_worker < 1:
            raise ValueError("max_jobs_per_worker must be positive")
        self._own_cache_dir = cache_dir is None
        if cache_dir is None:
            cache_dir = tempfile.mkdtemp(prefix="repro-cluster-cache-")
        # The coordinator's own session exists to *plan* (cache probes prune
        # warm units) and must see the workers' stores: same shared backend.
        from repro.cluster.worker import worker_session

        super().__init__(
            session=worker_session(
                cache_dir,
                trace_dir=trace_dir,
                no_trace_cache=no_trace_cache,
                cache_backend=cache_backend,
            ),
            workers=concurrent_requests,
            auth_token=auth_token,
        )
        self.pool.executor = self._execute_cluster
        self.cache_dir = Path(cache_dir)
        self.trace_dir = trace_dir
        self.no_trace_cache = no_trace_cache
        self.cache_backend = cache_backend
        self.max_jobs_per_worker = max_jobs_per_worker
        self.spawn_workers = spawn_workers
        self.connect_endpoints = list(connect or [])
        self.worker_processes = worker_processes
        self.worker_token = worker_token or secrets.token_hex(16)
        self.links: dict[str, WorkerLink] = {}
        self._flights: dict[str, _Flight] = {}
        self._flight_tasks: set[asyncio.Task] = set()
        self._monitor_task: asyncio.Task | None = None
        #: Cluster-level counters surfaced by the ``stats`` op.
        self.flights_dispatched = 0
        self.flights_coalesced = 0
        self.flights_requeued = 0
        self.workers_respawned = 0
        self.workers_recycled = 0
        self.respawn_failures = 0

    # ----------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        first_start = not self.links
        await super().start()
        if first_start:
            spawned = [
                self._spawn_worker(f"w{index}") for index in range(self.spawn_workers)
            ]
            attached = [
                self._attach_worker(f"c{index}", host, port)
                for index, (host, port) in enumerate(self.connect_endpoints)
            ]
            outcomes = await asyncio.gather(*spawned, *attached, return_exceptions=True)
            failures = [o for o in outcomes if isinstance(o, BaseException)]
            links = [o for o in outcomes if isinstance(o, WorkerLink)]
            if failures:
                # A partial fleet must not leak: close (and terminate) every
                # worker that *did* come up before surfacing the failure.
                await asyncio.gather(
                    *(link.close() for link in links), return_exceptions=True
                )
                raise failures[0]
            for link in links:
                self.links[link.worker_id] = link
            self._monitor_task = asyncio.create_task(
                self._monitor(), name="repro-cluster-monitor"
            )

    async def stop(self) -> None:
        await super().stop()  # drain running client jobs first: they need links
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._monitor_task
            self._monitor_task = None
        for task in list(self._flight_tasks):
            task.cancel()
        if self._flight_tasks:
            await asyncio.gather(*self._flight_tasks, return_exceptions=True)
        await asyncio.gather(*(link.close() for link in self.links.values()))
        if self._own_cache_dir:
            shutil.rmtree(self.cache_dir, ignore_errors=True)

    async def _spawn_worker(self, worker_id: str) -> WorkerLink:
        """Start one local worker process and complete the handshake."""
        env = dict(os.environ)
        env["REPRO_SERVE_TOKEN"] = self.worker_token
        argv = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--worker",
            "--worker-endpoint",
            "127.0.0.1:0",
            "--cache-dir",
            str(self.cache_dir),
            "--workers",
            str(self.worker_processes),
        ]
        if self.cache_backend is not None:
            argv.extend(["--cache-backend", str(self.cache_backend)])
        if self.no_trace_cache:
            argv.append("--no-trace-cache")
        elif self.trace_dir is not None:
            argv.extend(["--trace-dir", str(self.trace_dir)])
        process = await asyncio.create_subprocess_exec(
            *argv,
            env=env,
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.DEVNULL,
        )
        try:
            line = await asyncio.wait_for(process.stdout.readline(), SPAWN_TIMEOUT)
            ready = json.loads(line)
            if ready.get("event") != "worker-listening":
                raise ClusterError(f"unexpected worker banner: {ready!r}")
            host, port = ready["host"], int(ready["port"])
            return await self._handshake(worker_id, host, port, process)
        except BaseException:
            if process.returncode is None:
                with contextlib.suppress(ProcessLookupError):
                    process.terminate()
            raise

    async def _attach_worker(self, worker_id: str, host: str, port: int) -> WorkerLink:
        """Connect and register with a pre-started worker."""
        return await self._handshake(worker_id, host, port, process=None)

    async def _handshake(
        self,
        worker_id: str,
        host: str,
        port: int,
        process: asyncio.subprocess.Process | None,
    ) -> WorkerLink:
        async def shake() -> WorkerLink:
            client = await ServeClient.connect(host, port, auth_token=self.worker_token)
            try:
                info = await client._roundtrip({"op": "register"})
                if info.get("event") != "registered":
                    raise ClusterError(
                        f"worker {host}:{port} rejected registration: "
                        f"{info.get('error', info)}"
                    )
                # Pre-warm the zero-copy trace fabric on join (initial,
                # respawned and recycled workers alike): the manifest and
                # tensor mmaps are mapped before the first flight lands.
                # Best-effort — a worker without a fabric simply reports
                # zero artifacts, and a prewarm failure must not fail the
                # handshake.
                with contextlib.suppress(Exception):
                    warmed = await client._roundtrip({"op": "prewarm"})
                    if warmed.get("event") == "prewarmed":
                        info["prewarmed"] = {
                            "tensors": warmed.get("tensors", 0),
                            "calibrations": warmed.get("calibrations", 0),
                        }
            except BaseException:
                await client.close()
                raise
            return WorkerLink(worker_id, host, port, client, info, process)

        try:
            return await asyncio.wait_for(shake(), HANDSHAKE_TIMEOUT)
        except asyncio.TimeoutError as error:
            raise ClusterError(f"worker {host}:{port} handshake timed out") from error

    # --------------------------------------------------------------- membership
    async def _monitor(self) -> None:
        """Elastic-membership loop: respawn dead spawned workers, recycle old.

        Only *spawned* links are managed — an attached (``--connect``) worker
        belongs to whoever started it, so its death merely removes it from
        the live set (flights requeue onto survivors via the rendezvous
        walk).  Recycling waits for a link to go idle so no in-flight job is
        interrupted; the flights it already completed live in the shared
        cache backend either way.
        """
        while True:
            await asyncio.sleep(MONITOR_INTERVAL)
            for worker_id, link in list(self.links.items()):
                if link.process is None or self.links.get(worker_id) is not link:
                    continue
                if not link.alive:
                    await self._replace(worker_id, link, reason="respawned")
                elif (
                    self.max_jobs_per_worker is not None
                    and link.completed >= self.max_jobs_per_worker
                    and link.inflight == 0
                ):
                    await self._replace(worker_id, link, reason="recycled")

    async def _replace(self, worker_id: str, old: WorkerLink, reason: str) -> None:
        """Close ``old`` and install a freshly spawned worker under its id.

        The replacement re-registers (and pre-warms) through the normal
        handshake, so from the routing layer's point of view a respawned
        worker is indistinguishable from a new join: the next rendezvous
        walk simply sees a live link under the same id again.
        """
        await old.close()
        try:
            fresh = await self._spawn_worker(worker_id)
        except Exception:
            # Leave the dead link in place: it keeps the loss visible in
            # stats and the monitor retries on its next pass.
            self.respawn_failures += 1
            return
        if self.links.get(worker_id) is old:
            self.links[worker_id] = fresh
            if reason == "recycled":
                self.workers_recycled += 1
            else:
                self.workers_respawned += 1
        else:  # pragma: no cover - lost a replace race; keep the winner
            await fresh.close()

    # ------------------------------------------------------------------ routing
    def live_links(self) -> list[WorkerLink]:
        return [link for link in self.links.values() if link.alive]

    # ------------------------------------------------------------------ flights
    def _join_flight(self, ctx: _JobContext, key: str, message: dict, priority: int) -> _Flight:
        """The in-flight dispatch of ``key``, creating (and launching) it if new.

        Identical planned jobs needed by concurrent client requests coalesce
        here — the cluster-wide analogue of the queue's ticket coalescing.
        """
        flight = self._flights.get(key)
        if flight is not None and flight.cancelled:
            # A doomed flight (cancel sent, worker not yet confirmed) must
            # not adopt a fresh client — it will only ever terminate
            # cancelled.  Start a new flight; the old one's cleanup is
            # identity-guarded, so overwriting the key is safe.
            flight = None
        if flight is None:
            flight = _Flight(key, message, priority)
            self._flights[key] = flight
            task = asyncio.create_task(self._fly(flight), name=f"repro-flight-{key[:8]}")
            self._flight_tasks.add(task)
            task.add_done_callback(self._flight_tasks.discard)
            self.flights_dispatched += 1
        else:
            self.flights_coalesced += 1
        flight.interested.append(ctx)
        ctx.flights.append(flight)
        return flight

    def _leave_flight(self, ctx: _JobContext, flight: _Flight) -> None:
        """Detach a (cancelled) client job; a flight nobody wants is cancelled."""
        if ctx in flight.interested:
            flight.interested.remove(ctx)
        if flight.interested or flight.future.done() or flight.cancelled:
            return
        flight.cancelled = True
        if flight.link is not None and flight.ticket is not None and flight.link.alive:
            cancel = asyncio.create_task(
                self._cancel_on_worker(flight.link, flight.ticket),
                name="repro-flight-cancel",
            )
            self._flight_tasks.add(cancel)
            cancel.add_done_callback(self._flight_tasks.discard)

    @staticmethod
    async def _cancel_on_worker(link: WorkerLink, ticket: str) -> None:
        with contextlib.suppress(Exception):
            await link.client.cancel(ticket)

    async def _fly(self, flight: _Flight) -> None:
        """Run one flight to a terminal state, walking survivors on death."""
        tried: set[str] = set()
        try:
            while True:
                live = [link.worker_id for link in self.live_links()]
                candidates = [
                    worker_id
                    for worker_id in rendezvous_rank(flight.key, live)
                    if worker_id not in tried
                ]
                if not candidates:
                    if live and flight.requeues < MAX_FLIGHT_REQUEUES:
                        # Every live id was already tried, but membership is
                        # elastic: a live link under a tried id is a *fresh*
                        # process the monitor respawned (or recycled) since.
                        # Give the monitor a beat and walk the rank again —
                        # the requeue cap bounds this, since every tried id
                        # corresponds to a dispatch that died.
                        tried.clear()
                        await asyncio.sleep(MONITOR_INTERVAL)
                        continue
                    raise ClusterError(
                        "no live workers left for this job "
                        f"({len(tried)} tried, {len(live)} alive, "
                        f"{flight.requeues} requeue(s))"
                    )
                worker_id = candidates[0]
                link = self.links[worker_id]
                tried.add(worker_id)
                try:
                    payload = await self._run_on(link, flight)
                except WorkerDied:
                    self.flights_requeued += 1
                    flight.requeues += 1
                    continue
                if not flight.future.done():
                    flight.future.set_result(payload)
                return
        except asyncio.CancelledError:
            if not flight.future.done():
                flight.future.set_exception(ClusterError("coordinator shutting down"))
            raise
        except BaseException as error:
            if not flight.future.done():
                flight.future.set_exception(error)
        finally:
            if self._flights.get(flight.key) is flight:
                del self._flights[flight.key]
            # A future nobody awaits anymore (all interested jobs cancelled)
            # must not warn about unretrieved exceptions.
            if flight.future.done() and not flight.interested:
                flight.future.exception()

    async def _run_on(self, link: WorkerLink, flight: _Flight) -> dict:
        """Execute a flight on one worker; returns the terminal ``done`` payload.

        Progress events stream back to every interested client job as they
        arrive.  Raises :class:`WorkerDied` when the link drops (requeue),
        :class:`_FlightFailed` on a genuine job failure, and
        :class:`SweepCancelled` when the flight was cancelled on the worker
        (because every interested client job cancelled).
        """
        link.dispatched += 1
        link.inflight += 1
        message = dict(flight.message)
        if flight.priority:
            message["priority"] = flight.priority
        try:
            async for event in link.client.stream(message):
                name = event.get("event")
                if name in ("queued", "running"):
                    flight.link = link
                    flight.ticket = event.get("ticket", flight.ticket)
                elif name == "progress":
                    flight.emit_progress(
                        {**event.get("progress", {}), "worker": link.worker_id}
                    )
                elif name == "done":
                    link.completed += 1
                    return event
                elif name == "cancelled":
                    raise SweepCancelled("cancelled on worker")
                elif name in ("failed", "error"):
                    error = event.get("error", "worker failure")
                    if not link.alive:
                        raise WorkerDied(f"worker {link.worker_id} died: {error}")
                    raise _FlightFailed(f"worker {link.worker_id}: {error}")
        finally:
            link.inflight -= 1
        # Stream ended without a terminal event: the connection is gone.
        raise WorkerDied(f"worker {link.worker_id} stream ended unexpectedly")

    # ---------------------------------------------------------------- execution
    async def _await_flight(self, ctx: _JobContext, flight: _Flight) -> dict:
        """Wait for a flight (or this job's cancellation, whichever first)."""
        cancel_wait = asyncio.ensure_future(ctx.cancelled.wait())
        try:
            done, _ = await asyncio.wait(
                {flight.future, cancel_wait}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            cancel_wait.cancel()
        if flight.future not in done:
            raise SweepCancelled("cancelled while awaiting a flight")
        payload = flight.future.result()  # raises the flight's failure if any
        # A flight shared across client jobs is credited to its initiator
        # only, so cluster totals never double-count one execution.
        if ctx is (flight.interested[0] if flight.interested else None):
            ctx.credit_flight(flight, payload)
        return payload

    @staticmethod
    def _planning_info(ctx: _JobContext) -> dict:
        """Additive payload section describing how the request was sharded.

        ``planned_units`` is the number of distinct simulation units the plan
        dispatched — on a cold cache with no worker deaths, the merged
        ``sweep.configs_simulated`` must equal it (each simulation performed
        exactly once cluster-wide); warm, both are zero.
        """
        return {
            "planned_units": ctx.planned_units,
            "planned_hits": ctx.planned_hits,
            "worker_execution_seconds": round(ctx.worker_execution_seconds, 6),
        }

    def _checkpoint(self, ctx: _JobContext) -> None:
        if ctx.cancelled.is_set() or ctx.token.cancelled:
            raise SweepCancelled("cluster job cancelled")

    @staticmethod
    def _overrides_wire(request) -> dict | None:
        overrides = {
            key: list(value) if isinstance(value, tuple) else value
            for key, value in request.overrides
        }
        return overrides or None

    def _assembly_message(self, request, experiment: str) -> dict:
        # Assemblies outrank primitive flights (the flight carries
        # ``priority + 1``): their inputs are warm, so finishing them frees
        # client responses without delaying sweeps.
        message = {
            "op": "run_experiment",
            "experiment": experiment,
            "preset": request.preset,
            "seed": request.seed,
        }
        overrides = self._overrides_wire(request)
        if overrides:
            message["overrides"] = overrides
        return message

    async def _execute_cluster(self, request, session, token):
        """The coordinator's executor: plan, shard, dispatch, reassemble.

        Same contract as :func:`repro.serve.workers.execute_request` — returns
        ``(payload, stats_dict)``, raises :class:`SweepCancelled` when the
        client job was cancelled cooperatively.
        """
        loop = asyncio.get_running_loop()
        ctx = _JobContext(token)
        token.on_cancel = lambda: loop.call_soon_threadsafe(ctx.cancelled.set)
        try:
            if token.cancelled:
                raise SweepCancelled("cancelled before dispatch")
            if not self.live_links():
                raise ClusterError("no live workers")
            priority = self.queue._inflight.get(request.key(), None)
            priority = priority.priority if priority is not None else 0
            if isinstance(request, SimulateRequest):
                payload = await self._execute_passthrough(ctx, request, priority)
            elif isinstance(request, ExperimentRequest):
                payload = await self._execute_experiments(
                    ctx, request, [request.experiment], priority
                )
                payload = {
                    "kind": "experiment",
                    "experiment": payload[request.experiment],
                    "cluster": self._planning_info(ctx),
                }
            elif isinstance(request, RunAllRequest):
                from repro.experiments.runner import EXPERIMENTS

                results = await self._execute_experiments(
                    ctx, request, list(EXPERIMENTS), priority
                )
                payload = {
                    "kind": "run_all",
                    "experiments": results,
                    "cluster": self._planning_info(ctx),
                }
            else:  # pragma: no cover - parse_request guards this
                raise TypeError(f"unsupported request type {type(request).__name__}")
            return payload, ctx.stats.as_dict()
        except (SweepCancelled, asyncio.CancelledError):
            for flight in list(ctx.flights):
                self._leave_flight(ctx, flight)
            raise
        finally:
            token.on_cancel = None

    async def _execute_passthrough(self, ctx, request: SimulateRequest, priority: int) -> dict:
        """Route a single-network ``simulate`` request to its shard whole."""
        message = {
            "op": "simulate",
            "network": request.network,
            "variants": request.variants,
            "representation": request.representation,
            "encoding": request.encoding,
            "preset": request.preset,
            "seed": request.seed,
        }
        overrides = self._overrides_wire(request)
        if overrides:
            message["overrides"] = overrides
        flight = self._join_flight(ctx, request.key(), message, priority)
        terminal = await self._await_flight(ctx, flight)
        return terminal["result"]

    async def _execute_experiments(
        self, ctx, request, names: list[str], priority: int
    ) -> dict:
        """Shard one or many experiments: primitives first, then assemblies."""
        plan = await asyncio.to_thread(
            build_plan, names, request.resolved_preset(), request.seed, self.session
        )
        self._checkpoint(ctx)
        ctx.planned_hits = plan.planned_hits
        ctx.planned_units = sum(len(job.request.configs) for job in plan.simulations)
        dep_flights: dict[str, _Flight] = {}
        for job in plan.simulations:
            wire = SimulationJobRequest(job.request)
            dep_flights[job.job_id] = self._join_flight(
                ctx, wire.key(), wire.to_message(), priority
            )
        for job in plan.statistics:
            wire = StatisticsJobRequest(job.request)
            dep_flights[job.job_id] = self._join_flight(
                ctx, wire.key(), wire.to_message(), priority
            )

        async def assemble(exp_job) -> tuple[str, dict]:
            for dep in exp_job.deps:
                await self._await_flight(ctx, dep_flights[dep])
            self._checkpoint(ctx)
            message = self._assembly_message(request, exp_job.experiment)
            # Key the assembly by the equivalent single-experiment request, so
            # a run_all and a direct run_experiment of the same experiment
            # coalesce onto one assembly flight cluster-wide.
            assembly_key = ExperimentRequest(
                experiment=exp_job.experiment,
                preset=request.preset,
                seed=request.seed,
                overrides=request.overrides,
            ).key()
            flight = self._join_flight(ctx, assembly_key, message, priority + 1)
            terminal = await self._await_flight(ctx, flight)
            return exp_job.experiment, terminal["result"]["experiment"]

        results: dict[str, dict] = {}
        assemblies = [asyncio.ensure_future(assemble(job)) for job in plan.experiments]
        try:
            for index, pending in enumerate(assemblies):
                name, result = await pending
                results[name] = result
                if len(plan.experiments) > 1:
                    ctx.token.emit(
                        {
                            "stage": "experiment_done",
                            "experiment": name,
                            "completed": index + 1,
                            "total": len(plan.experiments),
                            "result": result,
                        }
                    )
        except BaseException:
            for pending in assemblies:
                pending.cancel()
            await asyncio.gather(*assemblies, return_exceptions=True)
            raise
        return {name: results[name] for name in names}

    # -------------------------------------------------------------------- stats
    def stats(self) -> dict:
        payload = super().stats()
        flight_joins = self.flights_dispatched + self.flights_coalesced
        payload["cluster"] = {
            "workers": [link.describe() for link in self.links.values()],
            "flights_dispatched": self.flights_dispatched,
            "flights_coalesced": self.flights_coalesced,
            "flights_requeued": self.flights_requeued,
            "flights_inflight": len(self._flights),
            "workers_lost": sum(1 for link in self.links.values() if not link.alive),
            "workers_respawned": self.workers_respawned,
            "workers_recycled": self.workers_recycled,
            "respawn_failures": self.respawn_failures,
            "max_jobs_per_worker": self.max_jobs_per_worker,
            "cache_backend": self.cache_backend,
            "cache_dir": str(self.cache_dir),
            "trace_dir": str(
                resolve_trace_dir(self.cache_dir, self.trace_dir, self.no_trace_cache)
            )
            if not self.no_trace_cache
            else None,
            # Cluster-wide coalescing effectiveness: the queue-level section
            # (payload["coalescing"]) counts client tickets per client job;
            # this one counts planned jobs per executed flight.
            "coalescing": {
                "flight_joins": flight_joins,
                "flights_coalesced": self.flights_coalesced,
                "flights_executed": self.flights_dispatched,
                "hit_rate": round(self.flights_coalesced / flight_joins, 6)
                if flight_joins
                else 0.0,
            },
        }
        return payload

    async def cluster_stats(self) -> dict:
        """The ``stats`` payload plus live per-worker stats, distinct-merged.

        Queries every live worker's ``stats`` op and folds their lifetime
        ``RunStats`` into a ``fleet`` section using the distinct-cache gauge
        rule (each worker owns its own memo and counters; disk gauges
        describe the same shared directory only in the local-spawn topology,
        so the sum is an upper bound there and exact for disjoint backends).
        """
        payload = self.stats()
        fleet = RunStats()
        per_worker: dict[str, dict] = {}
        links = self.live_links()

        async def query(link: WorkerLink) -> dict | None:
            try:
                return await asyncio.wait_for(link.client.stats(), STATS_TIMEOUT)
            except Exception:
                return None  # a hung worker must not stall the stats op

        answers = await asyncio.gather(*(query(link) for link in links))
        for link, answer in zip(links, answers):
            if answer is None:
                continue
            stats = answer.get("stats", {})
            per_worker[link.worker_id] = stats
            fleet.merge(stats, distinct_caches=True)
        payload["cluster"]["fleet"] = fleet.as_dict()
        payload["cluster"]["per_worker_stats"] = per_worker
        return payload

    async def handle_message(self, message, send, tickets=None, context=None) -> bool:
        # Intercept ``stats`` only for authenticated (or local) callers — the
        # base auth gate must keep rejecting everything else first, or an
        # unauthenticated connection could read fleet topology.
        authenticated = context is None or context.authenticated
        if message.get("op") == "stats" and authenticated:
            client_id = message.get("id")
            payload = await self.cluster_stats()
            send({"id": client_id, **payload} if client_id is not None else payload)
            return True
        return await super().handle_message(message, send, tickets=tickets, context=context)
