"""The experiment-serving service: one warm session, many concurrent clients.

:class:`ExperimentService` owns a single long-lived
:class:`~repro.runtime.session.RuntimeSession` (shared ``ResultCache`` +
``TraceStore``), an async :class:`~repro.serve.queue.RequestQueue` and a
bounded :class:`~repro.serve.workers.WorkerPool`.  Clients reach it three
ways, all speaking the same typed requests:

* **in process** — ``await service.submit(request)`` / ``await service.wait``,
  used by tests and embedders;
* **TCP** — :meth:`ExperimentService.serve_tcp`, line-delimited JSON
  (:mod:`repro.serve.protocol`) for many concurrent remote clients;
* **stdio** — :meth:`ExperimentService.run_stdio`, the same protocol over
  stdin/stdout for single-operator and subprocess use.

The request lifecycle (``queued → running → done/failed``, coalescing,
cancellation) is documented in ``docs/serving.md``; the architecture map in
``docs/architecture.md`` places this layer at the top of the stack.
"""

from __future__ import annotations

import asyncio
import contextlib
import sys
from pathlib import Path

from repro.runtime import ResultCache, RunStats, RuntimeSession
from repro.serve.protocol import (
    CONTROL_OPS,
    JOB_OPS,
    ProtocolError,
    ServeRequest,
    decode,
    encode,
    parse_request,
)
from repro.serve.queue import RequestQueue, Ticket
from repro.serve.workers import WorkerPool

__all__ = ["ExperimentService"]


class ExperimentService:
    """Async front-end serving experiment/simulation requests.

    Parameters
    ----------
    cache_dir:
        Directory of the shared on-disk result cache; ``None`` keeps the warm
        cache in memory (still shared across every request of this service).
    no_cache:
        Disable result caching entirely (each request recomputes).
    workers:
        Bound on concurrently executing jobs.
    session:
        Pre-built session to serve from (overrides ``cache_dir``/``no_cache``).
    """

    def __init__(
        self,
        cache_dir: str | Path | None = None,
        no_cache: bool = False,
        workers: int = 2,
        session: RuntimeSession | None = None,
    ) -> None:
        if session is None:
            if no_cache:
                session = RuntimeSession(cache=ResultCache.disabled())
            else:
                session = RuntimeSession(cache=ResultCache(directory=cache_dir))
        self.session = session
        self.queue = RequestQueue()
        self.queue.on_finish = self._on_job_finish
        self.pool = WorkerPool(self.queue, session, workers=workers)
        self.totals = RunStats()
        self._started = False
        self._shutdown = asyncio.Event()

    def _on_job_finish(self, job) -> None:
        """Fold one finished job's per-request counters into service totals."""
        if job.stats:
            self.totals.merge(job.stats)

    # ----------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Start the worker pool (idempotent)."""
        await self.pool.start()
        self._started = True

    async def stop(self) -> None:
        """Stop the workers; queued jobs are abandoned."""
        if self._started:
            await self.pool.stop()
            self._started = False
        self._shutdown.set()

    async def __aenter__(self) -> "ExperimentService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    async def wait_shutdown(self) -> None:
        """Block until a ``shutdown`` op arrives (or :meth:`stop` is called).

        TCP front-ends await this instead of ``serve_forever`` so a client's
        ``shutdown`` request actually stops the server.
        """
        await self._shutdown.wait()

    # ----------------------------------------------------------------- requests
    async def submit(self, request: ServeRequest, on_event=None) -> Ticket:
        """Enqueue a typed request; returns its ticket immediately.

        After :meth:`stop` the queue is stopping: the request is not enqueued
        (and the worker pool is *not* restarted) — the returned ticket fails
        immediately so the caller's wait resolves instead of hanging.
        """
        if not self._started and not self.queue.stopping:
            await self.start()
        return self.queue.submit(request, on_event=on_event)

    async def wait(self, ticket: Ticket) -> dict:
        """Wait for a ticket's job and return its terminal response payload."""
        await ticket.job.done.wait()
        return self.response(ticket)

    def response(self, ticket: Ticket) -> dict:
        """The terminal protocol payload of a finished (or cancelled) ticket."""
        job = ticket.job
        payload = {
            "event": ticket.state,
            "ticket": ticket.ticket_id,
            "coalesced": ticket.coalesced,
            "request": job.request.describe(),
        }
        if job.elapsed is not None:
            payload["elapsed_seconds"] = round(job.elapsed, 6)
        if ticket.state == "done":
            payload["result"] = job.result
            payload["stats"] = job.stats
        elif ticket.state == "failed":
            payload["error"] = job.error
        return payload

    # ----------------------------------------------------------------- control
    def status(self, ticket_id: str) -> dict:
        ticket = self.queue.get(ticket_id)
        if ticket is None:
            return {"event": "error", "error": f"unknown ticket {ticket_id!r}"}
        return {
            "event": "status",
            "ticket": ticket.ticket_id,
            "state": ticket.state,
            "coalesced": ticket.coalesced,
            "request": ticket.job.request.describe(),
        }

    def cancel(self, ticket_id: str) -> dict:
        try:
            changed, state = self.queue.cancel(ticket_id)
        except KeyError as error:
            return {"event": "error", "error": str(error)}
        return {"event": "cancelled", "ticket": ticket_id, "changed": changed, "state": state}

    def stats(self) -> dict:
        cache = self.session.cache
        if hasattr(cache, "usage"):
            usage = cache.usage()
        else:  # a custom session may serve from a cache-like object
            usage = {
                "entries": len(cache),
                "disk_bytes": 0,
                "memo_entries": 0,
                "oldest_age_seconds": None,
                "lru_age_seconds": None,
                "directory": (
                    str(cache.directory) if getattr(cache, "directory", None) else None
                ),
            }
        totals = RunStats()
        totals.merge(self.totals)
        if hasattr(cache, "snapshot"):
            # Fold the current state gauges into the lifetime counters, so
            # the wire payload's ``stats.cache`` carries disk usage and
            # entry age alongside hits/misses (see CacheStats).
            snap = cache.snapshot()
            totals.cache.disk_entries = snap.disk_entries
            totals.cache.disk_bytes = snap.disk_bytes
            totals.cache.memo_entries = snap.memo_entries
            totals.cache.oldest_age_seconds = snap.oldest_age_seconds
        return {
            "event": "stats",
            "stats": totals.as_dict(),
            "queue": self.queue.depth(),
            "cache_dir": usage["directory"],
            "cache_entries": usage["entries"],
            "cache": usage,
            "traces": len(self.session.traces),
            "workers": self.pool.workers,
        }

    def collect_garbage(self, max_bytes: int | None = None, max_age: float | None = None) -> dict:
        """Garbage-collect the shared disk cache (the ``gc`` op)."""
        cache = self.session.cache
        if not getattr(cache, "persistent", False) or not hasattr(cache, "gc"):
            return {"event": "error", "error": "no disk cache to garbage-collect"}
        result = cache.gc(max_bytes=max_bytes, max_age=max_age)
        return {
            "event": "gc",
            "removed_entries": result.removed_entries,
            "removed_bytes": result.removed_bytes,
            "remaining_entries": result.remaining_entries,
            "remaining_bytes": result.remaining_bytes,
        }

    def list_experiments(self) -> dict:
        from repro.experiments.base import PRESETS
        from repro.experiments.runner import EXPERIMENTS, experiment_description

        return {
            "event": "experiments",
            "experiments": [
                {"name": name, "description": experiment_description(name)}
                for name in EXPERIMENTS
            ],
            "presets": sorted(PRESETS),
        }

    # ----------------------------------------------------------------- protocol
    async def handle_message(self, message: dict, send) -> bool:
        """Dispatch one decoded protocol message; ``False`` requests shutdown.

        ``send`` is a callable taking one response dict; job lifecycle events
        are delivered through it as they happen.
        """
        client_id = message.get("id")

        def reply(payload: dict) -> None:
            if client_id is not None:
                payload = {"id": client_id, **payload}
            send(payload)

        op = message.get("op")
        if op == "ping":
            reply({"event": "pong"})
        elif op == "list":
            reply(self.list_experiments())
        elif op == "stats":
            reply(self.stats())
        elif op == "gc":
            bounds = {}
            for name in ("max_bytes", "max_age"):
                value = message.get(name)
                if value is not None and (
                    not isinstance(value, (int, float)) or isinstance(value, bool) or value < 0
                ):
                    reply({"event": "error", "error": f"{name} must be a non-negative number"})
                    return True
                bounds[name] = value
            reply(self.collect_garbage(**bounds))
        elif op == "status":
            reply(self.status(str(message.get("ticket", ""))))
        elif op == "cancel":
            reply(self.cancel(str(message.get("ticket", ""))))
        elif op == "shutdown":
            reply({"event": "shutdown"})
            self._shutdown.set()  # wakes wait_shutdown() (TCP front-ends)
            return False
        elif op in JOB_OPS:
            try:
                request = parse_request(message)
            except ProtocolError as error:
                reply({"event": "error", "error": str(error)})
                return True

            def on_event(ticket: Ticket, event: str) -> None:
                if event in ("done", "failed", "cancelled"):
                    reply(self.response(ticket))
                else:
                    reply(
                        {
                            "event": event,
                            "ticket": ticket.ticket_id,
                            "coalesced": ticket.coalesced,
                        }
                    )

            await self.submit(request, on_event=on_event)
        else:
            reply(
                {
                    "event": "error",
                    "error": f"unknown op {op!r}; ops: {', '.join(JOB_OPS + CONTROL_OPS)}",
                }
            )
        return True

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one TCP client: JSON lines in, event lines out."""
        outbox: asyncio.Queue[dict | None] = asyncio.Queue()

        async def drain_outbox() -> None:
            while True:
                payload = await outbox.get()
                if payload is None:
                    break
                writer.write(encode(payload))
                try:
                    await writer.drain()
                except (ConnectionError, RuntimeError):
                    break

        sender = asyncio.create_task(drain_outbox())
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = decode(line)
                except ProtocolError as error:
                    outbox.put_nowait({"event": "error", "error": str(error)})
                    continue
                if not await self.handle_message(message, outbox.put_nowait):
                    break
        except asyncio.CancelledError:
            pass  # server shutting down mid-connection; fall through to cleanup
        finally:
            outbox.put_nowait(None)
            with contextlib.suppress(asyncio.CancelledError):
                await sender
            sender.cancel()
            writer.close()
            with contextlib.suppress(ConnectionError, OSError, asyncio.CancelledError):
                await writer.wait_closed()

    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 0) -> asyncio.Server:
        """Listen for protocol connections; returns the (started) server."""
        await self.start()
        return await asyncio.start_server(self.handle_connection, host, port)

    async def run_stdio(self, stdin=None, stdout=None) -> None:
        """Speak the protocol over stdin/stdout until EOF or ``shutdown``."""
        stdin = stdin if stdin is not None else sys.stdin
        stdout = stdout if stdout is not None else sys.stdout
        await self.start()
        loop = asyncio.get_running_loop()

        def send(payload: dict) -> None:
            stdout.write(encode(payload).decode("utf-8"))
            stdout.flush()

        while True:
            line = await loop.run_in_executor(None, stdin.readline)
            if not line:
                break
            if not line.strip():
                continue
            try:
                message = decode(line)
            except ProtocolError as error:
                send({"event": "error", "error": str(error)})
                continue
            if not await self.handle_message(message, send):
                break
        await self.stop()
