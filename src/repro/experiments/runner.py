"""Experiment registry and command-line entry point.

Run a single experiment::

    python -m repro.experiments.runner --experiment fig9 --preset fast

regenerate every table and figure in parallel with a warm result cache::

    python -m repro.experiments.runner --all --preset full --jobs 4

or list what is available::

    python -m repro.experiments.runner --list

``python -m repro`` is an alias for this module, and the installed console
script is ``repro-experiments``.  Runs are executed by :mod:`repro.runtime`:
``--jobs N`` fans simulation and experiment jobs out over a process pool,
``--cache-dir``/``--no-cache`` control the content-addressed result cache, and
``--out DIR`` exports one JSON artifact per experiment.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.experiments import (
    ablation,
    extension_csd,
    fig2,
    fig3,
    fig9,
    fig10,
    fig11,
    fig12,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.experiments.base import ExperimentResult, PRESETS, Preset, export_results

__all__ = [
    "EXPERIMENTS",
    "experiment_description",
    "run_experiment",
    "run_all",
    "main",
]

#: Registry of experiment id → run function, in the paper's presentation order.
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "table2": table2.run,
    "fig9": fig9.run,
    "table3": table3.run,
    "fig10": fig10.run,
    "table4": table4.run,
    "fig11": fig11.run,
    "table5": table5.run,
    "fig12": fig12.run,
    "ablation": ablation.run,
    "extension_csd": extension_csd.run,
}


def experiment_description(name: str) -> str:
    """One-line description of an experiment (its module docstring's first line)."""
    module = sys.modules[EXPERIMENTS[name].__module__]
    doc = module.__doc__ or ""
    first = doc.strip().splitlines()[0] if doc.strip() else ""
    return first.rstrip(".")


def run_experiment(
    name: str, preset: str | Preset = "fast", seed: int = 0
) -> ExperimentResult:
    """Run one experiment by id (within the caller's runtime session)."""
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; available: {', '.join(EXPERIMENTS)}")
    return EXPERIMENTS[name](preset=preset, seed=seed)


def run_all(preset: str | Preset = "fast", seed: int = 0) -> dict[str, ExperimentResult]:
    """Run every experiment in presentation order (serial, session-cached)."""
    from repro.runtime import run_experiments

    report = run_experiments(list(EXPERIMENTS), preset=preset, seed=seed)
    return report.results


def main(argv: list[str] | None = None) -> int:
    """Command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate the tables and figures of the Bit-Pragmatic paper.",
    )
    parser.add_argument("--experiment", choices=sorted(EXPERIMENTS), help="experiment id")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and descriptions"
    )
    parser.add_argument("--preset", choices=sorted(PRESETS), default="fast")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the run (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="on-disk result cache directory (default: ~/.cache/repro-pragmatic "
        "or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache entirely"
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="export one JSON artifact per experiment into DIR",
    )
    args = parser.parse_args(argv)

    if args.list:
        width = max(len(name) for name in EXPERIMENTS)
        for name in EXPERIMENTS:
            print(f"{name:<{width}}  {experiment_description(name)}")
        return 0

    if not args.all and not args.experiment:
        parser.error("specify --experiment NAME, --all, or --list")
    if args.jobs < 1:
        parser.error("--jobs must be at least 1")

    from repro.runtime import run_experiments
    from repro.runtime.session import DEFAULT_CACHE_DIR

    names = list(EXPERIMENTS) if args.all else [args.experiment]
    cache_dir = None if args.no_cache else (args.cache_dir or DEFAULT_CACHE_DIR)
    report = run_experiments(
        names,
        preset=args.preset,
        seed=args.seed,
        jobs=args.jobs,
        cache_dir=cache_dir,
        no_cache=args.no_cache,
    )

    for result in report.results.values():
        print(result.to_text())
        print()
    if args.out:
        paths = export_results(report.results, args.out)
        print(f"exported {len(paths)} artifact(s) to {args.out}")
    print(report.summary())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
