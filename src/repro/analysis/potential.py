"""Term-count potential study (Section II, Figures 2 and 3).

The motivation study counts, per computing engine, the number of terms (single
bit × synapse additions) needed for the convolutional layers, normalized to the
bit-parallel DaDianNao baseline:

* **DaDN / ZN / CVN** account each multiplication as ``storage_bits`` terms;
  ZN drops zero-valued neurons everywhere, CVN everywhere except the first layer.
* **Stripes** accounts ``p`` terms per multiplication, with ``p`` the per-layer
  precision.
* **PRA-fp16** accounts the neuron's essential bit count, and **PRA-red** the
  essential bit count after software trims the per-layer prefix/suffix bits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.zero_skip import ZeroSkipModel
from repro.nn.calibration import calibrated_trace
from repro.nn.networks import NETWORK_NAMES, get_network
from repro.nn.traces import NetworkTrace
from repro.numerics.fixedpoint import popcount

__all__ = [
    "TermCounts",
    "FIG2_ENGINES",
    "FIG3_ENGINES",
    "count_terms_fixed16",
    "count_terms_quant8",
    "fig2_table",
    "fig3_table",
]

#: Engines of Figure 2, in the order the figure plots them.
FIG2_ENGINES: tuple[str, ...] = ("ZN", "CVN", "Stripes", "PRA-fp16", "PRA-red")

#: Engines of Figure 3 (8-bit quantized representation).
FIG3_ENGINES: tuple[str, ...] = ("ZN", "PRA")


@dataclass(frozen=True)
class TermCounts:
    """Relative term counts (vs DaDN) of one network on several engines."""

    network: str
    relative_terms: dict[str, float]

    def relative(self, engine: str) -> float:
        return self.relative_terms[engine]


def _layer_term_statistics(
    trace: NetworkTrace, layer_index: int, samples: int
) -> dict[str, float]:
    """Per-neuron expected term counts of one layer for every engine."""
    bits = trace.storage_bits
    values = trace.sample_layer_values(layer_index, samples)
    precision = trace.layer_precision(layer_index)
    nonzero_fraction = float(np.count_nonzero(values) / values.size)
    essential = float(popcount(values, bits=bits).mean())
    trimmed = float(popcount(precision.trim(values), bits=bits).mean())
    return {
        "baseline": float(bits),
        "nonzero_fraction": nonzero_fraction,
        "stripes": float(min(precision.width, bits)),
        "essential": essential,
        "trimmed": trimmed,
    }


def count_terms_fixed16(
    trace: NetworkTrace, samples_per_layer: int = 20000
) -> TermCounts:
    """Relative term counts of the Figure 2 engines for one traced network."""
    if trace.storage_bits != 16:
        raise ValueError("count_terms_fixed16 expects a 16-bit fixed-point trace")
    zn = ZeroSkipModel(skip_first_layer=True)
    cvn = ZeroSkipModel(skip_first_layer=False)
    totals = {engine: 0.0 for engine in FIG2_ENGINES}
    baseline_total = 0.0
    for index, layer in enumerate(trace.network.layers):
        stats = _layer_term_statistics(trace, index, samples_per_layer)
        macs = layer.macs
        baseline_total += macs * stats["baseline"]
        values = trace.sample_layer_values(index, samples_per_layer)
        totals["ZN"] += zn.layer_terms(layer, values, index, storage_bits=16)
        totals["CVN"] += cvn.layer_terms(layer, values, index, storage_bits=16)
        totals["Stripes"] += macs * stats["stripes"]
        totals["PRA-fp16"] += macs * stats["essential"]
        totals["PRA-red"] += macs * stats["trimmed"]
    return TermCounts(
        network=trace.network.name,
        relative_terms={engine: totals[engine] / baseline_total for engine in FIG2_ENGINES},
    )


def count_terms_quant8(
    trace: NetworkTrace, samples_per_layer: int = 20000
) -> TermCounts:
    """Relative term counts of the Figure 3 engines for one 8-bit quantized trace."""
    if trace.storage_bits != 8:
        raise ValueError("count_terms_quant8 expects an 8-bit quantized trace")
    zn = ZeroSkipModel(skip_first_layer=True)
    totals = {engine: 0.0 for engine in FIG3_ENGINES}
    baseline_total = 0.0
    for index, layer in enumerate(trace.network.layers):
        values = trace.sample_layer_values(index, samples_per_layer)
        essential = float(popcount(values, bits=8).mean())
        baseline_total += layer.macs * 8.0
        totals["ZN"] += zn.layer_terms(layer, values, index, storage_bits=8)
        totals["PRA"] += layer.macs * essential
    return TermCounts(
        network=trace.network.name,
        relative_terms={engine: totals[engine] / baseline_total for engine in FIG3_ENGINES},
    )


def fig2_table(
    networks: tuple[str, ...] | None = None,
    samples_per_layer: int = 20000,
    seed: int = 0,
) -> list[TermCounts]:
    """Relative term counts (Figure 2) for the requested networks."""
    names = networks if networks is not None else NETWORK_NAMES
    return [
        count_terms_fixed16(
            calibrated_trace(get_network(name), representation="fixed16", seed=seed),
            samples_per_layer=samples_per_layer,
        )
        for name in names
    ]


def fig3_table(
    networks: tuple[str, ...] | None = None,
    samples_per_layer: int = 20000,
    seed: int = 0,
) -> list[TermCounts]:
    """Relative term counts (Figure 3) for the requested networks."""
    names = networks if networks is not None else NETWORK_NAMES
    return [
        count_terms_quant8(
            calibrated_trace(get_network(name), representation="quant8", seed=seed),
            samples_per_layer=samples_per_layer,
        )
        for name in names
    ]
