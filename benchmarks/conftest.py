"""Shared helpers for the benchmark harness.

Each benchmark regenerates one paper table or figure through the experiment
harness, measures how long the reproduction takes (one round — these are
simulations, not micro-kernels), asserts the qualitative claims the paper makes
about that artifact, and writes the reproduced rows to
``benchmarks/reports/<experiment>.txt`` so the output survives the run.

Every measured run executes inside an isolated runtime session so the shared
result cache of :mod:`repro.runtime` cannot let one benchmark reuse another's
simulations — each benchmark pays the full cost of its own reproduction.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.experiments.base import ExperimentResult
from repro.experiments.runner import run_experiment
from repro.loadgen.trajectory import append_experiment_measurement, current_git_sha
from repro.runtime import isolated_session

#: Directory the benchmark reports are written to.
REPORTS_DIR = Path(__file__).parent / "reports"

#: The append-only performance trajectory (schema and record contract live in
#: :mod:`repro.loadgen.trajectory`): one record per PR, each benchmark run
#: merging its wall times into the record of the current git sha.
SUMMARY_PATH = REPORTS_DIR / "bench_summary.json"

#: Preset used by every benchmark run.
BENCHMARK_PRESET = "fast"


def _run_isolated(experiment: str, preset: str) -> ExperimentResult:
    """Run one experiment in a fresh runtime session (no cross-benchmark reuse)."""
    with isolated_session():
        return run_experiment(experiment, preset=preset)


def record_summary(experiment: str, preset: str, wall_seconds: float) -> None:
    """Record one measurement into the perf trajectory's head record.

    A corrupted or missing trajectory is simply restarted (and a legacy
    schema-1 snapshot ingested as record 0), never fatal to the benchmark.
    """
    append_experiment_measurement(
        SUMMARY_PATH,
        experiment,
        preset,
        wall_seconds,
        git_sha=current_git_sha(Path(__file__).parent),
    )


def run_and_report(benchmark, experiment: str, preset: str = BENCHMARK_PRESET) -> ExperimentResult:
    """Run one experiment under pytest-benchmark and persist its report."""
    durations: list[float] = []

    def timed(experiment: str, preset: str) -> ExperimentResult:
        started = time.perf_counter()
        result = _run_isolated(experiment, preset)
        durations.append(time.perf_counter() - started)
        return result

    result = benchmark.pedantic(
        timed, args=(experiment, preset), rounds=1, iterations=1
    )
    REPORTS_DIR.mkdir(exist_ok=True)
    (REPORTS_DIR / f"{experiment}.txt").write_text(result.to_text() + "\n")
    record_summary(experiment, preset, durations[-1])
    return result


@pytest.fixture
def report(benchmark):
    """Fixture exposing :func:`run_and_report` bound to the active benchmark."""

    def runner(experiment: str, preset: str = BENCHMARK_PRESET) -> ExperimentResult:
        return run_and_report(benchmark, experiment, preset)

    return runner
