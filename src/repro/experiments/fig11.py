"""Figure 11 — energy efficiency relative to DaDianNao."""

from __future__ import annotations

from repro.analysis.speedup import geometric_mean, stripes_result
from repro.analysis.tables import format_ratio
from repro.core.variants import column_variant, pallet_variant
from repro.energy.efficiency import design_efficiency
from repro.experiments.base import ExperimentResult, Preset, get_preset
from repro.runtime import SimulationRequest, TraceSpec, current_session, simulate

__all__ = ["run", "plan", "PAPER_GEOMEANS"]

#: Average efficiencies the paper reports: Stripes +16%, PRA-4b −5%, PRA-2b +28%,
#: PRA-2b-1R +48%.
PAPER_GEOMEANS: dict[str, float] = {
    "Stripes": 1.16,
    "PRA-4b": 0.95,
    "PRA-2b": 1.28,
    "PRA-2b-1R": 1.48,
}


def _designs() -> dict[str, object]:
    """The headline Pragmatic designs of this figure."""
    return {
        "PRA-4b": pallet_variant(4),
        "PRA-2b": pallet_variant(2),
        "PRA-2b-1R": column_variant(1),
    }


def plan(preset: str | Preset = "fast", seed: int = 0) -> list[SimulationRequest]:
    """The cycle simulations this experiment needs (one job per network).

    Every design here also appears in Figure 9 or Figure 10, so in a combined
    run these jobs are pure cache hits.
    """
    config = get_preset(preset)
    designs = tuple(_designs().items())
    return [
        SimulationRequest(
            trace=TraceSpec(network=name, seed=seed),
            configs=designs,
            sampling=config.sampling(),
        )
        for name in config.networks
    ]


def run(preset: str | Preset = "fast", seed: int = 0) -> ExperimentResult:
    """Reproduce Figure 11: relative energy efficiency of the headline designs."""
    config = get_preset(preset)
    pragmatic_designs = _designs()
    engine_names = ["Stripes", *pragmatic_designs.keys()]
    headers = ["network", *engine_names]
    rows: list[list[object]] = []
    metadata: dict[str, float] = {}
    efficiencies: dict[str, list[float]] = {name: [] for name in engine_names}

    for request in plan(config, seed):
        results = simulate(request)
        trace = current_session().trace(request.trace)
        network_name = trace.network.name
        row: list[object] = [network_name]
        stripes = design_efficiency("stripes", stripes_result(trace))
        row.append(format_ratio(stripes.efficiency))
        efficiencies["Stripes"].append(stripes.efficiency)
        metadata[f"{network_name}:Stripes"] = stripes.efficiency
        for label, design in pragmatic_designs.items():
            entry = design_efficiency(design, results[label])
            row.append(format_ratio(entry.efficiency))
            efficiencies[label].append(entry.efficiency)
            metadata[f"{network_name}:{label}"] = entry.efficiency
        rows.append(row)

    geomeans = {name: geometric_mean(values) for name, values in efficiencies.items()}
    rows.append(["geomean", *[format_ratio(geomeans[name]) for name in engine_names]])
    for name, value in geomeans.items():
        metadata[f"geomean:{name}"] = value
    notes = (
        "Efficiency is E_DaDN / E_design = speedup / chip-power ratio.  Paper averages:\n"
        "Stripes 1.16x, PRA-4b 0.95x, PRA-2b 1.28x, PRA-2b-1R 1.48x."
    )
    return ExperimentResult(
        experiment="fig11",
        title="Figure 11: energy efficiency relative to DaDianNao",
        headers=headers,
        rows=rows,
        notes=notes,
        metadata=metadata,
    )
