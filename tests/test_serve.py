"""Tests for the serving layer: protocol, queue, service, concurrency.

The serving contract: many concurrent clients share one warm session;
identical in-flight requests coalesce onto one job; per-request ``RunStats``
counters prove exactly how much work each answer cost (a warm-cache answer
reports ``simulated 0 configs``).
"""

import asyncio
import io
import json
from dataclasses import dataclass

import pytest

from repro.serve import (
    ExperimentRequest,
    ExperimentService,
    ProtocolError,
    RunAllRequest,
    ServeClient,
    SimulateRequest,
    parse_request,
)
from repro.serve.cli import main as serve_main
from repro.serve.protocol import decode, encode
from repro.serve.queue import RequestQueue

#: Tiny fast-preset override so served simulations take seconds.
TINY = {"networks": ["alexnet"], "max_pallets": 2, "samples_per_layer": 1500}


def run(coro):
    return asyncio.run(coro)


# --------------------------------------------------------------------- protocol
class TestProtocol:
    def test_parse_run_experiment(self):
        request = parse_request(
            {"op": "run_experiment", "experiment": "fig9", "preset": "smoke", "seed": 3}
        )
        assert isinstance(request, ExperimentRequest)
        assert request.experiment == "fig9"
        assert request.resolved_preset().name == "smoke"

    def test_parse_rejects_unknowns(self):
        with pytest.raises(ProtocolError):
            parse_request({"op": "run_experiment", "experiment": "fig99"})
        with pytest.raises(ProtocolError):
            parse_request({"op": "run_experiment", "experiment": "fig9", "preset": "huge"})
        with pytest.raises(ProtocolError):
            parse_request({"op": "explode"})
        with pytest.raises(ProtocolError):
            parse_request({"op": "simulate"})  # missing network
        with pytest.raises(ProtocolError):
            parse_request(
                {"op": "simulate", "network": "alexnet", "variants": "fig99"}
            )

    def test_overrides_validated_and_canonicalized(self):
        base = {"op": "run_experiment", "experiment": "fig9"}
        with pytest.raises(ProtocolError):
            parse_request({**base, "overrides": {"pallets": 2}})
        with pytest.raises(ProtocolError):
            parse_request({**base, "overrides": {"max_pallets": 0}})
        with pytest.raises(ProtocolError):
            parse_request({**base, "overrides": {"networks": "alexnet"}})
        a = parse_request({**base, "overrides": {"max_pallets": 2, "networks": ["alexnet"]}})
        b = parse_request({**base, "overrides": {"networks": ["alexnet"], "max_pallets": 2}})
        assert a == b  # key order canonicalized
        assert a.resolved_preset().max_pallets == 2
        assert a.resolved_preset().networks == ("alexnet",)

    def test_request_keys_dedup_identical_content(self):
        message = {"op": "run_experiment", "experiment": "fig9", "preset": "fast"}
        assert parse_request(message).key() == parse_request(dict(message)).key()
        assert (
            parse_request(message).key()
            != parse_request({**message, "seed": 1}).key()
        )
        assert (
            parse_request(message).key()
            != parse_request({**message, "experiment": "fig10"}).key()
        )

    def test_run_all_and_simulate_parse(self):
        assert isinstance(parse_request({"op": "run_all", "preset": "smoke"}), RunAllRequest)
        simulate = parse_request({"op": "simulate", "network": "alexnet"})
        assert isinstance(simulate, SimulateRequest)
        assert len(simulate.simulation_request().configs) == 5  # fig9 variants

    def test_encode_decode_round_trip(self):
        message = {"id": "c1", "op": "ping"}
        line = encode(message)
        assert line.endswith(b"\n")
        assert decode(line) == message
        with pytest.raises(ProtocolError):
            decode(b"not json\n")
        with pytest.raises(ProtocolError):
            decode(b"[1, 2]\n")


# ------------------------------------------------------------------------ queue
@dataclass(frozen=True)
class StubRequest:
    """Queue-only request: a fixed key and description."""

    name: str

    def key(self) -> str:
        return f"stub:{self.name}"

    def describe(self) -> str:
        return f"stub {self.name}"


class TestRequestQueue:
    def test_identical_inflight_requests_share_one_job(self):
        async def scenario():
            queue = RequestQueue()
            first = queue.submit(StubRequest("a"))
            second = queue.submit(StubRequest("a"))
            third = queue.submit(StubRequest("b"))
            assert first.job is second.job
            assert not first.coalesced and second.coalesced
            assert third.job is not first.job
            assert queue.depth()["submitted"] == 3
            assert queue.depth()["coalesced"] == 1
            # Only two jobs were actually enqueued.
            assert await queue.next_job() is first.job
            assert await queue.next_job() is third.job

        run(scenario())

    def test_finished_jobs_do_not_coalesce_new_requests(self):
        async def scenario():
            queue = RequestQueue()
            first = queue.submit(StubRequest("a"))
            job = await queue.next_job()
            queue.mark_running(job)
            queue.finish(job, result={"ok": 1}, stats={})
            again = queue.submit(StubRequest("a"))
            assert again.job is not first.job
            assert not again.coalesced

        run(scenario())

    def test_cancelling_the_only_ticket_drops_a_queued_job(self):
        async def scenario():
            queue = RequestQueue()
            ticket = queue.submit(StubRequest("a"))
            survivor = queue.submit(StubRequest("b"))
            changed, state = queue.cancel(ticket.ticket_id)
            assert changed and state == "cancelled"
            assert ticket.job.state == "cancelled"
            # next_job skips the cancelled job entirely.
            assert await queue.next_job() is survivor.job

        run(scenario())

    def test_cancelling_one_of_two_tickets_keeps_the_job(self):
        async def scenario():
            queue = RequestQueue()
            first = queue.submit(StubRequest("a"))
            second = queue.submit(StubRequest("a"))
            queue.cancel(second.ticket_id)
            assert first.job.state == "queued"
            assert second.state == "cancelled"
            job = await queue.next_job()
            queue.mark_running(job)
            queue.finish(job, result={}, stats={})
            assert first.state == "done"
            assert second.state == "cancelled"

        run(scenario())

    def test_unknown_ticket_raises(self):
        queue = RequestQueue()
        with pytest.raises(KeyError):
            queue.cancel("t999")

    def test_stop_abandons_the_backlog_instead_of_draining_it(self):
        async def scenario():
            queue = RequestQueue()
            first = queue.submit(StubRequest("a"))
            second = queue.submit(StubRequest("b"))
            queue.stop_workers(1)
            # Workers get None immediately; the backlog is not executed.
            assert await queue.next_job() is None
            assert queue.abandon_pending() == 2
            for ticket in (first, second):
                assert ticket.state == "failed"
                assert "service stopped" in ticket.job.error
                assert ticket.job.done.is_set()

        run(scenario())

    def test_submit_on_a_stopping_queue_fails_fast(self):
        # Regression: a submission after stop_workers()/abandon_pending() was
        # enqueued behind drained workers and its ticket hung forever.
        async def scenario():
            queue = RequestQueue()
            queue.stop_workers(1)
            queue.abandon_pending()
            events = []
            ticket = queue.submit(
                StubRequest("late"), on_event=lambda t, event: events.append(event)
            )
            assert ticket.state == "failed"
            assert ticket.job.done.is_set()  # waiters resolve immediately
            assert "rejected" in ticket.job.error
            assert events == ["failed"]
            assert queue.depth()["failed"] == 1
            assert queue.depth()["queued"] == 0  # nothing was enqueued
            # Workers woken afterwards still see the stop sentinel.
            assert await queue.next_job() is None

        run(scenario())

    def test_finished_tickets_are_evicted_beyond_the_history_bound(self, monkeypatch):
        # A long-lived server must not retain every result payload forever.
        import repro.serve.queue as queue_module

        monkeypatch.setattr(queue_module, "FINISHED_TICKET_HISTORY", 3)

        async def scenario():
            queue = RequestQueue()
            tickets = []
            for index in range(5):
                ticket = queue.submit(StubRequest(str(index)))
                tickets.append(ticket)
                job = await queue.next_job()
                queue.mark_running(job)
                queue.finish(job, result={"payload": index}, stats={})
            # Only the 3 most recent finished tickets remain resolvable.
            assert queue.get(tickets[0].ticket_id) is None
            assert queue.get(tickets[1].ticket_id) is None
            for ticket in tickets[2:]:
                assert queue.get(ticket.ticket_id) is ticket
            # Held Ticket objects keep working regardless of eviction.
            assert tickets[0].state == "done"

        run(scenario())


# ----------------------------------------------------------------- stats views
class TestStatsViews:
    def test_cache_view_counts_corruption_errors(self, tmp_path):
        from repro.runtime.cache import ResultCache
        from repro.serve.workers import _CacheView

        seed = ResultCache(directory=tmp_path)
        seed.put("deadbeef", {"x": 1})
        (tmp_path / "deadbeef.json.gz").write_text("garbage", encoding="utf-8")
        # Fresh inner cache (no in-process memo) behind a per-request view.
        view = _CacheView(ResultCache(directory=tmp_path))
        assert view.get("deadbeef") is None
        assert view.stats.errors == 1  # corruption recovery is visible per request
        assert view.stats.misses == 1

    def test_trace_view_counts_builds_exactly_once(self):
        from repro.runtime import TraceStore, TraceSpec
        from repro.serve.workers import _TraceView

        store = TraceStore()
        spec = TraceSpec(network="alexnet")
        first, second = _TraceView(store), _TraceView(store)
        first.get(spec)
        second.get(spec)
        assert (first.builds, first.reuses) == (1, 0)
        assert (second.builds, second.reuses) == (0, 1)
        assert (store.builds, store.reuses) == (1, 1)


# ---------------------------------------------------------------------- service
class TestServiceInProcess:
    def test_submit_wait_round_trip(self):
        async def scenario():
            async with ExperimentService(cache_dir=None, workers=1) as service:
                ticket = await service.submit(ExperimentRequest("table3", preset="smoke"))
                response = await service.wait(ticket)
                assert response["event"] == "done"
                assert response["result"]["kind"] == "experiment"
                assert response["result"]["experiment"]["experiment"] == "table3"
                assert "stats" in response
                assert service.queue.depth()["completed"] == 1

        run(scenario())

    def test_failed_jobs_report_the_error(self):
        async def scenario():
            async with ExperimentService(cache_dir=None, workers=1) as service:
                # Parses fine, but the network does not exist: fails at run time.
                ticket = await service.submit(
                    SimulateRequest(network="resnet9000", preset="smoke")
                )
                response = await service.wait(ticket)
                assert response["event"] == "failed"
                assert "resnet9000" in response["error"]
                assert service.queue.depth()["failed"] == 1

        run(scenario())

    def test_stats_and_listing_ops(self):
        async def scenario():
            async with ExperimentService(cache_dir=None, workers=1) as service:
                listing = service.list_experiments()
                names = [entry["name"] for entry in listing["experiments"]]
                assert "fig9" in names and "table1" in names
                ticket = await service.submit(ExperimentRequest("table4", preset="smoke"))
                await service.wait(ticket)
                stats = service.stats()
                assert stats["queue"]["completed"] == 1
                assert stats["workers"] == 1
                # The richer cache section is always present (memory mode here).
                assert stats["cache"]["memo_entries"] >= 0
                assert stats["cache"]["disk_bytes"] == 0
                assert stats["cache"]["directory"] is None

        run(scenario())

    def test_stats_op_reports_manifest_backed_disk_usage(self, tmp_path):
        async def scenario():
            async with ExperimentService(cache_dir=tmp_path, workers=1) as service:
                service.session.cache.put("deadbeef", {"x": 1})
                stats = service.stats()
                assert stats["cache_dir"] == str(tmp_path)
                assert stats["cache_entries"] == 1
                assert stats["cache"]["entries"] == 1
                assert stats["cache"]["disk_bytes"] > 0
                assert stats["cache"]["memo_entries"] == 1
                assert stats["cache"]["oldest_age_seconds"] is not None

        run(scenario())

    def test_gc_op_collects_the_shared_disk_cache(self, tmp_path):
        async def scenario():
            async with ExperimentService(cache_dir=tmp_path, workers=1) as service:
                service.session.cache.put("deadbeef", {"x": 1})
                sent = []
                keep = await service.handle_message({"op": "gc"}, sent.append)
                assert keep and sent[-1]["event"] == "gc"
                assert sent[-1]["removed_entries"] == 0  # no bounds: no-op
                await service.handle_message({"op": "gc", "max_bytes": 0}, sent.append)
                assert sent[-1]["event"] == "gc"
                assert sent[-1]["removed_entries"] == 1
                assert sent[-1]["remaining_bytes"] == 0
                assert len(service.session.cache) == 0
                await service.handle_message({"op": "gc", "max_bytes": -3}, sent.append)
                assert sent[-1]["event"] == "error"

        run(scenario())

    def test_gc_op_without_a_disk_cache_is_an_error(self):
        async def scenario():
            async with ExperimentService(cache_dir=None, workers=1) as service:
                sent = []
                await service.handle_message({"op": "gc", "max_bytes": 0}, sent.append)
                assert sent[-1]["event"] == "error"
                assert "no disk cache" in sent[-1]["error"]

        run(scenario())

    def test_submit_after_stop_fails_fast_instead_of_hanging(self):
        # Regression: ServeService.submit ignored queue.stopping, restarted
        # the pool, and the late ticket hung with no worker to fail it.
        async def scenario():
            service = ExperimentService(cache_dir=None, workers=1)
            await service.start()
            await service.stop()
            ticket = await service.submit(ExperimentRequest("table3", preset="smoke"))
            response = await asyncio.wait_for(service.wait(ticket), timeout=5)
            assert response["event"] == "failed"
            assert "rejected" in response["error"]
            assert not service._started  # the pool was not restarted

        run(scenario())


# ------------------------------------------------------------------ concurrency
class TestConcurrentServing:
    def test_identical_concurrent_requests_coalesce_to_one_execution(self):
        async def scenario():
            async with ExperimentService(cache_dir=None, workers=2) as service:
                server = await service.serve_tcp("127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                async with server:
                    clients = [await ServeClient.connect("127.0.0.1", port) for _ in range(3)]
                    responses = await asyncio.gather(
                        *[
                            client.run_experiment("fig9", preset="fast", overrides=TINY)
                            for client in clients
                        ]
                    )
                    assert all(response.ok for response in responses)
                    assert sorted(r.coalesced for r in responses) == [False, True, True]
                    # One execution: its 5 simulated configs are reported to
                    # every ticket of the coalesced job, and the server-side
                    # totals confirm nothing ran twice.
                    assert {r.stats.sweep.configs_simulated for r in responses} == {5}
                    assert len({r.ticket for r in responses}) == 3  # tickets stay distinct
                    stats = await clients[0].stats()
                    assert stats["queue"]["submitted"] == 3
                    assert stats["queue"]["coalesced"] == 2
                    assert stats["queue"]["completed"] == 1
                    assert stats["stats"]["sweep"]["configs_simulated"] == 5
                    for client in clients:
                        await client.close()

        run(scenario())

    def test_overlapping_design_points_simulate_exactly_once(self):
        async def scenario():
            # workers=1 keeps execution serial so the cache (not luck) carries
            # the overlap between *different* request types.
            async with ExperimentService(cache_dir=None, workers=1) as service:
                server = await service.serve_tcp("127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                async with server:
                    clients = [await ServeClient.connect("127.0.0.1", port) for _ in range(4)]
                    responses = await asyncio.gather(
                        clients[0].run_experiment("fig9", preset="fast", overrides=TINY),
                        clients[1].run_experiment("fig9", preset="fast", overrides=TINY),
                        clients[2].simulate(
                            "alexnet", variants="fig9", preset="fast",
                            overrides={"max_pallets": 2},
                        ),
                        clients[3].simulate(
                            "alexnet", variants="fig9", preset="fast",
                            overrides={"max_pallets": 2},
                        ),
                    )
                    assert all(response.ok for response in responses)
                    # fig9 over alexnet needs 5 design points; the simulate op
                    # requests the same 5 units.  Each identical pair coalesced
                    # onto one job, and whichever unique job ran second found
                    # the first one's entries: across the run, each unique
                    # simulation ran exactly once.
                    executed = [r for r in responses if not r.coalesced]
                    assert len(executed) == 2
                    total = sum(r.stats.sweep.configs_simulated for r in executed)
                    assert total == 5
                    stats = await clients[0].stats()
                    assert stats["stats"]["sweep"]["configs_simulated"] == 5
                    assert stats["queue"]["coalesced"] == 2  # one per identical pair
                    for client in clients:
                        await client.close()

        run(scenario())

    @pytest.mark.slow
    def test_warm_server_answers_concurrent_fig9_fast_without_recompute(self, tmp_path):
        """Acceptance: two concurrent identical ``fig9 --preset fast`` requests
        against a warm-cache server cost exactly one cached, zero-recompute
        simulation pass, proven by the RunStats counters in the responses."""

        async def scenario():
            async with ExperimentService(cache_dir=tmp_path, workers=2) as service:
                server = await service.serve_tcp("127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                async with server:
                    client = await ServeClient.connect("127.0.0.1", port)
                    other = await ServeClient.connect("127.0.0.1", port)
                    # Warm the shared cache through the server itself.
                    cold = await client.run_experiment("fig9", preset="fast")
                    assert cold.ok and cold.stats.sweep.configs_simulated > 0
                    # Two concurrent identical requests: one job, zero recompute.
                    a, b = await asyncio.gather(
                        client.run_experiment("fig9", preset="fast"),
                        other.run_experiment("fig9", preset="fast"),
                    )
                    assert a.ok and b.ok
                    assert sorted((a.coalesced, b.coalesced)) == [False, True]
                    for response in (a, b):
                        assert response.stats.sweep.configs_simulated == 0
                        assert response.stats.cache.misses == 0
                        assert response.stats.cache.hits > 0
                    assert a.result == cold.result == b.result
                    stats = await client.stats()
                    assert stats["queue"]["submitted"] == 3
                    assert stats["queue"]["completed"] == 2  # cold + one warm job
                    await client.close()
                    await other.close()

        run(scenario())


# ---------------------------------------------------------------------- fronts
class TestFrontEnds:
    def test_stdio_protocol_round_trip(self):
        lines = [
            {"id": "1", "op": "ping"},
            {"id": "2", "op": "run_experiment", "experiment": "table3", "preset": "smoke"},
            {"op": "shutdown"},
        ]
        stdin = io.StringIO("".join(json.dumps(line) + "\n" for line in lines))
        stdout = io.StringIO()

        async def scenario():
            service = ExperimentService(cache_dir=None, workers=1)
            await service.run_stdio(stdin=stdin, stdout=stdout)

        run(scenario())
        events = [json.loads(line) for line in stdout.getvalue().splitlines()]
        by_id = {}
        for event in events:
            by_id.setdefault(event.get("id"), []).append(event["event"])
        assert by_id["1"] == ["pong"]
        assert by_id["2"] == ["queued", "running", "done"]
        assert by_id[None] == ["shutdown"]
        done = [e for e in events if e["event"] == "done"][0]
        assert done["result"]["experiment"]["experiment"] == "table3"

    def test_cli_selftest(self, capsys):
        assert serve_main(["--selftest"]) == 0
        assert "selftest ok" in capsys.readouterr().out

    def test_cli_rejects_bad_arguments(self):
        with pytest.raises(SystemExit):
            serve_main(["--workers", "0", "--selftest"])
        with pytest.raises(SystemExit):
            serve_main(["--tcp", "nonsense"])

    def test_shutdown_op_stops_a_tcp_server(self):
        async def scenario():
            async with ExperimentService(cache_dir=None, workers=1) as service:
                server = await service.serve_tcp("127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                async with server:
                    client = await ServeClient.connect("127.0.0.1", port)
                    await client.shutdown()
                    # The front-end's wait returns promptly after the op.
                    await asyncio.wait_for(service.wait_shutdown(), timeout=5)
                    await client.close()

        run(scenario())

    def test_client_waiters_fail_fast_when_the_connection_dies(self):
        async def scenario():
            async with ExperimentService(cache_dir=None, workers=1) as service:
                server = await service.serve_tcp("127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                async with server:
                    client = await ServeClient.connect("127.0.0.1", port)
                    waiter = asyncio.create_task(
                        client.run_experiment("fig9", preset="fast", overrides=TINY)
                    )
                    await asyncio.sleep(0.1)  # request in flight
                    server.close()  # kill the transport under the client
                    client._writer.transport.abort()
                    response = await asyncio.wait_for(waiter, timeout=10)
                    assert not response.ok
                    assert response.error == "connection closed"
                    await client.close()

        run(scenario())
