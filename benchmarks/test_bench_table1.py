"""Benchmark: regenerate Table I (essential bit content of the neuron streams)."""

from repro.nn.calibration import TABLE1_TARGETS
from repro.nn.networks import NETWORK_NAMES


def test_bench_table1(report):
    result = report("table1")
    # The calibrated traces must stay close to the paper's NZ statistic, which is
    # the quantity the whole evaluation rests on.
    for network in NETWORK_NAMES:
        measured = result.metadata[f"fixed16:{network}:nz"]
        paper = TABLE1_TARGETS["fixed16"]["nz"][network]
        assert abs(measured - paper) / paper < 0.35, network
    # The 8-bit quantized representation carries denser codes than 16-bit fixed point.
    for network in NETWORK_NAMES:
        assert (
            result.metadata[f"quant8:{network}:all"]
            > result.metadata[f"fixed16:{network}:all"]
        )
