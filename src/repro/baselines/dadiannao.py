"""DaDianNao (DaDN) — the bit-parallel baseline accelerator.

DaDN (Chen et al., MICRO 2014) is the baseline every design in the paper is
normalized against.  Each of its 16 tiles multiplies one broadcast neuron brick
(16 neurons) with 16 synapse bricks (one per filter lane) and reduces the 256
products through 16 adder trees, producing 16 partial output neurons per tile
per cycle.  Performance is therefore independent of the neuron values: every
brick position of every window costs exactly one cycle per filter pass.

Two models are provided:

* :class:`DaDianNaoModel` — the closed-form cycle/term model used by the
  evaluation harness.
* :class:`DaDianNaoFunctional` — a functional tile model that walks bricks and
  adder trees explicitly and must match the NumPy reference convolution exactly
  (used by the test suite to validate the shared tiling substrate).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.config import ChipConfig, DEFAULT_CHIP
from repro.arch.memory import AccessCounters
from repro.arch.tiling import brick_positions, extract_brick, window_coordinates
from repro.nn.layers import BRICK_SIZE, ConvLayerSpec
from repro.nn.networks import Network
from repro.nn.reference import check_shapes, pad_input

__all__ = ["DaDianNaoModel", "DaDianNaoFunctional"]


@dataclass(frozen=True)
class DaDianNaoModel:
    """Closed-form cycle and term-count model of the DaDN chip."""

    chip: ChipConfig = DEFAULT_CHIP

    @property
    def name(self) -> str:
        return "DaDN"

    def layer_cycles(self, layer: ConvLayerSpec) -> int:
        """Cycles to process one convolutional layer.

        One cycle per (window, brick position) pair per filter pass: the whole
        chip works on a single window at a time, with all 256 filter lanes in
        parallel.
        """
        passes = layer.filter_passes(self.chip.filters_per_cycle)
        return passes * layer.num_windows * layer.bricks_per_window

    def layer_terms(self, layer: ConvLayerSpec, storage_bits: int | None = None) -> int:
        """Single-bit terms (shift-and-add additions) the layer costs on DaDN.

        The motivation study (Figures 2 and 3) accounts each bit-parallel
        multiplication as ``storage_bits`` terms.
        """
        bits = storage_bits if storage_bits is not None else self.chip.storage_bits
        return layer.macs * bits

    def network_cycles(self, network: Network) -> int:
        """Cycles summed over all convolutional layers."""
        return sum(self.layer_cycles(layer) for layer in network.layers)

    def layer_accesses(self, layer: ConvLayerSpec) -> AccessCounters:
        """Memory access counts for the energy model."""
        passes = layer.filter_passes(self.chip.filters_per_cycle)
        return AccessCounters(
            nm_reads=layer.num_windows * layer.bricks_per_window,
            nm_writes=layer.output_neurons // BRICK_SIZE + 1,
            sb_reads=passes * layer.num_windows * layer.bricks_per_window,
            nbin_reads=passes * layer.num_windows * layer.bricks_per_window,
            nbout_writes=layer.output_neurons // BRICK_SIZE + 1,
        )


@dataclass
class DaDianNaoFunctional:
    """Functional model of a DaDN tile group.

    Walks the same brick traversal the real tile uses (synapse lanes × filter
    lanes, adder tree per filter) and accumulates partial output neurons.  The
    result must equal :func:`repro.nn.reference.conv2d_reference` bit for bit.
    """

    chip: ChipConfig = field(default_factory=lambda: DEFAULT_CHIP)

    def compute_layer(
        self, layer: ConvLayerSpec, neurons: np.ndarray, synapses: np.ndarray
    ) -> np.ndarray:
        """Compute the layer's output neurons ``[N, Oy, Ox]``."""
        check_shapes(layer, neurons, synapses)
        padded = pad_input(np.asarray(neurons, dtype=np.int64), layer.padding)
        weights = np.asarray(synapses, dtype=np.int64)
        out = np.zeros(
            (layer.num_filters, layer.output_height, layer.output_width), dtype=np.int64
        )
        positions = brick_positions(layer)
        for oy, ox in window_coordinates(layer):
            # NBout accumulators for this window, one per filter.
            accumulators = np.zeros(layer.num_filters, dtype=np.int64)
            for position in positions:
                neuron_brick = extract_brick(padded, layer, oy, ox, position)
                start = position.channel_brick * BRICK_SIZE
                stop = min(start + BRICK_SIZE, layer.input_channels)
                # Each filter lane multiplies its synapse brick with the broadcast
                # neuron brick and reduces through its adder tree.
                synapse_bricks = np.zeros((layer.num_filters, BRICK_SIZE), dtype=np.int64)
                synapse_bricks[:, : stop - start] = weights[
                    :, start:stop, position.fy, position.fx
                ]
                accumulators += synapse_bricks @ neuron_brick
            out[:, oy, ox] = accumulators
        return out
