"""Essential-bit content of the neuron streams (Table I of the paper).

For each network and storage representation the statistic is the average
fraction of non-zero bits per neuron, weighted by how often each layer's
neurons enter the datapath (the neuron stream length), reported both over all
neurons ("All") and over non-zero neurons only ("NZ").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.calibration import TABLE1_TARGETS, calibrated_trace, storage_bits_for
from repro.nn.networks import NETWORK_NAMES, get_network
from repro.nn.traces import NetworkTrace
from repro.numerics.fixedpoint import popcount

__all__ = ["NetworkBitContent", "measure_trace", "essential_bit_table"]


@dataclass(frozen=True)
class NetworkBitContent:
    """Essential-bit statistics of one network under one representation."""

    network: str
    representation: str
    all_fraction: float
    nonzero_fraction: float
    paper_all_fraction: float | None
    paper_nonzero_fraction: float | None


def measure_trace(trace: NetworkTrace, samples_per_layer: int = 20000) -> tuple[float, float]:
    """Stream-weighted (All, NZ) essential-bit fractions of a trace."""
    if samples_per_layer < 1:
        raise ValueError("samples_per_layer must be positive")
    bits = trace.storage_bits
    weights = trace.stream_weights()
    all_fractions = np.empty(trace.network.num_layers)
    nz_fractions = np.empty(trace.network.num_layers)
    nz_weights = np.empty(trace.network.num_layers)
    for index in range(trace.network.num_layers):
        values = trace.sample_layer_values(index, samples_per_layer)
        counts = popcount(values, bits=bits)
        all_fractions[index] = counts.mean() / bits
        nonzero = counts[values != 0]
        nz_fractions[index] = (nonzero.mean() / bits) if nonzero.size else 0.0
        nz_weights[index] = weights[index] * (np.count_nonzero(values) / values.size)
    all_fraction = float(np.average(all_fractions, weights=weights))
    if nz_weights.sum() > 0:
        nz_fraction = float(np.average(nz_fractions, weights=nz_weights))
    else:
        nz_fraction = 0.0
    return all_fraction, nz_fraction


def essential_bit_table(
    representation: str = "fixed16",
    networks: tuple[str, ...] | None = None,
    samples_per_layer: int = 20000,
    seed: int = 0,
) -> list[NetworkBitContent]:
    """Measure Table I for the requested networks and representation."""
    storage_bits_for(representation)  # validates the name
    names = networks if networks is not None else NETWORK_NAMES
    targets = TABLE1_TARGETS.get(representation, {"all": {}, "nz": {}})
    results = []
    for name in names:
        network = get_network(name)
        trace = calibrated_trace(network, representation=representation, seed=seed)
        all_fraction, nz_fraction = measure_trace(trace, samples_per_layer=samples_per_layer)
        results.append(
            NetworkBitContent(
                network=network.name,
                representation=representation,
                all_fraction=all_fraction,
                nonzero_fraction=nz_fraction,
                paper_all_fraction=targets["all"].get(network.name),
                paper_nonzero_fraction=targets["nz"].get(network.name),
            )
        )
    return results
