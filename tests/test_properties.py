"""Property-based tests (hypothesis) for the core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernels import batched_drain_cycles, pack_drain_masks
from repro.core.pip import PragmaticInnerProductUnit
from repro.core.scheduling import (
    _reference_drain_cycles,
    column_drain_cycles,
    column_sync_cycles,
    pallet_sync_cycles,
)
from repro.nn.precision import LayerPrecision
from repro.numerics.encoding import schedule_cycle_count, serial_term_schedule, two_stage_decompose
from repro.numerics.fixedpoint import FixedPointFormat, bit_matrix, popcount
from repro.numerics.oneffsets import OneffsetStream, decode_oneffsets, encode_oneffsets
from repro.numerics.quantized import QuantizationParams

settings.register_profile("repro", max_examples=60, deadline=None)
settings.load_profile("repro")

uint16 = st.integers(min_value=0, max_value=2**16 - 1)
first_stage = st.integers(min_value=0, max_value=4)


class TestOneffsetProperties:
    @given(uint16)
    def test_encode_decode_roundtrip(self, value):
        assert decode_oneffsets(encode_oneffsets(value)) == value

    @given(uint16)
    def test_oneffset_count_equals_popcount(self, value):
        assert len(encode_oneffsets(value)) == bin(value).count("1")

    @given(uint16)
    def test_stream_cycles_are_max_of_popcount_and_one(self, value):
        stream = OneffsetStream.from_value(value, bits=16)
        assert stream.cycles == max(1, bin(value).count("1"))

    @given(st.lists(uint16, min_size=1, max_size=8), first_stage)
    def test_schedule_consumes_all_oneffsets_exactly_once(self, values, bits):
        oneffsets = [list(encode_oneffsets(v)) for v in values]
        schedule = serial_term_schedule([list(lst) for lst in oneffsets], bits)
        consumed = [[] for _ in values]
        for cycle in schedule:
            for lane, offset in enumerate(cycle.consumed):
                if offset is not None:
                    consumed[lane].append(offset)
        assert consumed == [list(lst) for lst in oneffsets]

    @given(st.lists(uint16, min_size=1, max_size=8))
    def test_wider_first_stage_never_needs_more_cycles(self, values):
        oneffsets = [list(encode_oneffsets(v)) for v in values]
        counts = [schedule_cycle_count(oneffsets, bits) for bits in range(5)]
        assert counts == sorted(counts, reverse=True)

    @given(st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=16), first_stage)
    def test_two_stage_decomposition_reconstructs_offsets(self, offsets, bits):
        common, deltas = two_stage_decompose(offsets, bits)
        for offset, delta in zip(offsets, deltas):
            if delta is not None:
                assert common + delta == offset
                assert 0 <= delta < (1 << bits)


class TestNumericFormatProperties:
    @given(st.floats(min_value=-1e4, max_value=1e4, allow_nan=False), st.integers(0, 8))
    def test_fixed_point_roundtrip_error_bounded(self, value, frac_bits):
        fmt = FixedPointFormat(total_bits=24, frac_bits=frac_bits)
        recovered = float(fmt.dequantize(fmt.quantize(value)))
        assert abs(recovered - value) <= fmt.scale / 2 + 1e-9

    @given(
        st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
        st.floats(min_value=0.5, max_value=200.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_quantization_roundtrip_error_bounded(self, low, span, position):
        params = QuantizationParams(min_val=low, max_val=low + span)
        value = low + position * span
        recovered = float(params.dequantize(params.quantize(np.array([value])))[0])
        assert abs(recovered - value) <= params.scale / 2 + 1e-9

    @given(st.lists(uint16, min_size=1, max_size=32), st.integers(0, 15), st.integers(0, 15))
    def test_precision_trim_is_idempotent_and_reducing(self, values, a, b):
        lsb, msb = min(a, b), max(a, b)
        precision = LayerPrecision(msb=msb, lsb=lsb)
        arr = np.array(values)
        trimmed = precision.trim(arr)
        assert np.all(popcount(trimmed, 16) <= popcount(arr, 16))
        np.testing.assert_array_equal(precision.trim(trimmed), trimmed)


class TestSchedulingProperties:
    @given(
        st.lists(st.lists(uint16, min_size=4, max_size=4), min_size=1, max_size=6),
        first_stage,
    )
    def test_vectorized_drain_matches_reference_scheduler(self, columns, bits):
        values = np.array(columns)
        planes = bit_matrix(values, bits=16)
        vectorized = np.atleast_1d(column_drain_cycles(planes, bits))
        for index, column in enumerate(columns):
            oneffsets = [list(encode_oneffsets(v)) for v in column]
            assert max(1, int(vectorized[index])) == schedule_cycle_count(oneffsets, bits)

    @given(
        st.integers(1, 3),
        st.integers(1, 4),
        st.integers(0, 4),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_sync_scheme_bounds(self, pallets, steps, bits, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 2**16, size=(pallets, steps, 4, 4))
        values[rng.random(values.shape) < 0.6] = 0
        pallet = pallet_sync_cycles(values, bits, 16)
        ideal = column_sync_cycles(values, bits, 16, ssr_count=None)
        one_reg = column_sync_cycles(values, bits, 16, ssr_count=1)
        # Pallet-synchronized execution is never faster than ideal column sync
        # (modulo the one-cycle-per-step SB port skew), and limited SSRs sit in
        # between the two.
        assert np.all(ideal <= pallet + steps)
        assert np.all(one_reg + 1e-9 >= ideal)
        assert np.all(pallet >= steps)
        assert np.all(pallet <= steps * 16)


columns_strategy = st.lists(
    st.lists(uint16, min_size=1, max_size=16), min_size=1, max_size=8
).map(lambda cols: [col + [0] * (len(max(cols, key=len)) - len(col)) for col in cols])


class TestDrainKernelProperties:
    """Invariants of the batched drain kernel (repro.core.kernels)."""

    @given(columns_strategy, first_stage)
    def test_batched_kernel_matches_reference_loop(self, columns, bits):
        values = np.array(columns)
        batched = batched_drain_cycles(pack_drain_masks(values, 16), (1 << bits,))[0]
        reference = _reference_drain_cycles(bit_matrix(values, bits=16), bits)
        np.testing.assert_array_equal(batched, reference)

    @given(columns_strategy)
    def test_full_reach_equals_busiest_lane_popcount(self, columns):
        values = np.array(columns)
        busiest = popcount(values, 16).max(axis=-1)
        full = batched_drain_cycles(pack_drain_masks(values, 16), (16,))[0]
        np.testing.assert_array_equal(full, busiest)

    @given(columns_strategy)
    def test_cycles_monotone_non_increasing_in_first_stage_bits(self, columns):
        masks = pack_drain_masks(np.array(columns), 16)
        ladder = batched_drain_cycles(masks, [1 << bits for bits in range(5)])
        for narrow, wide in zip(ladder, ladder[1:]):
            assert np.all(wide <= narrow)

    @given(columns_strategy, first_stage, st.integers(min_value=0, max_value=10**6))
    def test_lane_permutation_invariance(self, columns, bits, seed):
        values = np.array(columns)
        permuted = values[:, np.random.default_rng(seed).permutation(values.shape[1])]
        np.testing.assert_array_equal(
            batched_drain_cycles(pack_drain_masks(values, 16), (1 << bits,)),
            batched_drain_cycles(pack_drain_masks(permuted, 16), (1 << bits,)),
        )

    @given(st.integers(1, 16), st.integers(1, 8), first_stage)
    def test_zero_columns_cost_zero_cycles(self, lanes, columns, bits):
        masks = np.zeros((columns, lanes), dtype=np.uint16)
        assert not batched_drain_cycles(masks, (1 << bits,)).any()


class TestPipProperties:
    @given(
        st.lists(st.integers(min_value=-255, max_value=255), min_size=4, max_size=4),
        st.lists(uint16, min_size=4, max_size=4),
        first_stage,
    )
    def test_pip_matches_dot_product(self, synapses, neurons, bits):
        pip = PragmaticInnerProductUnit(first_stage_bits=bits)
        partial, cycles = pip.compute(np.array(synapses), np.array(neurons))
        assert partial == int(np.dot(synapses, neurons))
        assert 1 <= cycles
