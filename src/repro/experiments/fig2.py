"""Figure 2 — convolutional layer computational demands, 16-bit fixed point."""

from __future__ import annotations

from repro.analysis.potential import FIG2_ENGINES, fig2_table
from repro.analysis.speedup import geometric_mean
from repro.analysis.tables import format_percent
from repro.experiments.base import ExperimentResult, Preset, get_preset

__all__ = ["run", "PAPER_AVERAGES"]

#: Average relative term counts the paper reports in Section II-B.
PAPER_AVERAGES: dict[str, float] = {
    "ZN": 0.39,
    "CVN": 0.63,
    "Stripes": 0.53,
    "PRA-fp16": 0.10,
    "PRA-red": 0.08,
}


def run(preset: str | Preset = "fast", seed: int = 0) -> ExperimentResult:
    """Reproduce Figure 2: relative number of terms vs the DaDN baseline."""
    config = get_preset(preset)
    entries = fig2_table(
        networks=config.networks, samples_per_layer=config.samples_per_layer, seed=seed
    )
    headers = ["network", *FIG2_ENGINES]
    rows: list[list[object]] = []
    metadata: dict[str, float] = {}
    for entry in entries:
        rows.append(
            [entry.network]
            + [format_percent(entry.relative(engine)) for engine in FIG2_ENGINES]
        )
        for engine in FIG2_ENGINES:
            metadata[f"{entry.network}:{engine}"] = entry.relative(engine)
    averages = {
        engine: geometric_mean(entry.relative(engine) for entry in entries)
        for engine in FIG2_ENGINES
    }
    rows.append(["geomean", *[format_percent(averages[engine]) for engine in FIG2_ENGINES]])
    for engine, value in averages.items():
        metadata[f"geomean:{engine}"] = value
    notes = "Paper averages (Section II-B): " + ", ".join(
        f"{engine} {format_percent(value)}" for engine, value in PAPER_AVERAGES.items()
    )
    return ExperimentResult(
        experiment="fig2",
        title="Figure 2: relative term counts, 16-bit fixed-point representation (lower is better)",
        headers=headers,
        rows=rows,
        notes=notes,
        metadata=metadata,
    )
