"""Conformance suite for every registered oneffset encoding.

One parametrized battery (modeled on ``tests/test_runtime_backends.py``) runs
against all registry entries, pinning the :class:`Encoding` contract the core
and runtime layers rely on: round-trip decode, term-count vs generator
agreement, vectorized vs scalar equality, the max-terms/max-position bounds,
and pairwise-distinct term positions (the invariant that lets one mask bit
carry one term).  Encoding-specific behaviour (the positional↔pack_drain_masks
identity, CSD delegation, HESE pairing, the binary degenerate case) gets
targeted classes below the shared battery, followed by the end-to-end
threading checks: config validation, sweep equality, cache keys, variants.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.arch.tiling import SamplingConfig
from repro.core.accelerator import PragmaticAccelerator, PragmaticConfig
from repro.core.kernels import pack_drain_masks
from repro.core.oneffset_generator import OneffsetGenerator
from repro.core.scheduling import encoded_drain_masks
from repro.core.sweep import sweep_network
from repro.core.variants import encoding_variant, encoding_variants
from repro.numerics.csd import csd_term_counts, encode_csd
from repro.numerics.encodings import (
    DEFAULT_ENCODING,
    Encoding,
    encoding_names,
    get_encoding,
    register_encoding,
)
from repro.numerics.fixedpoint import popcount
from repro.runtime import TraceSpec
from repro.runtime.fingerprint import simulation_key

ENCODINGS = encoding_names()

#: Bit widths the battery sweeps; 8 is exercised exhaustively.
WIDTHS = (8, 16)


def sample_values(bits: int) -> np.ndarray:
    """Every 8-bit magnitude, or a dense random sample for wider widths."""
    if bits <= 8:
        return np.arange(1 << bits, dtype=np.int64)
    rng = np.random.default_rng(bits)
    values = rng.integers(0, 1 << bits, size=4096, dtype=np.int64)
    # Always include the boundary patterns.
    values[:4] = [0, 1, (1 << bits) - 1, (1 << (bits - 1)) + 1]
    return values


@pytest.mark.parametrize("name", ENCODINGS)
class TestEncodingConformance:
    @pytest.mark.parametrize("bits", WIDTHS)
    def test_round_trip_decode(self, name, bits):
        encoding = get_encoding(name)
        for value in sample_values(bits):
            terms = encoding.terms(int(value), bits=bits)
            assert encoding.decode(terms) == encoding.represent(int(value), bits=bits)

    @pytest.mark.parametrize("bits", WIDTHS)
    def test_vectorized_masks_equal_scalar_terms(self, name, bits):
        encoding = get_encoding(name)
        values = sample_values(bits)
        masks = encoding.term_masks(values, bits=bits)
        assert masks.shape == values.shape
        for index, value in enumerate(values):
            scalar_mask = 0
            for _, position in encoding.terms(int(value), bits=bits):
                scalar_mask |= 1 << position
            assert scalar_mask == int(masks[index])

    @pytest.mark.parametrize("bits", WIDTHS)
    def test_term_counts_agree_with_generator(self, name, bits):
        encoding = get_encoding(name)
        values = sample_values(bits)
        counts = encoding.term_counts(values, bits=bits)
        for index, value in enumerate(values):
            assert int(counts[index]) == len(encoding.terms(int(value), bits=bits))

    @pytest.mark.parametrize("bits", WIDTHS)
    def test_max_terms_and_position_bounds(self, name, bits):
        encoding = get_encoding(name)
        for value in sample_values(bits):
            terms = encoding.terms(int(value), bits=bits)
            assert len(terms) <= encoding.max_terms(bits)
            for sign, position in terms:
                assert sign in (-1, 1)
                assert 0 <= position <= encoding.max_position(bits)

    @pytest.mark.parametrize("bits", WIDTHS)
    def test_term_positions_are_distinct(self, name, bits):
        encoding = get_encoding(name)
        for value in sample_values(bits):
            positions = [p for _, p in encoding.terms(int(value), bits=bits)]
            assert len(positions) == len(set(positions))
            assert positions == sorted(positions)

    def test_signed_terms_sum_to_representation(self, name):
        encoding = get_encoding(name)
        for value in sample_values(8):
            total = sum(
                sign << position
                for sign, position in encoding.terms(int(value), bits=8)
            )
            assert total == encoding.represent(int(value), bits=8)

    def test_values_must_fit_the_width(self, name):
        encoding = get_encoding(name)
        with pytest.raises(ValueError):
            encoding.terms(1 << 8, bits=8)
        with pytest.raises(ValueError):
            encoding.term_masks(np.array([1 << 8]), bits=8)

    def test_mask_dtype_covers_max_position(self, name):
        encoding = get_encoding(name)
        masks = encoding.term_masks(np.array([0]), bits=16)
        width = 16 if masks.dtype == np.uint16 else 32
        assert encoding.max_position(16) < width


class TestRegistry:
    def test_all_four_encodings_registered(self):
        assert set(ENCODINGS) >= {"positional", "csd", "hese", "binary"}
        assert ENCODINGS[0] == DEFAULT_ENCODING == "positional"

    def test_unknown_encoding_rejected(self):
        with pytest.raises(ValueError, match="unknown encoding"):
            get_encoding("gray-code")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_encoding(get_encoding("csd"))

    def test_unnamed_encoding_rejected(self):
        class Nameless(Encoding):
            def terms(self, value, bits=16):  # pragma: no cover - never called
                return ()

            def term_masks(self, values, bits=16):  # pragma: no cover
                return np.zeros(0, dtype=np.uint16)

        with pytest.raises(ValueError, match="non-empty name"):
            register_encoding(Nameless())


class TestPositionalIdentity:
    """positional is the pre-registry behaviour, bit for bit."""

    def test_masks_equal_pack_drain_masks(self):
        values = sample_values(16)
        np.testing.assert_array_equal(
            get_encoding("positional").term_masks(values, bits=16),
            pack_drain_masks(values, 16),
        )

    def test_counts_equal_popcount(self):
        values = sample_values(16)
        np.testing.assert_array_equal(
            get_encoding("positional").term_counts(values, bits=16),
            popcount(values, bits=16),
        )

    def test_encoded_drain_masks_default_routes_through_packing(self):
        values = np.array([[3, 7], [0, 255]])
        np.testing.assert_array_equal(
            encoded_drain_masks(values, 16), pack_drain_masks(values, 16)
        )


class TestCsdDelegation:
    def test_terms_are_encode_csd(self):
        encoding = get_encoding("csd")
        for value in sample_values(8):
            assert encoding.terms(int(value), bits=8) == encode_csd(int(value), bits=8)

    def test_counts_are_csd_term_counts(self):
        values = sample_values(16)
        np.testing.assert_array_equal(
            get_encoding("csd").term_counts(values, bits=16),
            csd_term_counts(values, bits=16),
        )


class TestHesePairing:
    def test_runs_pair_into_two_terms(self):
        encoding = get_encoding("hese")
        # 0b0111_1110 = 126: one run [1, 6] -> (-2^1, +2^7).
        assert encoding.terms(126, bits=8) == ((-1, 1), (1, 7))
        # 0b110111 = 55: runs [0,2] and [4,5] -> 4 terms.
        assert encoding.terms(55, bits=8) == ((-1, 0), (1, 3), (-1, 4), (1, 6))
        # Isolated bits stay positive single terms.
        assert encoding.terms(5, bits=8) == ((1, 0), (1, 2))

    def test_never_more_terms_than_positional(self):
        values = sample_values(16)
        hese = get_encoding("hese").term_counts(values, bits=16)
        positional = get_encoding("positional").term_counts(values, bits=16)
        assert (hese <= positional).all()


class TestBinaryDegenerate:
    def test_lossy_representation(self):
        encoding = get_encoding("binary")
        assert not encoding.lossless
        assert encoding.represent(0, bits=16) == 0
        assert encoding.represent(1, bits=16) == 1
        assert encoding.represent(40000, bits=16) == 1

    def test_single_term_per_nonzero(self):
        values = sample_values(16)
        counts = get_encoding("binary").term_counts(values, bits=16)
        np.testing.assert_array_equal(counts, (values != 0).astype(np.int64))


class TestConfigThreading:
    def test_config_validates_encoding(self):
        with pytest.raises(ValueError, match="encoding"):
            PragmaticConfig(encoding="gray-code")

    def test_name_carries_non_default_encoding(self):
        assert PragmaticConfig().name == "PRA-2b"
        assert PragmaticConfig(encoding="csd").name == "PRA-2b-csd"

    def test_encoding_variants_cover_the_registry(self):
        variants = encoding_variants()
        assert tuple(variants) == ENCODINGS
        for name, config in variants.items():
            assert config.encoding == name
        assert encoding_variant("hese").name == "PRA-2b-hese"

    def test_simulation_keys_differ_per_encoding(self):
        spec = TraceSpec(network="alexnet")
        sampling = SamplingConfig(max_pallets=2)
        keys = {
            name: simulation_key(
                spec, sampling, PragmaticConfig(encoding=name, label=name)
            )
            for name in ENCODINGS
        }
        assert len(set(keys.values())) == len(ENCODINGS)

    def test_positional_key_has_no_encoding_component(self):
        """The canonical form of a positional config predates the encoding
        axis: stripping the field keeps warm caches warm across the refactor."""
        spec = TraceSpec(network="alexnet")
        sampling = SamplingConfig(max_pallets=2)
        config = PragmaticConfig()
        without_field = dataclasses.replace(config, encoding="positional")
        assert simulation_key(spec, sampling, config) == simulation_key(
            spec, sampling, without_field
        )
        # A label never changes the key either (pre-existing contract).
        assert simulation_key(spec, sampling, config) == simulation_key(
            spec, sampling, dataclasses.replace(config, label="renamed")
        )


class TestGeneratorEncodings:
    def test_positional_lane_states_unchanged(self):
        generator = OneffsetGenerator(storage_bits=16)
        states = generator.lane_states(np.array([5, -3, 0]))
        assert [state.pending for state in states] == [[0, 2], [0, 1], []]
        assert [state.sign for state in states] == [1, -1, 1]
        assert [state.term_signs for state in states] == [[1, 1], [1, 1], []]

    def test_signed_encoding_lane_states(self):
        generator = OneffsetGenerator(storage_bits=16, encoding="csd")
        (state,) = generator.lane_states(np.array([7]))  # 7 = -1 + 8
        assert state.pending == [0, 3]
        assert state.term_signs == [-1, 1]
        offset, sign, end, null = state.next_term()
        assert (offset, sign, end, null) == (0, -1, False, False)
        offset, sign, end, null = state.next_term()
        assert (offset, sign, end, null) == (3, 1, True, False)

    def test_stream_lengths_follow_the_encoding(self):
        values = np.array([126])  # six positional bits, two CSD/HESE terms
        assert OneffsetGenerator().max_stream_length(values) == 6
        assert OneffsetGenerator(encoding="csd").max_stream_length(values) == 2
        assert OneffsetGenerator(encoding="hese").max_stream_length(values) == 2
        assert OneffsetGenerator(encoding="binary").max_stream_length(values) == 1

    def test_unknown_encoding_rejected(self):
        with pytest.raises(ValueError, match="unknown encoding"):
            OneffsetGenerator(encoding="gray-code")


def _tiny_trace():
    from tests.test_core_kernels import random_trace

    return random_trace(17)


class TestSweepEncodingEquality:
    """sweep_network vs PragmaticAccelerator under every encoding: exact."""

    @pytest.mark.parametrize("name", ENCODINGS)
    def test_sweep_bit_identical_to_accelerator(self, name):
        trace = _tiny_trace()
        sampling = SamplingConfig(max_pallets=2, seed=5)
        config = encoding_variant(name)
        results = sweep_network(trace, {name: config}, sampling=sampling)
        golden = PragmaticAccelerator(config).simulate_network(trace, sampling=sampling)
        assert results[name].cycles == golden.cycles
        for swept, reference in zip(results[name].layers, golden.layers):
            assert swept.cycles == reference.cycles
            assert swept.terms == reference.terms

    def test_mixed_encoding_sweep_groups_share_packing(self):
        from repro.core.sweep import SweepStats

        trace = _tiny_trace()
        sampling = SamplingConfig(max_pallets=2, seed=5)
        configs = {
            name: encoding_variant(name) for name in ("positional", "csd")
        }
        # Two first-stage widths per encoding -> 4 configs, 2 packs per layer
        # per encoding but one kernel call per (trimming, encoding) pair.
        configs["positional-3b"] = encoding_variant("positional", first_stage_bits=3)
        configs["csd-3b"] = encoding_variant("csd", first_stage_bits=3)
        stats = SweepStats()
        results = sweep_network(trace, configs, sampling=sampling, stats=stats)
        assert set(results) == set(configs)
        layers = trace.network.num_layers
        assert stats.drain_groups_computed == 4 * layers
