"""Tests for the runtime engine, job planning, and the scheduler.

The scheduler contract: a parallel run is numerically identical to a serial
run, warm-cache runs recompute nothing, and runs degrade gracefully when
parallelism or caching is unavailable.
"""

import pytest

from repro.arch.tiling import SamplingConfig
from repro.core.variants import pallet_variant, single_stage_variant
from repro.experiments.base import ExperimentResult, Preset
from repro.runtime import (
    RuntimeSession,
    SimulationRequest,
    StatisticsRequest,
    TraceSpec,
    analyze,
    build_plan,
    run_experiments,
    simulate,
    use_session,
)
from repro.runtime.cache import ResultCache

#: Two-network preset keeping the scheduler tests fast.
SMOKE = "smoke"
SIM_EXPERIMENTS = ["fig9", "fig11", "table5"]


def tiny_request(config_pairs, max_pallets=1, seed=0):
    return SimulationRequest(
        trace=TraceSpec(network="alexnet", seed=seed),
        configs=tuple(config_pairs),
        sampling=SamplingConfig(max_pallets=max_pallets, seed=0),
    )


class TestEngine:
    def test_hit_restores_the_requesting_label(self):
        # pallet_variant(4) and PRAsingle share one cache entry but must each
        # come back under their own display name.
        session = RuntimeSession()
        with use_session(session):
            first = simulate(tiny_request([("4-bit", pallet_variant(4))]))
            second = simulate(tiny_request([("single", single_stage_variant())]))
        assert session.sweep_stats.configs_simulated == 1  # second was a hit
        assert first["4-bit"].accelerator == "PRA-4b"
        assert second["single"].accelerator == "PRA-single"
        assert first["4-bit"].layers == second["single"].layers

    def test_partial_miss_only_simulates_the_gap(self):
        session = RuntimeSession()
        simulate(tiny_request([("a", pallet_variant(2))]), session=session)
        simulate(
            tiny_request([("a", pallet_variant(2)), ("b", pallet_variant(3))]),
            session=session,
        )
        assert session.sweep_stats.configs_simulated == 2
        assert session.cache.stats.hits == 1

    def test_sampling_change_invalidates(self):
        session = RuntimeSession()
        simulate(tiny_request([("a", pallet_variant(2))], max_pallets=1), session=session)
        simulate(tiny_request([("a", pallet_variant(2))], max_pallets=2), session=session)
        assert session.sweep_stats.configs_simulated == 2
        assert session.cache.stats.hits == 0


class TestPlanning:
    def test_shared_design_points_are_deduplicated(self):
        session = RuntimeSession()
        plan = build_plan(["fig9", "fig11"], SMOKE, 0, session)
        # fig11's PRA-4b and PRA-2b ride on fig9's jobs; only PRA-2b-1R is new,
        # merged into the same per-network (trace, sampling) group.
        assert len(plan.simulations) == 2  # one group per smoke network
        units = sum(len(job.request.configs) for job in plan.simulations)
        assert units == 2 * (5 + 1)
        for job in plan.experiments:
            assert job.deps  # both experiments depend on the shared groups

    def test_cached_units_are_pruned_from_the_plan(self, tmp_path):
        run_experiments(["fig9"], preset=SMOKE, cache_dir=tmp_path)
        session = RuntimeSession(cache=ResultCache(directory=tmp_path))
        plan = build_plan(["fig9", "fig11"], SMOKE, 0, session)
        units = sum(len(job.request.configs) for job in plan.simulations)
        assert units == 2  # only PRA-2b-1R per network remains
        # fig9 resolves all 5 design points per network from the cache; fig11's
        # PRA-4b and PRA-2b overlap with them and hit as well.
        assert plan.planned_hits == 2 * 5 + 2 * 2

    def test_experiments_without_plans_have_no_dependencies(self):
        plan = build_plan(["table3"], SMOKE, 0, RuntimeSession())
        assert plan.simulations == []
        assert plan.statistics == []
        assert plan.experiments[0].deps == ()


class TestStatisticsPlanning:
    """fig2/fig3/table1 plan per-network statistics jobs (see docs/runtime.md)."""

    def test_statistics_experiments_declare_jobs(self):
        plan = build_plan(["fig2", "fig3", "table1"], SMOKE, 0, RuntimeSession())
        # smoke = 2 networks: fig2 2 jobs, fig3 2 jobs, table1 2x2 (both reps).
        assert len(plan.statistics) == 8
        assert plan.simulations == []
        for job in plan.experiments:
            assert job.deps
        statistics = {job.request.statistic for job in plan.statistics}
        assert statistics == {"fig2_terms", "fig3_terms", "essential_bits"}

    def test_cached_statistics_are_pruned(self):
        session = RuntimeSession()
        with use_session(session):
            from repro.experiments import fig2

            fig2.run(preset=SMOKE)
        plan = build_plan(["fig2", "fig3"], SMOKE, 0, session)
        assert len(plan.statistics) == 2  # only fig3's passes remain
        assert plan.planned_hits == 2
        # fig2 now has no unmet dependencies; fig3 depends on its own jobs.
        deps = {job.experiment: job.deps for job in plan.experiments}
        assert deps["fig2"] == ()
        assert len(deps["fig3"]) == 2

    def test_analyze_is_cached_and_rejects_unknown_statistics(self):
        session = RuntimeSession()
        request = StatisticsRequest(
            statistic="essential_bits",
            trace=TraceSpec(network="alexnet", representation="quant8"),
            samples_per_layer=500,
        )
        first = analyze(request, session=session)
        second = analyze(request, session=session)
        assert first == second
        assert session.cache.stats.hits == 1
        assert session.cache.stats.stores == 1
        with pytest.raises(KeyError):
            analyze(
                StatisticsRequest(statistic="nope", trace=request.trace),
                session=session,
            )

    def test_statistics_run_through_the_scheduler(self, tmp_path):
        cold = run_experiments(["fig2", "table1"], preset=SMOKE, cache_dir=tmp_path)
        warm = run_experiments(["fig2", "table1"], preset=SMOKE, cache_dir=tmp_path)
        assert cold.statistics_jobs == 6
        assert warm.statistics_jobs == 0
        assert warm.stats.cache.misses == 0
        assert warm.planned_cache_hits == 6
        assert warm.results == cold.results
        assert "statistics jobs: 0" in warm.summary()


class TestRunExperiments:
    def test_serial_run_produces_ordered_results(self):
        report = run_experiments(["table3", "table4"], preset=SMOKE)
        assert list(report.results) == ["table3", "table4"]
        assert all(isinstance(r, ExperimentResult) for r in report.results.values())
        assert report.mode == "serial"

    def test_warm_cache_recomputes_nothing(self, tmp_path):
        cold = run_experiments(SIM_EXPERIMENTS, preset=SMOKE, cache_dir=tmp_path)
        warm = run_experiments(SIM_EXPERIMENTS, preset=SMOKE, cache_dir=tmp_path)
        assert cold.stats.sweep.configs_simulated > 0
        assert warm.stats.sweep.configs_simulated == 0
        assert warm.stats.cache.misses == 0
        assert warm.planned_cache_hits > 0
        assert warm.results == cold.results

    def test_preset_change_invalidates_the_cache(self, tmp_path):
        run_experiments(["fig9"], preset=SMOKE, cache_dir=tmp_path)
        bigger = Preset(name="tiny2", networks=("alexnet",), samples_per_layer=2000, max_pallets=3)
        report = run_experiments(["fig9"], preset=bigger, cache_dir=tmp_path)
        assert report.stats.sweep.configs_simulated > 0

    def test_no_cache_disables_storage(self, tmp_path):
        report = run_experiments(["fig9"], preset=SMOKE, no_cache=True, cache_dir=tmp_path)
        assert report.stats.cache.stores == 0
        assert report.cache_dir is None
        assert list(tmp_path.glob("*.json")) == []

    def test_summary_mentions_the_simulation_counter(self):
        report = run_experiments(["table3"], preset=SMOKE)
        assert "simulated 0 configs" in report.summary()
        assert "== run summary ==" in report.summary()


@pytest.mark.slow
class TestParallelExecution:
    """Process-pool runs; kept small but real (spawned workers)."""

    def test_parallel_equals_serial_with_shared_cache(self, tmp_path):
        serial = run_experiments(
            SIM_EXPERIMENTS, preset=SMOKE, jobs=1, cache_dir=tmp_path / "serial"
        )
        parallel = run_experiments(
            SIM_EXPERIMENTS, preset=SMOKE, jobs=2, cache_dir=tmp_path / "parallel"
        )
        assert parallel.mode in ("parallel", "serial-fallback")
        assert parallel.results == serial.results

    def test_parallel_without_cache_matches_serial(self):
        serial = run_experiments(["table5"], preset=SMOKE, jobs=1, no_cache=True)
        parallel = run_experiments(["table5"], preset=SMOKE, jobs=2, no_cache=True)
        assert parallel.results == serial.results
        assert parallel.simulation_jobs == 0  # degraded to experiment-level jobs

    def test_failing_job_fails_the_run_fast(self, tmp_path):
        # A raising job must propagate without first waiting out (or worse,
        # executing) every sibling future: the pool is shut down with
        # cancel_futures=True.  An unknown network makes every simulation
        # job raise in its worker.
        bad = Preset(
            name="bad",
            networks=("alexnet", "no_such_network"),
            samples_per_layer=200,
            max_pallets=1,
        )
        with pytest.raises(Exception, match="no_such_network"):
            run_experiments(["fig9"], preset=bad, jobs=2, cache_dir=tmp_path)
