"""``python -m repro serve`` — command-line entry of the serving front-end.

Modes:

* ``--stdio`` (default) — speak the line-delimited JSON protocol over
  stdin/stdout until EOF or a ``shutdown`` op.
* ``--tcp HOST:PORT`` — listen for concurrent protocol connections
  (``PORT 0`` picks an ephemeral port, printed on startup).
* ``--selftest`` — start an in-process TCP server and exercise the protocol
  end to end through a real client connection: one full request round-trip,
  one ``stream: true`` request (asserting incremental ``progress`` events
  arrive before the terminal ``done``), and one mid-run cancellation
  (asserting the cooperative checkpoint frees the worker with a terminal
  ``cancelled``).  Exits non-zero on any failure; CI runs this on every
  tier-1 platform.

* ``--worker`` — cluster worker mode (``docs/cluster.md``): a TCP service
  with the registration handshake and internal job ops a
  ``python -m repro cluster`` coordinator drives, storing through the
  multi-process-safe shared cache backend.  Requires an auth token and
  prints a one-line JSON banner (bound host/port/pid) on stdout.

``--workers`` bounds concurrent job execution; ``--cache-dir``/``--no-cache``
select the shared result cache exactly like the batch CLI.  ``--auth-token``
(or ``REPRO_SERVE_TOKEN``) demands a constant-time-compared shared secret
from every TCP connection before anything reaches the queue.  Long-lived
servers can enable automatic background cache GC with ``--gc-interval`` plus
``--gc-max-bytes`` and/or ``--gc-max-age`` (same size/age spellings as the
batch CLI's ``--cache-gc``).  See ``docs/serving.md`` for the protocol and
examples.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys

from repro.experiments.base import parse_age, parse_size
from repro.runtime.session import default_cache_dir, resolve_trace_dir

__all__ = ["main"]


def _parse_endpoint(value: str) -> tuple[str, int]:
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(f"expected HOST:PORT, got {value!r}")
    return host, int(port)


def _parse_interval(value: str) -> float:
    seconds = parse_age(value)
    if seconds <= 0:
        raise argparse.ArgumentTypeError("--gc-interval must be positive")
    return seconds


#: Small workload for the selftest's streamed/cancelled requests.
_SELFTEST_OVERRIDES = {"networks": ["alexnet"], "max_pallets": 2, "samples_per_layer": 1500}


async def _selftest_stream(client) -> int:
    """A ``stream: true`` request must emit progress before its terminal done."""
    events = []
    async for event in client.stream_experiment("fig9", overrides=_SELFTEST_OVERRIDES):
        events.append(event)
    names = [event.get("event") for event in events]
    if names[-1] != "done":
        print(f"selftest: streamed request ended with {names[-1]!r}", file=sys.stderr)
        return 1
    progress = [event for event in events if event.get("event") == "progress"]
    if not progress:
        print("selftest: streamed request produced no progress events", file=sys.stderr)
        return 1
    networks = {
        event["progress"].get("network")
        for event in progress
        if event["progress"].get("stage") == "network"
    }
    if "alexnet" not in networks:
        print("selftest: no per-network progress event observed", file=sys.stderr)
        return 1
    print(
        f"selftest ok: streamed fig9 emitted {len(progress)} progress event(s) "
        f"across networks {sorted(networks)} before done"
    )
    return 0


async def _selftest_cancel(client) -> int:
    """Cancelling mid-run must interrupt the sweep at a checkpoint."""
    cancelled = False
    terminal = None
    async for event in client.stream_run_all(preset="fast", overrides=_SELFTEST_OVERRIDES):
        name = event.get("event")
        if name == "progress" and not cancelled:
            cancelled = True
            await client.cancel(event["ticket"])
        if name in ("done", "failed", "cancelled", "error"):
            terminal = name
    if not cancelled:
        print("selftest: run_all produced no progress to cancel on", file=sys.stderr)
        return 1
    if terminal != "cancelled":
        print(f"selftest: expected terminal cancelled, got {terminal!r}", file=sys.stderr)
        return 1
    # The cooperative cancellation must actually free the worker: a follow-up
    # request on the same (single-worker-capable) server completes promptly.
    follow_up = await asyncio.wait_for(
        client.run_experiment("table3", preset="smoke"), timeout=60
    )
    if not follow_up.ok:
        print(f"selftest: post-cancel request failed: {follow_up.error}", file=sys.stderr)
        return 1
    print("selftest ok: mid-run cancellation freed the worker (terminal cancelled)")
    return 0


async def _selftest(workers: int) -> int:
    """Protocol round-trip + streamed request + mid-run cancellation."""
    from repro.serve.client import ServeClient
    from repro.serve.service import ExperimentService

    service = ExperimentService(cache_dir=None, workers=workers)
    async with service:
        server = await service.serve_tcp("127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        async with server:
            client = await ServeClient.connect("127.0.0.1", port)
            try:
                if not await client.ping():
                    print("selftest: ping failed", file=sys.stderr)
                    return 1
                listing = await client.list_experiments()
                names = [entry["name"] for entry in listing.get("experiments", [])]
                if "fig9" not in names:
                    print("selftest: experiment listing incomplete", file=sys.stderr)
                    return 1
                response = await client.run_experiment("table3", preset="smoke")
                if not response.ok or not response.result:
                    print(f"selftest: request failed: {response.error}", file=sys.stderr)
                    return 1
                rows = response.result["experiment"]["rows"]
                stats = await client.stats()
                completed = stats["queue"]["completed"]
                print(
                    "selftest ok: table3 --preset smoke round-trip "
                    f"({len(rows)} rows, {completed} job(s) completed, "
                    f"stats: {response.stats.summary()})"
                )
                status = await _selftest_stream(client)
                if status:
                    return status
                return await _selftest_cancel(client)
            finally:
                await client.close()


async def _run_worker(args) -> int:
    """Cluster worker mode: a WorkerService plus a machine-readable banner.

    The coordinator spawns this subprocess, reads one JSON line from stdout
    to learn the bound endpoint, then connects, authenticates and registers
    (see ``docs/cluster.md``).
    """
    from repro.cluster.worker import WorkerService, worker_session

    cache_dir = args.cache_dir or default_cache_dir()
    try:
        service = WorkerService(
            session=worker_session(
                cache_dir,
                trace_dir=args.trace_dir,
                no_trace_cache=args.no_trace_cache,
                cache_backend=args.cache_backend,
            ),
            workers=args.workers,
            auth_token=args.auth_token,
            gc_interval=args.gc_interval,
            gc_max_bytes=args.gc_max_bytes,
            gc_max_age=args.gc_max_age,
        )
    except ValueError as error:
        print(f"repro serve: {error}", file=sys.stderr)
        return 2
    async with service:
        server = await service.serve_tcp(*args.worker_endpoint)
        bound = server.sockets[0].getsockname()
        print(
            json.dumps(
                {
                    "event": "worker-listening",
                    "host": bound[0],
                    "port": bound[1],
                    "pid": os.getpid(),
                    "cache_dir": str(cache_dir),
                    "trace_dir": str(resolve_trace_dir(
                        cache_dir, args.trace_dir, args.no_trace_cache
                    )),
                }
            ),
            flush=True,
        )
        async with server:
            await service.wait_shutdown()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve experiment/simulation requests from one warm runtime session.",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--stdio",
        action="store_true",
        help="speak the JSON-lines protocol over stdin/stdout (default)",
    )
    mode.add_argument(
        "--tcp",
        type=_parse_endpoint,
        metavar="HOST:PORT",
        help="listen for protocol connections on HOST:PORT (port 0 = ephemeral)",
    )
    mode.add_argument(
        "--selftest",
        action="store_true",
        help="run round-trip, streamed and mid-run-cancellation checks and exit",
    )
    mode.add_argument(
        "--worker",
        action="store_true",
        help="cluster worker mode: TCP service with a registration handshake "
        "and a multi-process-safe shared cache (requires an auth token; "
        "prints a JSON banner with the bound endpoint on stdout)",
    )
    parser.add_argument(
        "--worker-endpoint",
        type=_parse_endpoint,
        default=("127.0.0.1", 0),
        metavar="HOST:PORT",
        help="endpoint of --worker mode (default: 127.0.0.1:0, ephemeral)",
    )
    parser.add_argument(
        "--auth-token",
        default=None,
        metavar="TOKEN",
        help="require TCP clients to authenticate with this shared secret "
        "before anything reaches the queue (default: $REPRO_SERVE_TOKEN; "
        "mandatory in --worker mode)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="bound on concurrently executing jobs (default: 2)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="shared on-disk result cache (default: ~/.cache/repro-pragmatic "
        "or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache entirely"
    )
    parser.add_argument(
        "--cache-backend",
        default=None,
        metavar="SPEC",
        help="result-cache backend URI instead of --cache-dir: "
        "remote://HOST:PORT (network cache tier, see docs/cachenet.md), "
        "memory://, or a directory path",
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="trace-fabric artifact directory (default: <cache-dir>/traces); "
        "workers sharing it map one physical copy of each trace tensor",
    )
    parser.add_argument(
        "--no-trace-cache",
        action="store_true",
        help="disable the zero-copy trace fabric (generate traces in-process)",
    )
    gc = parser.add_argument_group("background cache GC")
    gc.add_argument(
        "--gc-interval",
        type=_parse_interval,
        default=None,
        metavar="AGE",
        help="collect the disk cache every AGE (e.g. 900 or 15m); requires "
        "--gc-max-bytes and/or --gc-max-age",
    )
    gc.add_argument(
        "--gc-max-bytes",
        type=parse_size,
        default=None,
        metavar="SIZE",
        help="byte cap enforced by each background GC pass (e.g. 500M)",
    )
    gc.add_argument(
        "--gc-max-age",
        type=parse_age,
        default=None,
        metavar="AGE",
        help="evict entries unused for AGE on each background GC pass (e.g. 30d)",
    )
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be at least 1")
    if args.gc_interval is not None and args.gc_max_bytes is None and args.gc_max_age is None:
        parser.error("--gc-interval needs --gc-max-bytes and/or --gc-max-age")
    if args.gc_interval is not None and args.no_cache:
        parser.error("background GC requires a disk cache (drop --no-cache)")

    if args.auth_token is None:
        args.auth_token = os.environ.get("REPRO_SERVE_TOKEN") or None

    if args.selftest:
        return asyncio.run(_selftest(args.workers))

    if args.worker:
        if args.no_cache:
            parser.error("--worker needs the shared cache (drop --no-cache)")
        return asyncio.run(_run_worker(args))

    from repro.serve.service import ExperimentService

    if args.no_cache:
        cache_dir = None
    elif args.cache_backend is not None:
        # Results go to the backend; an explicit --cache-dir still anchors
        # the trace fabric, but don't conjure the default dir for it.
        cache_dir = args.cache_dir
    else:
        cache_dir = args.cache_dir or default_cache_dir()
    service = ExperimentService(
        cache_dir=cache_dir,
        no_cache=args.no_cache,
        workers=args.workers,
        gc_interval=args.gc_interval,
        gc_max_bytes=args.gc_max_bytes,
        gc_max_age=args.gc_max_age,
        auth_token=args.auth_token,
        trace_dir=args.trace_dir,
        no_trace_cache=args.no_trace_cache,
        cache_backend=args.cache_backend,
    )

    async def run_tcp(host: str, port: int) -> None:
        async with service:
            server = await service.serve_tcp(host, port)
            bound = server.sockets[0].getsockname()
            print(f"repro serve: listening on {bound[0]}:{bound[1]}", file=sys.stderr)
            async with server:
                # Returns when a client sends the shutdown op (or on ^C).
                await service.wait_shutdown()

    try:
        if args.tcp:
            asyncio.run(run_tcp(*args.tcp))
        else:
            asyncio.run(service.run_stdio())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
