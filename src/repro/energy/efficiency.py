"""Energy and energy-efficiency computation (Section VI-D, Figure 11).

The paper defines the energy efficiency of a design NEW relative to BASE as the
ratio ``E_BASE / E_NEW`` of the energy each needs to compute all convolutional
layers.  With the designs clocked identically and the memory traffic scheduled
identically, the energy of a run is the chip power integrated over its
execution time, so the efficiency reduces to
``(P_BASE · C_BASE) / (P_NEW · C_NEW)`` — speedup divided by the power ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import ChipConfig, DEFAULT_CHIP
from repro.core.accelerator import NetworkResult, PragmaticConfig
from repro.energy.components import component_counts_for
from repro.energy.power import chip_power

__all__ = ["execution_energy", "energy_efficiency", "EfficiencyEntry", "design_efficiency"]


def execution_energy(
    power_w: float, cycles: float, chip: ChipConfig = DEFAULT_CHIP
) -> float:
    """Energy (Joules) of running ``cycles`` at ``power_w`` on the given chip clock."""
    if power_w < 0 or cycles < 0:
        raise ValueError("power and cycles must be non-negative")
    seconds = cycles / (chip.frequency_ghz * 1e9)
    return power_w * seconds


def energy_efficiency(
    baseline_power_w: float,
    baseline_cycles: float,
    power_w: float,
    cycles: float,
) -> float:
    """Relative energy efficiency ``E_base / E_new`` (1.0 means parity)."""
    new_energy = power_w * cycles
    if new_energy <= 0:
        raise ValueError("the evaluated design must consume non-zero energy")
    return (baseline_power_w * baseline_cycles) / new_energy


@dataclass(frozen=True)
class EfficiencyEntry:
    """Energy efficiency of one design on one network, relative to DaDianNao."""

    design: str
    network: str
    speedup: float
    power_ratio: float
    efficiency: float

    def row(self) -> str:
        return (
            f"{self.design:>14s} on {self.network:<10s} speedup {self.speedup:4.2f}x, "
            f"power {self.power_ratio:4.2f}x -> efficiency {self.efficiency:4.2f}x"
        )


def design_efficiency(
    design: str | PragmaticConfig,
    result: NetworkResult,
    chip: ChipConfig = DEFAULT_CHIP,
) -> EfficiencyEntry:
    """Energy efficiency of a design given its simulated cycle counts.

    ``result`` must carry the design's cycles and the DaDianNao baseline cycles
    (as produced by the cycle simulators).
    """
    power = chip_power(component_counts_for(design, chip), chip)
    baseline_power = chip_power(component_counts_for("dadn", chip), chip)
    power_ratio = power / baseline_power
    efficiency = energy_efficiency(
        baseline_power_w=baseline_power,
        baseline_cycles=result.baseline_cycles,
        power_w=power,
        cycles=result.cycles,
    )
    name = design.name if isinstance(design, PragmaticConfig) else design
    return EfficiencyEntry(
        design=name,
        network=result.network,
        speedup=result.speedup,
        power_ratio=power_ratio,
        efficiency=efficiency,
    )
