"""``python -m repro cluster`` — run a sharded multi-worker cluster.

Modes (all share the worker flags; topology details in ``docs/cluster.md``):

* ``--tcp HOST:PORT`` / ``--stdio`` — serve the public protocol from a
  coordinator backed by ``--workers N`` spawned local worker processes
  and/or ``--connect HOST:PORT`` pre-started workers.
* ``--run EXPERIMENT|all`` — one-shot batch: start the cluster, execute the
  request, print the result summary and the merged cluster ``RunStats``,
  verify each simulation ran exactly once cluster-wide (merged
  ``sweep.configs_simulated`` equals the planned unit count), and exit.
* ``--selftest`` — spawn 2 local workers, shard a multi-network experiment
  across them, kill one worker mid-run and assert the coordinator requeues
  its jobs onto the survivor *and* auto-respawns the casualty; then exercise
  warm-cache exactness and a cross-process streamed cancellation.  CI runs
  this on every tier-1 platform.
* ``--selftest-elastic`` — elastic-membership checks: recycling after
  ``--max-jobs-per-worker`` completed jobs and respawn-after-kill, both on a
  live cluster.
* ``repro cacheserve --selftest`` delegates here too
  (:func:`run_cachenet_selftest`): a cold run against a network cache tier
  (``--cache-backend remote://host:port``, see ``docs/cachenet.md``), a warm
  rerun from a *host-fresh* cluster with zero local filesystem result cache,
  and graceful degradation to recomputation once the cache server is gone.

``--cache-dir`` names the shared cache every worker mounts; omitting it
gives the cluster a private temporary directory (useful for selftests and
benchmarks, wrong for durable deployments).  ``--cache-backend`` replaces
the shared-directory result tier with a network cache tier; ``--cache-dir``
then only anchors the trace fabric.  Worker registration is always
token-protected: ``--worker-token`` (or ``REPRO_SERVE_TOKEN``) supplies the
secret, which spawned workers inherit through their environment; a separate
``--auth-token`` protects the client-facing endpoint.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys

from repro.serve.cli import _parse_endpoint

__all__ = ["main", "run_cachenet_selftest"]

#: Small two-network workload for the selftest (sharding needs >1 trace).
_SELFTEST_OVERRIDES = {
    "networks": ["alexnet", "vgg_m"],
    "max_pallets": 2,
    "samples_per_layer": 1500,
}


def _fail(message: str) -> int:
    print(f"cluster: {message}", file=sys.stderr)
    return 1


async def _run_batch(args) -> int:
    """Start a cluster, run one request through it, verify, and exit."""
    from repro.cluster.coordinator import ClusterService
    from repro.serve.protocol import ExperimentRequest, RunAllRequest

    service = ClusterService(
        spawn_workers=args.workers,
        connect=args.connect,
        cache_dir=args.cache_dir,
        worker_processes=args.worker_processes,
        worker_token=args.worker_token,
        trace_dir=args.trace_dir,
        no_trace_cache=args.no_trace_cache,
        cache_backend=args.cache_backend,
        max_jobs_per_worker=args.max_jobs_per_worker,
    )
    if args.run == "all":
        request = RunAllRequest(preset=args.preset, seed=args.seed)
    else:
        request = ExperimentRequest(
            experiment=args.run, preset=args.preset, seed=args.seed
        )
    async with service:
        ticket = await service.submit(request)
        response = await service.wait(ticket)
        fleet = (await service.cluster_stats())["cluster"]["fleet"]
    if response["event"] != "done":
        return _fail(f"batch request failed: {response.get('error')}")
    stats = response["stats"]
    info = response["result"].get("cluster", {})
    simulated = stats["sweep"]["configs_simulated"]
    planned = info.get("planned_units", 0)
    requeued = service.flights_requeued
    print(
        f"cluster run {request.describe()}: planned {planned} unit(s), "
        f"planned cache hits {info.get('planned_hits', 0)}, "
        f"simulated {simulated} configs across "
        f"{len(service.links)} worker(s), {requeued} requeue(s)"
    )
    print(
        "stats: "
        f"cache {stats['cache']['hits']} hits / {stats['cache']['misses']} misses / "
        f"{stats['cache']['stores']} stores; "
        f"simulated {simulated} configs; "
        f"traces {stats['traces_built']} built / {stats['traces_reused']} reused"
    )
    print(
        f"fleet fabric: {fleet['trace_calibrations_computed']} calibrations, "
        f"{fleet['trace_tensors_built']} tensor builds, "
        f"{fleet['traces_mapped']} mmaps "
        f"({fleet['trace_bytes_shared']} bytes shared)"
    )
    if requeued == 0 and simulated != planned:
        return _fail(
            f"exactly-once violated: planned {planned} units but "
            f"simulated {simulated} configs"
        )
    return 0


async def _selftest_sharded_run(service, client) -> int:
    """Cold sharded experiment: every planned unit simulated exactly once."""
    response = await client.run_experiment("fig9", overrides=_SELFTEST_OVERRIDES)
    if not response.ok or not response.result:
        print(f"selftest: sharded run failed: {response.error}", file=sys.stderr)
        return 1
    planned = response.result.get("cluster", {}).get("planned_units", 0)
    simulated = response.stats.sweep.configs_simulated
    if planned == 0 or simulated != planned:
        print(
            f"selftest: expected exactly-once execution of {planned} planned "
            f"unit(s), merged stats report {simulated} simulated configs",
            file=sys.stderr,
        )
        return 1
    shards = {link.worker_id: link.completed for link in service.links.values()}
    workers_used = sum(1 for count in shards.values() if count > 0)
    print(
        f"selftest ok: fig9 sharded over {workers_used}/{len(shards)} workers "
        f"({planned} units, each simulated once; completions {shards})"
    )
    return 0


async def _selftest_warm_rerun(client) -> int:
    """A warm rerun recomputes nothing anywhere in the cluster."""
    response = await client.run_experiment("fig9", overrides=_SELFTEST_OVERRIDES)
    if not response.ok:
        print(f"selftest: warm rerun failed: {response.error}", file=sys.stderr)
        return 1
    simulated = response.stats.sweep.configs_simulated
    if simulated != 0:
        print(
            f"selftest: warm rerun simulated {simulated} configs (expected 0)",
            file=sys.stderr,
        )
        return 1
    print("selftest ok: warm rerun reported simulated 0 configs cluster-wide")
    return 0


async def _selftest_trace_fabric(service, client) -> int:
    """Across 2 workers, every trace artifact was materialized exactly once.

    The zero-copy trace fabric keys artifacts by content, and rendezvous
    routing sends each network's jobs to one worker — so summed over the
    fleet, calibrations computed (and tensors built) must equal the artifact
    count on disk: nothing was recomputed by the sibling worker, which
    loaded/mapped instead.  Runs after the cold + warm checks and before the
    worker-kill check (a killed worker's counters are unqueryable).
    """
    from repro.runtime import TraceArtifactStore

    payload = await service.cluster_stats()
    fleet = payload["cluster"]["fleet"]
    trace_dir = payload["cluster"]["trace_dir"]
    usage = TraceArtifactStore(trace_dir).usage()
    computed = fleet["trace_calibrations_computed"]
    built = fleet["trace_tensors_built"]
    if usage["calibrations"] == 0:
        print("selftest: no calibration artifacts materialized", file=sys.stderr)
        return 1
    if computed != usage["calibrations"] or built != usage["tensors"]:
        print(
            f"selftest: trace fabric built-once violated: fleet computed "
            f"{computed} calibrations / built {built} tensors for "
            f"{usage['calibrations']} calibration / {usage['tensors']} tensor "
            f"artifact(s) on disk",
            file=sys.stderr,
        )
        return 1
    print(
        f"selftest ok: {usage['calibrations'] + usage['tensors']} trace "
        f"artifact(s) each materialized exactly once across "
        f"{len(service.links)} workers "
        f"(fleet: {computed} calibrations computed, "
        f"{fleet['trace_calibrations_loaded']} loaded)"
    )
    return 0


async def _selftest_worker_kill(service, client) -> int:
    """Killing a worker mid-run requeues its jobs onto the survivor."""
    # Fresh trace spec (different seed) so this run is cold again.
    killed = []
    terminal = None
    terminal_event: dict = {}
    message = {
        "op": "run_experiment",
        "experiment": "fig10",
        "seed": 1,
        "overrides": _SELFTEST_OVERRIDES,
    }
    async for event in client.stream(message):
        name = event.get("event")
        if name == "progress" and not killed:
            worker_id = event.get("progress", {}).get("worker")
            link = service.links.get(worker_id)
            if link is not None and link.process is not None:
                killed.append(worker_id)
                link.process.terminate()
        if name in ("done", "failed", "cancelled", "error"):
            terminal = name
            terminal_event = event
    if not killed:
        print("selftest: no worker progress observed to kill on", file=sys.stderr)
        return 1
    if terminal != "done":
        print(
            f"selftest: run ended {terminal!r} after killing {killed[0]} "
            f"({terminal_event.get('error')})",
            file=sys.stderr,
        )
        return 1
    if service.flights_requeued < 1:
        print(
            "selftest: worker killed mid-flight but nothing was requeued",
            file=sys.stderr,
        )
        return 1
    # The membership monitor must relaunch + re-register the casualty: wait
    # for the respawn counter, then for a live link under the killed id.
    loop = asyncio.get_running_loop()
    deadline = loop.time() + 90.0
    while service.workers_respawned < 1 or not (
        (replacement := service.links.get(killed[0])) is not None and replacement.alive
    ):
        if loop.time() >= deadline:
            print(
                f"selftest: killed worker {killed[0]} was not respawned "
                f"(respawned={service.workers_respawned})",
                file=sys.stderr,
            )
            return 1
        await asyncio.sleep(0.2)
    print(
        f"selftest ok: killed {killed[0]} mid-run; {service.flights_requeued} "
        f"flight(s) requeued onto survivors, run completed, casualty "
        f"respawned as pid {replacement.pid}"
    )
    return 0


async def _selftest_cancellation(service, client) -> int:
    """A client cancel mid-run must interrupt the owning worker process."""
    cancelled = False
    terminal = None
    message = {
        "op": "run_experiment",
        "experiment": "fig12",
        "seed": 2,
        "overrides": _SELFTEST_OVERRIDES,
    }
    async for event in client.stream(message):
        name = event.get("event")
        if name == "progress" and not cancelled:
            cancelled = True
            await client.cancel(event["ticket"])
        if name in ("done", "failed", "cancelled", "error"):
            terminal = name
    if not cancelled:
        print("selftest: no progress to cancel on", file=sys.stderr)
        return 1
    if terminal != "cancelled":
        print(
            f"selftest: expected terminal cancelled, got {terminal!r}", file=sys.stderr
        )
        return 1
    follow_up = await asyncio.wait_for(
        client.run_experiment("table3", preset="smoke"), timeout=60
    )
    if not follow_up.ok:
        print(f"selftest: post-cancel request failed: {follow_up.error}", file=sys.stderr)
        return 1
    print(
        "selftest ok: cross-process cancellation interrupted the worker "
        "(terminal cancelled, survivors still serving)"
    )
    return 0


async def _selftest_recycle(service, client) -> int:
    """With ``max_jobs_per_worker`` set, workers are recycled once idle."""
    response = await client.run_experiment(
        "fig9", seed=4, overrides=_SELFTEST_OVERRIDES
    )
    if not response.ok:
        print(f"selftest: recycle run failed: {response.error}", file=sys.stderr)
        return 1
    loop = asyncio.get_running_loop()
    deadline = loop.time() + 90.0
    while service.workers_recycled < 1:
        if loop.time() >= deadline:
            print(
                "selftest: no worker was recycled after the run "
                f"(max_jobs_per_worker={service.max_jobs_per_worker}, "
                f"completions "
                f"{ {l.worker_id: l.completed for l in service.links.values()} })",
                file=sys.stderr,
            )
            return 1
        await asyncio.sleep(0.2)
    # The recycled fleet must keep serving: a warm rerun through the fresh
    # processes answers entirely from the shared cache backend.
    follow_up = await client.run_experiment(
        "fig9", seed=4, overrides=_SELFTEST_OVERRIDES
    )
    if not follow_up.ok:
        print(
            f"selftest: post-recycle request failed: {follow_up.error}",
            file=sys.stderr,
        )
        return 1
    if follow_up.stats.sweep.configs_simulated != 0:
        print(
            "selftest: post-recycle warm rerun simulated "
            f"{follow_up.stats.sweep.configs_simulated} configs (expected 0)",
            file=sys.stderr,
        )
        return 1
    print(
        f"selftest ok: {service.workers_recycled} worker(s) recycled after "
        f"{service.max_jobs_per_worker} job(s); recycled fleet served a warm "
        "rerun (simulated 0 configs)"
    )
    return 0


async def _selftest_elastic(args) -> int:
    """Elastic membership: recycling after N jobs, respawn after a kill."""
    from repro.cluster.coordinator import ClusterService
    from repro.serve.client import ServeClient

    workers = max(args.workers, 2)
    service = ClusterService(
        spawn_workers=workers,
        cache_dir=args.cache_dir,
        worker_processes=args.worker_processes,
        worker_token=args.worker_token,
        trace_dir=args.trace_dir,
        no_trace_cache=args.no_trace_cache,
        cache_backend=args.cache_backend,
        max_jobs_per_worker=args.max_jobs_per_worker or 1,
    )
    async with service:
        server = await service.serve_tcp("127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        async with server:
            client = await ServeClient.connect("127.0.0.1", port)
            try:
                print(
                    f"selftest-elastic: {workers} workers up, recycling after "
                    f"{service.max_jobs_per_worker} completed job(s)"
                )
                for check in (
                    lambda: _selftest_recycle(service, client),
                    lambda: _selftest_worker_kill(service, client),
                ):
                    status = await check()
                    if status:
                        return status
                return 0
            finally:
                await client.close()


async def _cachenet_run(spec: str, *, label: str) -> tuple[int, dict]:
    """One cold-start 2-worker batch against the network cache tier ``spec``.

    Returns ``(exit_status, info)`` where ``info`` carries the merged
    ``simulated`` count, the ``planned`` unit count and the coordinator's own
    remote-tier gauges (``remote_degraded`` in particular) — each call builds
    a *fresh* cluster with a private temporary cache directory, so any warmth
    can only come from the remote tier.
    """
    from repro.cluster.coordinator import ClusterService
    from repro.serve.protocol import parse_request

    service = ClusterService(spawn_workers=2, cache_backend=spec)
    request = parse_request(
        {"op": "run_experiment", "experiment": "fig9", "overrides": _SELFTEST_OVERRIDES}
    )
    async with service:
        local_dirs = [
            link.info.get("cache_dir") for link in service.links.values()
        ]
        ticket = await service.submit(request)
        response = await service.wait(ticket)
        usage = service.session.cache.usage()
    if response["event"] != "done":
        print(
            f"cachenet selftest: {label} run failed: {response.get('error')}",
            file=sys.stderr,
        )
        return 1, {}
    if any(directory is not None for directory in local_dirs):
        print(
            f"cachenet selftest: workers report local result caches "
            f"{local_dirs} (expected none under {spec})",
            file=sys.stderr,
        )
        return 1, {}
    info = {
        "simulated": response["stats"]["sweep"]["configs_simulated"],
        "planned": response["result"].get("cluster", {}).get("planned_units", 0),
        "remote_degraded": usage.get("remote_degraded", 0),
        "remote_hits": usage.get("remote_hits", 0),
    }
    return 0, info


async def _cachenet_selftest() -> int:
    """Cold → host-fresh warm → degraded, all against one cache server."""
    import shutil
    import tempfile
    from pathlib import Path

    from repro.cachenet.backend import RemoteBackend
    from repro.cachenet.server import CacheServer

    scratch = tempfile.mkdtemp(prefix="repro-cachenet-selftest-")
    server = CacheServer(directory=Path(scratch) / "cache")
    host, port = server.start()
    spec = f"remote://{host}:{port}"
    try:
        print(f"cachenet selftest: cache server on {spec}")
        status, cold = await _cachenet_run(spec, label="cold")
        if status:
            return status
        if cold["simulated"] == 0 or cold["simulated"] != cold["planned"]:
            print(
                f"cachenet selftest: cold run simulated {cold['simulated']} "
                f"configs for {cold['planned']} planned unit(s)",
                file=sys.stderr,
            )
            return 1
        stored = len(server.backend)
        if stored == 0:
            print("cachenet selftest: cold run stored nothing remotely", file=sys.stderr)
            return 1
        print(
            f"cachenet selftest ok: cold run simulated {cold['simulated']} "
            f"configs, {stored} entr(ies) now in the remote tier"
        )

        # A brand-new cluster — fresh worker processes, fresh private cache
        # directory, zero local filesystem result cache — must serve warm
        # purely from the network tier.
        status, warm = await _cachenet_run(spec, label="warm")
        if status:
            return status
        if warm["simulated"] != 0:
            print(
                f"cachenet selftest: host-fresh rerun simulated "
                f"{warm['simulated']} configs (expected 0)",
                file=sys.stderr,
            )
            return 1
        print(
            "cachenet selftest ok: host-fresh cluster served warm "
            "(simulated 0 configs, zero local filesystem cache)"
        )

        # Kill the cache server: the tier degrades to recomputation — the
        # run still succeeds, and the degraded counter records every miss
        # the dead tier caused.
        server.stop()
        probe = RemoteBackend(host, port, connect_timeout=1.0, retries=0)
        if probe.load("0" * 16, "network_result") is not None:
            print("cachenet selftest: dead server served a payload?", file=sys.stderr)
            return 1
        if probe.remote_degraded < 1:
            print(
                "cachenet selftest: dead-server lookup did not count as degraded",
                file=sys.stderr,
            )
            return 1
        probe.close()
        status, degraded = await _cachenet_run(spec, label="degraded")
        if status:
            return status
        # Exactly-once is a *cache* property and the cache is gone: the run
        # must merely complete, recomputing at least every planned unit
        # (assemblies recompute what they cannot look up).
        if degraded["simulated"] < degraded["planned"] or degraded["simulated"] == 0:
            print(
                f"cachenet selftest: degraded run simulated "
                f"{degraded['simulated']} configs for "
                f"{degraded['planned']} planned unit(s)",
                file=sys.stderr,
            )
            return 1
        if degraded["remote_degraded"] < 1:
            print(
                "cachenet selftest: degraded run reported no degraded "
                "remote operations",
                file=sys.stderr,
            )
            return 1
        print(
            f"cachenet selftest ok: cache server gone — run degraded to "
            f"recomputation ({degraded['simulated']} configs, "
            f"{degraded['remote_degraded']} degraded remote op(s) on the "
            "coordinator alone)"
        )
        return 0
    finally:
        server.stop()
        shutil.rmtree(scratch, ignore_errors=True)


def run_cachenet_selftest() -> int:
    """Backing implementation of ``repro cacheserve --selftest``.

    Lives here (not in :mod:`repro.cachenet.cli`) because it drives a full
    :class:`~repro.cluster.coordinator.ClusterService` and reuses this
    module's selftest workload; ``docs/cachenet.md`` describes the three
    phases (cold, host-fresh warm, degraded).
    """
    return asyncio.run(_cachenet_selftest())


async def _selftest(args) -> int:
    """Spawn 2 workers, shard, kill one mid-run, cancel cross-process."""
    from repro.cluster.coordinator import ClusterService
    from repro.serve.client import ServeClient

    workers = max(args.workers, 2)
    service = ClusterService(
        spawn_workers=workers,
        cache_dir=args.cache_dir,
        worker_processes=args.worker_processes,
        worker_token=args.worker_token,
        trace_dir=args.trace_dir,
        no_trace_cache=args.no_trace_cache,
        cache_backend=args.cache_backend,
    )
    async with service:
        server = await service.serve_tcp("127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        async with server:
            client = await ServeClient.connect("127.0.0.1", port)
            try:
                pids = [link.pid for link in service.links.values()]
                print(f"selftest: {workers} workers up (pids {pids})")
                for check in (
                    lambda: _selftest_sharded_run(service, client),
                    lambda: _selftest_warm_rerun(client),
                    lambda: _selftest_trace_fabric(service, client),
                    lambda: _selftest_worker_kill(service, client),
                    lambda: _selftest_cancellation(service, client),
                ):
                    status = await check()
                    if status:
                        return status
                return 0
            finally:
                await client.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro cluster",
        description="Shard experiment execution across worker processes "
        "behind the standard serve protocol.",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--tcp",
        type=_parse_endpoint,
        metavar="HOST:PORT",
        help="serve the public protocol on HOST:PORT (port 0 = ephemeral)",
    )
    mode.add_argument(
        "--stdio",
        action="store_true",
        help="serve the public protocol over stdin/stdout",
    )
    mode.add_argument(
        "--run",
        metavar="EXPERIMENT|all",
        help="one-shot batch: run one experiment (or 'all'), verify "
        "exactly-once execution, print merged stats, exit",
    )
    mode.add_argument(
        "--selftest",
        action="store_true",
        help="spawn 2 workers, shard a run, kill one worker mid-run, "
        "assert requeue + respawn + completion + cross-process cancellation",
    )
    mode.add_argument(
        "--selftest-elastic",
        action="store_true",
        help="elastic-membership checks: recycle workers after "
        "--max-jobs-per-worker (default 1 here) and respawn a killed worker",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="local worker processes to spawn (default: 2; 0 with --connect)",
    )
    parser.add_argument(
        "--connect",
        type=_parse_endpoint,
        action="append",
        default=[],
        metavar="HOST:PORT",
        help="attach a pre-started worker (repeatable); workers must share "
        "a cache backend",
    )
    parser.add_argument(
        "--worker-processes",
        type=int,
        default=2,
        metavar="K",
        help="concurrent jobs per spawned worker (default: 2)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="shared result cache all workers mount (default: a private "
        "temporary directory, removed on exit)",
    )
    parser.add_argument(
        "--cache-backend",
        default=None,
        metavar="SPEC",
        help="result-cache backend spec every worker mounts instead of the "
        "shared directory (e.g. remote://HOST:PORT, docs/cachenet.md); "
        "--cache-dir then only anchors the trace fabric",
    )
    parser.add_argument(
        "--max-jobs-per-worker",
        type=int,
        default=None,
        metavar="N",
        help="recycle a spawned worker (relaunch + re-register) after it "
        "completes N jobs, bounding per-process memory (default: never)",
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="trace-fabric artifact directory every worker shares "
        "(default: <cache-dir>/traces)",
    )
    parser.add_argument(
        "--no-trace-cache",
        action="store_true",
        help="disable the zero-copy trace fabric on every worker",
    )
    parser.add_argument(
        "--worker-token",
        default=None,
        metavar="TOKEN",
        help="shared secret for worker registration (default: "
        "$REPRO_SERVE_TOKEN, or generated per run)",
    )
    parser.add_argument(
        "--auth-token",
        default=None,
        metavar="TOKEN",
        help="require clients of the coordinator's endpoint to authenticate",
    )
    parser.add_argument("--preset", default="fast", help="preset for --run (default: fast)")
    parser.add_argument("--seed", type=int, default=0, help="seed for --run (default: 0)")
    args = parser.parse_args(argv)
    if args.workers < 0:
        parser.error("--workers must be non-negative")
    if args.workers == 0 and not args.connect:
        parser.error("a cluster needs --workers >= 1 and/or --connect endpoints")
    if args.max_jobs_per_worker is not None and args.max_jobs_per_worker < 1:
        parser.error("--max-jobs-per-worker must be positive")
    if args.worker_token is None:
        args.worker_token = os.environ.get("REPRO_SERVE_TOKEN") or None

    try:
        if args.selftest:
            return asyncio.run(_selftest(args))
        if args.selftest_elastic:
            return asyncio.run(_selftest_elastic(args))
        if args.run:
            from repro.experiments.runner import EXPERIMENTS

            if args.run != "all" and args.run not in EXPERIMENTS:
                parser.error(
                    f"unknown experiment {args.run!r}; "
                    f"available: all, {', '.join(EXPERIMENTS)}"
                )
            return asyncio.run(_run_batch(args))
        if args.tcp is None and not args.stdio:
            parser.error(
                "pick a mode: --tcp, --stdio, --run, --selftest or "
                "--selftest-elastic"
            )

        from repro.cluster.coordinator import ClusterService

        service = ClusterService(
            spawn_workers=args.workers,
            connect=args.connect,
            cache_dir=args.cache_dir,
            worker_processes=args.worker_processes,
            worker_token=args.worker_token,
            auth_token=args.auth_token,
            trace_dir=args.trace_dir,
            no_trace_cache=args.no_trace_cache,
            cache_backend=args.cache_backend,
            max_jobs_per_worker=args.max_jobs_per_worker,
        )

        async def run_tcp(host: str, port: int) -> None:
            async with service:
                server = await service.serve_tcp(host, port)
                bound = server.sockets[0].getsockname()
                print(
                    f"repro cluster: coordinator on {bound[0]}:{bound[1]} "
                    f"({len(service.links)} workers)",
                    file=sys.stderr,
                )
                async with server:
                    await service.wait_shutdown()

        if args.tcp:
            asyncio.run(run_tcp(*args.tcp))
        else:
            asyncio.run(service.run_stdio())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
