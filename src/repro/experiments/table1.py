"""Table I — essential (non-zero) bit content of the neuron streams."""

from __future__ import annotations

from repro.analysis.tables import format_percent
from repro.experiments.base import ExperimentResult, Preset, get_preset
from repro.nn.calibration import REPRESENTATIONS, TABLE1_TARGETS
from repro.runtime import StatisticsRequest, TraceSpec, analyze

__all__ = ["run", "plan"]


def plan(preset: str | Preset = "fast", seed: int = 0) -> list[StatisticsRequest]:
    """The per-network statistics passes this experiment needs."""
    config = get_preset(preset)
    return [
        StatisticsRequest(
            statistic="essential_bits",
            trace=TraceSpec(network=name, representation=representation, seed=seed),
            samples_per_layer=config.samples_per_layer,
        )
        for representation in REPRESENTATIONS
        for name in config.networks
    ]


def run(preset: str | Preset = "fast", seed: int = 0) -> ExperimentResult:
    """Reproduce Table I for both storage representations."""
    headers = [
        "network",
        "representation",
        "All (measured)",
        "All (paper)",
        "NZ (measured)",
        "NZ (paper)",
    ]
    rows: list[list[object]] = []
    metadata: dict[str, float] = {}
    for request in plan(preset, seed):
        representation = request.trace.representation
        targets = TABLE1_TARGETS.get(representation, {"all": {}, "nz": {}})
        entry = analyze(request)
        network = entry["network"]
        paper_all = targets["all"].get(network)
        paper_nz = targets["nz"].get(network)
        rows.append(
            [
                network,
                representation,
                format_percent(entry["all"]),
                format_percent(paper_all) if paper_all is not None else "-",
                format_percent(entry["nz"]),
                format_percent(paper_nz) if paper_nz is not None else "-",
            ]
        )
        metadata[f"{representation}:{network}:all"] = entry["all"]
        metadata[f"{representation}:{network}:nz"] = entry["nz"]
    notes = (
        "Synthetic traces are calibrated against the paper's NZ statistic for each\n"
        "representation (DESIGN.md §4); the All column follows from the calibrated\n"
        "zero fraction and the dense image-fed first layer."
    )
    return ExperimentResult(
        experiment="table1",
        title="Table I: average fraction of non-zero bits per neuron",
        headers=headers,
        rows=rows,
        notes=notes,
        metadata=metadata,
    )
