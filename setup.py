"""Setuptools shim.

All project metadata lives in ``pyproject.toml``.  This file exists so that
``pip install -e . --no-use-pep517`` works on environments whose setuptools
predates PEP 660 editable installs (and that lack the ``wheel`` package).
"""

from setuptools import setup

setup()
