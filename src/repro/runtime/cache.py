"""Content-addressed result cache over a pluggable storage backend.

One :class:`ResultCache` stores JSON payloads under fingerprint keys (see
:mod:`repro.runtime.fingerprint`).  The cache owns *policy* — hit/miss/error
accounting, the bounded in-process memo, the enabled/disabled switch — while
the storage itself is a :class:`~repro.runtime.backends.CacheBackend`:

* ``ResultCache()`` — an :class:`~repro.runtime.backends.InMemoryBackend`;
  the default for library use, so importing ``repro`` never writes to disk.
* ``ResultCache(directory=...)`` — a
  :class:`~repro.runtime.backends.FilesystemBackend`: gzip-compressed entry
  files written atomically plus a persistent manifest
  (:mod:`repro.runtime.lifecycle`) so ``len()``, :meth:`ResultCache.usage`
  and garbage collection never scan the directory.
* ``ResultCache(backend=...)`` — any backend, e.g. the multi-process-safe
  :class:`~repro.runtime.backends.SharedDirectoryBackend` cluster workers
  share (``docs/cluster.md``), or a future object-store/redis backend.
* :meth:`ResultCache.disabled` — every lookup misses and stores are dropped
  (the ``--no-cache`` mode).

Corrupted entries (truncated writes, manual edits, schema drift) are treated
as misses: the backend drops the entry, ``stats.errors`` is incremented and
the caller recomputes.  The key scheme, the on-disk layout, the GC policy and
the backend interface are documented in ``docs/runtime.md``.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass
from pathlib import Path

from repro.runtime import lifecycle
from repro.runtime.backends import (
    CacheBackend,
    CorruptEntry,
    FilesystemBackend,
    InMemoryBackend,
)

__all__ = ["CacheStats", "ResultCache", "DEFAULT_MEMO_ENTRIES"]

#: Format version of stored entries; re-exported for backward compatibility
#: (the codec itself lives in :mod:`repro.runtime.backends`).
ENTRY_SCHEMA = 1

#: Default bound on the in-process memo of a *persistent* cache.  A long-lived
#: serve process used to retain every payload it ever touched; beyond this
#: many, the least-recently-used memo entries are dropped (the backend copy
#: still hits).
DEFAULT_MEMO_ENTRIES = 512


@dataclass
class CacheStats:
    """Counters describing how a cache behaved during a run.

    ``hits``/``misses``/``stores``/``errors`` are counters (summed by
    :meth:`merge`).  ``disk_entries``/``disk_bytes``/``memo_entries`` and
    ``oldest_age_seconds`` are *gauges* describing current cache state —
    populated by :meth:`ResultCache.snapshot`.  Gauges merge two ways:

    * ``distinct_caches=False`` (default) — by ``max``: the snapshots
      describe *one shared cache* seen from several views (pool workers, the
      serve stats views), so summing them would double its size.
    * ``distinct_caches=True`` — by sum: the snapshots describe *different
      caches* (one per cluster worker process); taking ``max`` would silently
      under-report aggregate footprint.  The cluster coordinator merges
      worker snapshots this way (``docs/cluster.md``).

    ``shared_gauges`` qualifies the distinct mode: a snapshot whose *storage*
    is shared across processes (the shared-directory backend, the network
    cache tier of ``docs/cachenet.md``) sets it, and its ``disk_entries``/
    ``disk_bytes`` then max-merge even under ``distinct_caches=True`` — every
    worker reports the same shared tier, and summing it once per worker would
    multiply the fleet's footprint by the worker count.  ``memo_entries``
    stays per-process (each worker's memo really is distinct) and still sums.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0
    disk_entries: int = 0
    disk_bytes: int = 0
    memo_entries: int = 0
    oldest_age_seconds: float = 0.0
    shared_gauges: bool = False

    def merge(self, other: "CacheStats | dict", distinct_caches: bool = False) -> None:
        """Accumulate counters (and max- or sum-merge gauges) from ``other``."""
        if isinstance(other, CacheStats):
            other = other.as_dict()
        self.hits += other.get("hits", 0)
        self.misses += other.get("misses", 0)
        self.stores += other.get("stores", 0)
        self.errors += other.get("errors", 0)
        shared = self.shared_gauges or bool(other.get("shared_gauges", False))
        gauge = (
            (lambda mine, theirs: mine + theirs)
            if distinct_caches and not shared
            else max
        )
        self.disk_entries = gauge(self.disk_entries, other.get("disk_entries", 0))
        self.disk_bytes = gauge(self.disk_bytes, other.get("disk_bytes", 0))
        memo = (lambda mine, theirs: mine + theirs) if distinct_caches else max
        self.memo_entries = memo(self.memo_entries, other.get("memo_entries", 0))
        self.shared_gauges = shared
        # Entry age is a maximum in both modes: ages never add up across
        # caches, the fleet's oldest entry is simply the oldest anywhere.
        self.oldest_age_seconds = max(
            self.oldest_age_seconds, other.get("oldest_age_seconds", 0.0)
        )

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "errors": self.errors,
            "disk_entries": self.disk_entries,
            "disk_bytes": self.disk_bytes,
            "memo_entries": self.memo_entries,
            "oldest_age_seconds": self.oldest_age_seconds,
            "shared_gauges": self.shared_gauges,
        }


class ResultCache:
    """Content-addressed cache of JSON payloads keyed by fingerprint."""

    def __init__(
        self,
        directory: str | Path | None = None,
        enabled: bool = True,
        memo_entries: int = DEFAULT_MEMO_ENTRIES,
        backend: CacheBackend | None = None,
    ) -> None:
        if backend is not None and directory is not None:
            raise ValueError("pass either directory or backend, not both")
        if backend is None:
            if enabled and directory is not None:
                backend = FilesystemBackend(directory)
            else:
                backend = InMemoryBackend()
        self.backend = backend
        self.enabled = enabled
        self.memo_entries = memo_entries
        self.stats = CacheStats()
        #: LRU memo keyed by ``(key, kind)`` — the kind is part of the memo
        #: key so an entry stored under one kind can never answer a lookup
        #: for another (the backend always enforced this).
        self._memory: collections.OrderedDict[tuple[str, str], dict] = (
            collections.OrderedDict()
        )

    @classmethod
    def disabled(cls) -> "ResultCache":
        """A cache that never hits and never stores."""
        return cls(directory=None, enabled=False)

    @property
    def directory(self) -> Path | None:
        """Directory of a filesystem-shaped backend, ``None`` otherwise."""
        return self.backend.directory

    @property
    def manifest(self) -> lifecycle.CacheManifest | None:
        """Manifest index of a filesystem-shaped backend, ``None`` otherwise."""
        return self.backend.manifest

    @property
    def persistent(self) -> bool:
        """Whether entries survive this process."""
        return self.enabled and self.backend.persistent

    # ------------------------------------------------------------------- memo
    def _memo_get(self, key: str, kind: str) -> dict | None:
        payload = self._memory.get((key, kind))
        if payload is not None:
            self._memory.move_to_end((key, kind))
        return payload

    def _memo_put(self, key: str, kind: str, payload: dict) -> None:
        self._memory[(key, kind)] = payload
        self._memory.move_to_end((key, kind))
        while len(self._memory) > self.memo_entries:
            self._memory.popitem(last=False)

    def _memo_drop(self, key: str) -> None:
        for memo_key in [mk for mk in self._memory if mk[0] == key]:
            del self._memory[memo_key]

    # ----------------------------------------------------------------- lookup
    def get(self, key: str, kind: str = "network_result") -> dict | None:
        """Payload stored under ``key``, or ``None`` on a miss."""
        if not self.enabled:
            self.stats.misses += 1
            return None
        payload = self._memo_get(key, kind)
        if payload is not None:
            self.stats.hits += 1
            # Memo hits must advance the backend's LRU clock too, or GC
            # would evict the hottest entries first (touch is throttled by
            # the manifest, so this stays cheap on the hot path).
            self.backend.touch(key)
            return payload
        try:
            payload = self.backend.load(key, kind)
        except CorruptEntry:
            self.stats.misses += 1
            self.stats.errors += 1
            return None
        if payload is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._memo_put(key, kind, payload)
        return payload

    def contains(self, key: str, kind: str = "network_result") -> bool:
        """Whether ``key`` resolves to a valid entry, without counting hit/miss.

        Used by the run planner to prune simulation jobs.  Validates the entry
        but deliberately does not retain its payload (the planning process
        never consumes the results, only the workers do); hit/miss counters
        are reserved for actual lookups, while corruption discovered during a
        probe still counts as an error and drops the entry.
        """
        if not self.enabled:
            return False
        if self._memo_get(key, kind) is not None:
            return True
        try:
            return self.backend.probe(key, kind)
        except CorruptEntry:
            self.stats.errors += 1
            return False

    # ------------------------------------------------------------------ store
    def put(self, key: str, payload: dict, kind: str = "network_result") -> None:
        """Store ``payload`` under ``key`` (atomic, compressed on disk).

        Backend failures (read-only directory, disk full) are not fatal: the
        entry stays available in memory for this process and the failure is
        counted in ``stats.errors``.
        """
        if not self.enabled:
            return
        self._memo_put(key, kind, payload)
        self.stats.stores += 1
        try:
            self.backend.store(key, payload, kind)
        except OSError:
            self.stats.errors += 1

    # -------------------------------------------------------------- lifecycle
    def usage(self) -> dict:
        """Current cache state: entries, disk bytes, ages, memo size.

        Numbers come from the backend (the manifest for filesystem-shaped
        backends) — no directory scan.
        """
        usage = self.backend.usage() if self.enabled else {"entries": 0, "disk_bytes": 0}
        payload = {
            "entries": usage.get("entries", 0),
            "memo_entries": len(self._memory),
            "directory": str(self.directory) if self.directory is not None else None,
            "backend": self.backend.describe(),
            "disk_bytes": usage.get("disk_bytes", 0),
            "oldest_age_seconds": usage.get("oldest_age_seconds"),
            "lru_age_seconds": usage.get("lru_age_seconds"),
        }
        # The network cache tier (docs/cachenet.md) reports extra gauges —
        # remote hit/miss/degraded counters, negative-lookup suppression —
        # that run summaries, the serve ``stats`` op and loadgen reports
        # surface; pass them through rather than flattening them away.
        for key, value in usage.items():
            if key.startswith(("remote_", "negative_", "suppressed_", "memory_")):
                payload[key] = value
        return payload

    def snapshot(self) -> CacheStats:
        """This cache's counters plus current state gauges (see CacheStats)."""
        snapshot = CacheStats()
        snapshot.merge(self.stats)
        usage = self.usage()
        snapshot.disk_entries = usage["entries"] if self.persistent else 0
        snapshot.disk_bytes = usage["disk_bytes"]
        snapshot.memo_entries = usage["memo_entries"]
        snapshot.oldest_age_seconds = usage["oldest_age_seconds"] or 0.0
        # Shared storage (shared directory, remote tier) is reported by every
        # process that mounts it; mark the gauges so fleet merges don't count
        # the same bytes once per worker (see CacheStats).
        snapshot.shared_gauges = self.enabled and self.backend.shared
        return snapshot

    def gc(
        self, max_bytes: int | None = None, max_age: float | None = None
    ) -> lifecycle.GCResult:
        """Garbage-collect the backend (LRU-first; see ``CacheManifest.gc``).

        Evicted keys are also dropped from the in-process memo so a bounded
        cache never serves an entry GC decided to retire.  A memory-only or
        disabled cache has nothing to collect and returns an empty result.
        """
        if not self.persistent:
            return lifecycle.GCResult()
        result = self.backend.gc(max_bytes=max_bytes, max_age=max_age)
        for key in result.removed_keys:
            self._memo_drop(key)
        return result

    def clear(self) -> int:
        """Remove every entry (backend and memo); returns backend entries removed."""
        removed = 0
        if self.enabled:
            removed = self.backend.clear()
        self._memory.clear()
        return removed

    def __len__(self) -> int:
        if not self.enabled:
            return 0
        return len(self.backend)
