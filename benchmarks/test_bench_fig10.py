"""Benchmark: regenerate Figure 10 (per-column synchronization vs SSR count)."""

import pytest


def test_bench_fig10(report):
    result = report("fig10")
    geo = {key.split(":")[1]: value for key, value in result.metadata.items() if key.startswith("geomean:")}
    # More SSRs monotonically approach the ideal configuration.
    assert geo["1-reg"] <= geo["4-regs"] <= geo["16-regs"] <= geo["perCol-ideal"] * 1.001
    # One register already captures most of the benefit (paper: 3.1x of 3.45x ideal).
    assert geo["1-reg"] >= 0.85 * geo["perCol-ideal"]
    # Column synchronization clearly beats Stripes and lands in the paper's range.
    assert geo["1-reg"] > geo["Stripes"]
    assert 2.4 <= geo["1-reg"] <= 4.2
    assert geo["perCol-ideal"] == pytest.approx(geo["16-regs"], rel=0.05)
