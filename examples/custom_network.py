#!/usr/bin/env python3
"""Evaluate Pragmatic on a user-defined network with functional verification.

The paper's networks are image classifiers, but the library accepts any stack
of convolutional layers.  This example:

1. defines a small custom detector-style network layer by layer,
2. profiles per-layer precisions from its (synthetic) activations,
3. runs the functional Pragmatic tile on one layer and checks it against the
   bit-parallel reference convolution — the same check the hardware would have
   to pass, and
4. reports the cycle-level speedups of Pragmatic over DaDianNao and Stripes.

Run it with::

    python examples/custom_network.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.speedup import dadn_result, stripes_result
from repro.analysis.tables import format_ratio, format_table
from repro.arch.tiling import SamplingConfig
from repro.core.accelerator import PragmaticAccelerator
from repro.core.pip import PragmaticTileFunctional
from repro.core.variants import column_variant
from repro.nn.layers import ConvLayerSpec
from repro.nn.networks import Network
from repro.nn.precision import LayerPrecision, profile_from_values
from repro.nn.reference import conv2d_reference
from repro.nn.traces import LayerTraceParams, NetworkTrace, generate_synapses


def build_network() -> Network:
    """A small single-shot-detector style backbone."""
    return Network(
        name="tiny_detector",
        display_name="Tiny detector",
        layers=(
            ConvLayerSpec("stem", 3, 96, 96, 32, 5, 5, stride=2, padding=2),
            ConvLayerSpec("stage1", 32, 48, 48, 64, 3, 3, padding=1),
            ConvLayerSpec("stage2", 64, 24, 24, 128, 3, 3, padding=1),
            ConvLayerSpec("stage3", 128, 12, 12, 256, 3, 3, padding=1),
            ConvLayerSpec("head", 256, 12, 12, 64, 1, 1),
        ),
    )


def build_trace(network: Network) -> NetworkTrace:
    """Synthetic activations plus per-layer precisions profiled from them."""
    params = tuple(
        LayerTraceParams(sigma=40.0 + 12.0 * index, zero_fraction=0.0 if index == 0 else 0.55)
        for index in range(network.num_layers)
    )
    # First pass: generate with provisional full-width windows, then profile.
    provisional = NetworkTrace(
        network=network,
        precisions=tuple(LayerPrecision(msb=15) for _ in network.layers),
        params=params,
        seed=11,
    )
    profiled = tuple(
        profile_from_values(provisional.sample_layer_values(index, 20000))
        for index in range(network.num_layers)
    )
    return NetworkTrace(network=network, precisions=profiled, params=params, seed=11)


def verify_functional(trace: NetworkTrace) -> None:
    """Run the serial PIP pipeline on the head layer and check it bit for bit."""
    rng = np.random.default_rng(3)
    layer = trace.network.layer("head")
    index = trace.network.layers.index(layer)
    neurons = trace.layer_input(index)
    synapses = generate_synapses(layer, rng)
    outputs, cycles = PragmaticTileFunctional(first_stage_bits=2).compute_layer(
        layer, neurons, synapses
    )
    expected = conv2d_reference(layer, neurons, synapses)
    assert np.array_equal(outputs, expected), "PIP pipeline diverged from the reference!"
    print(
        f"Functional check on {layer.name!r}: {outputs.size} output neurons identical to "
        f"the bit-parallel reference ({cycles} serial cycles)."
    )


def main() -> None:
    network = build_network()
    trace = build_trace(network)
    print(network.describe())
    print()
    print("Profiled per-layer precisions:",
          "-".join(str(p.width) for p in trace.precisions))
    print()
    verify_functional(trace)
    print()

    sampling = SamplingConfig(max_pallets=8)
    pragmatic = PragmaticAccelerator(column_variant(1)).simulate_network(trace, sampling)
    baselines = {"DaDN": dadn_result(trace), "Stripes": stripes_result(trace)}

    rows = [
        ["DaDN", format_ratio(baselines["DaDN"].speedup)],
        ["Stripes", format_ratio(baselines["Stripes"].speedup)],
        ["PRA-2b-1R", format_ratio(pragmatic.speedup)],
    ]
    print(format_table(["design", "speedup vs DaDN"], rows))
    print()
    print("Per-layer breakdown for Pragmatic:")
    print(pragmatic.summary())


if __name__ == "__main__":
    main()
