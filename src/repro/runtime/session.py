"""The runtime session: cache + trace store + stats, and the active session.

Experiments do not thread runtime handles through their signatures — they ask
for :func:`current_session` and the runtime configures it once per process
(the CLI at startup, the scheduler in each pool worker, tests through
:func:`use_session`/:func:`isolated_session`).  The default session uses an
in-memory cache, so importing ``repro`` and calling ``fig9.run()`` never
touches the filesystem.

Session activation is *thread-scoped*: :func:`use_session` installs a session
on the calling thread only, while :func:`configure_session` replaces the
process-wide default every thread falls back to.  This is what lets the serve
layer (:mod:`repro.serve`) execute concurrent jobs on worker threads, each
under its own per-request stats view of one shared session.  See
``docs/runtime.md`` for the full session model.
"""

from __future__ import annotations

import contextlib
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.progress import ProgressToken
from repro.core.sweep import SweepStats
from repro.runtime.cache import CacheStats, ResultCache
from repro.runtime.trace_store import TraceStore

__all__ = [
    "DEFAULT_CACHE_DIR",
    "RunStats",
    "RuntimeSession",
    "configure_session",
    "current_session",
    "default_cache_dir",
    "isolated_session",
    "resolve_trace_dir",
    "use_session",
]

#: Fallback on-disk cache location of the CLI when ``REPRO_CACHE_DIR`` is
#: unset.  Deliberately *not* resolved against the environment here: the env
#: var is read at call time by :func:`default_cache_dir`, so setting it after
#: ``repro`` is imported (tests, embedding apps, serve wrappers) still works.
DEFAULT_CACHE_DIR = Path("~/.cache/repro-pragmatic")


def default_cache_dir() -> Path:
    """The CLI's default cache directory, resolving ``REPRO_CACHE_DIR`` *now*."""
    return Path(os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR)


@dataclass
class RunStats:
    """Aggregate statistics of one run (merged across pool workers).

    The ``trace_*``/``traces_mapped`` fields are the zero-copy trace fabric's
    counters (:meth:`repro.runtime.trace_cache.TraceArtifactStore.counters`):
    full tensors generated vs. opened as read-only memory maps of host-shared
    artifacts, the artifact bytes those opens shared, and calibration
    bisections run vs. loaded from persisted results.  All are event counters,
    so they sum in both merge modes.
    """

    cache: CacheStats = field(default_factory=CacheStats)
    sweep: SweepStats = field(default_factory=SweepStats)
    traces_built: int = 0
    traces_reused: int = 0
    trace_tensors_built: int = 0
    traces_mapped: int = 0
    trace_bytes_shared: int = 0
    trace_calibrations_computed: int = 0
    trace_calibrations_loaded: int = 0

    #: Trace-fabric event counters (plain sums under merge).
    _FABRIC_COUNTERS = (
        "trace_tensors_built",
        "traces_mapped",
        "trace_bytes_shared",
        "trace_calibrations_computed",
        "trace_calibrations_loaded",
    )

    def merge(self, other: "RunStats | dict", distinct_caches: bool = False) -> None:
        """Accumulate ``other`` into this object.

        ``distinct_caches=True`` sum-merges the cache *gauges* instead of
        max-merging them — required when the merged snapshots describe
        different caches (one per cluster worker) rather than several views
        of one shared cache (see :meth:`CacheStats.merge`).
        """
        if isinstance(other, RunStats):
            other = other.as_dict()
        self.cache.merge(other.get("cache", {}), distinct_caches=distinct_caches)
        self.sweep.merge(other.get("sweep", {}))
        self.traces_built += other.get("traces_built", 0)
        self.traces_reused += other.get("traces_reused", 0)
        for name in self._FABRIC_COUNTERS:
            setattr(self, name, getattr(self, name) + other.get(name, 0))

    def as_dict(self) -> dict:
        payload = {
            "cache": self.cache.as_dict(),
            "sweep": self.sweep.as_dict(),
            "traces_built": self.traces_built,
            "traces_reused": self.traces_reused,
        }
        for name in self._FABRIC_COUNTERS:
            payload[name] = getattr(self, name)
        return payload

    def summary(self) -> str:
        """One-line, human-readable rendering for run summaries."""
        calibrations = self.trace_calibrations_computed
        return (
            f"cache {self.cache.hits} hits / {self.cache.misses} misses / "
            f"{self.cache.stores} stores / {self.cache.errors} errors; "
            f"simulated {self.sweep.configs_simulated} configs "
            f"({self.sweep.drain_groups_computed} drain groups); "
            f"traces {self.traces_built} built / {self.traces_reused} reused; "
            f"fabric {calibrations} calibrations / "
            f"{self.trace_tensors_built} tensor builds / "
            f"{self.traces_mapped} mmaps ({self.trace_bytes_shared} bytes shared)"
        )


class RuntimeSession:
    """Shared state of one experiment-execution session.

    ``progress`` optionally carries a :class:`~repro.core.progress.ProgressToken`
    through the session: the execution funnels (:func:`repro.runtime.engine.simulate`
    / :func:`~repro.runtime.engine.analyze`) and the experiment runner read it
    from the *active* session, check it at cooperative checkpoints (raising
    :class:`~repro.core.progress.SweepCancelled` once cancelled) and emit
    per-layer/per-network progress events through it.  Attach tokens to
    short-lived per-request sessions (the serve layer's stats views), never to
    a session shared by concurrent jobs.
    """

    def __init__(
        self,
        cache: ResultCache | None = None,
        traces: TraceStore | None = None,
        progress: "ProgressToken | None" = None,
    ) -> None:
        self.cache = cache if cache is not None else ResultCache()
        self.traces = traces if traces is not None else TraceStore()
        self.sweep_stats = SweepStats()
        self.progress = progress

    def trace(self, spec) -> object:
        """The calibrated trace for ``spec``, via the shared store."""
        return self.traces.get(spec)

    def stats(self) -> RunStats:
        """Snapshot of this session's counters."""
        stats = RunStats()
        stats.cache.merge(self.cache.stats)
        stats.sweep.merge(self.sweep_stats)
        stats.traces_built = self.traces.builds
        stats.traces_reused = self.traces.reuses
        # Trace-fabric counters live on the shared artifact store; per-job
        # stats views (serve's _TraceView) have no ``artifacts`` and report 0.
        artifacts = getattr(self.traces, "artifacts", None)
        if artifacts is not None:
            for name, value in artifacts.counters().items():
                setattr(stats, name, value)
        return stats


#: The process-wide default session (memory-cached); threads without an
#: explicit :func:`use_session` override fall back to it.
_DEFAULT = RuntimeSession()

#: Per-thread stack of :func:`use_session` overrides.
_LOCAL = threading.local()


def current_session() -> RuntimeSession:
    """The active session: this thread's override, or the process default."""
    stack = getattr(_LOCAL, "stack", None)
    if stack:
        return stack[-1]
    return _DEFAULT


def resolve_trace_dir(
    cache_dir: str | Path | None = None,
    trace_dir: str | Path | None = None,
    no_trace_cache: bool = False,
) -> Path | None:
    """Where (if anywhere) this process's trace fabric lives.

    ``no_trace_cache`` disables the fabric outright; an explicit ``trace_dir``
    wins otherwise; an on-disk result cache defaults to a ``traces/``
    subdirectory beside it (so N workers sharing a cache dir also share
    trace artifacts); a memory-only session keeps traces in memory too.
    Note ``--no-cache --trace-dir DIR`` keeps the fabric *on* — result caching
    and trace sharing are independent tiers.
    """
    if no_trace_cache:
        return None
    if trace_dir is not None:
        return Path(trace_dir).expanduser()
    if cache_dir is not None:
        from repro.runtime.trace_cache import default_trace_dir

        return default_trace_dir(cache_dir)
    return None


def configure_session(
    cache_dir: str | Path | None = None,
    no_cache: bool = False,
    trace_dir: str | Path | None = None,
    no_trace_cache: bool = False,
    cache_backend: object | None = None,
) -> RuntimeSession:
    """Install (and return) a fresh process-wide default session.

    ``cache_dir`` selects the shared on-disk cache; ``None`` keeps the cache
    in memory.  ``no_cache`` disables result caching entirely.
    ``cache_backend`` overrides ``cache_dir`` for the *result* tier: a
    ``--cache-backend`` URI spec (e.g. ``remote://host:port``) or a
    :class:`~repro.runtime.backends.CacheBackend` instance, resolved by
    :func:`repro.cachenet.backend.resolve_backend` (``docs/cachenet.md``);
    the trace fabric still resolves against ``cache_dir``.  ``trace_dir``/
    ``no_trace_cache`` control the zero-copy trace fabric independently (see
    :func:`resolve_trace_dir` for the resolution rule).
    """
    global _DEFAULT
    if no_cache:
        cache = ResultCache.disabled()
    elif cache_backend is not None:
        from repro.cachenet.backend import resolve_backend

        cache = ResultCache(backend=resolve_backend(cache_backend))
    else:
        cache = ResultCache(directory=cache_dir)
    resolved = resolve_trace_dir(cache_dir, trace_dir, no_trace_cache)
    traces = None
    if resolved is not None:
        from repro.runtime.trace_cache import TraceArtifactStore

        traces = TraceStore(artifacts=TraceArtifactStore(resolved))
    _DEFAULT = RuntimeSession(cache=cache, traces=traces)
    return _DEFAULT


@contextlib.contextmanager
def use_session(session: RuntimeSession):
    """Temporarily make ``session`` the active session *for this thread*.

    Overrides nest; concurrent threads (the serve worker pool) can each hold
    a different active session without interfering.
    """
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    stack.append(session)
    try:
        yield session
    finally:
        stack.pop()


@contextlib.contextmanager
def isolated_session():
    """A fresh memory-only session, isolated from all prior runtime state.

    Benchmarks use this so each measured experiment pays its full cost instead
    of reusing simulations a previous benchmark left in the session cache.
    """
    with use_session(RuntimeSession()) as session:
        yield session
