"""Benchmark: regenerate Table IV (area and power, per-column synchronization)."""

import pytest

from repro.experiments.table4 import PAPER_TABLE4


def test_bench_table4(report):
    result = report("table4")
    for design, (unit, _, power) in PAPER_TABLE4.items():
        assert result.metadata[f"{design}:unit_mm2"] == pytest.approx(unit, rel=0.05)
        assert result.metadata[f"{design}:chip_w"] == pytest.approx(power, rel=0.05)
    # SSRs are cheap: one register costs only a few percent of the PRA-2b unit.
    assert (
        result.metadata["PRA-2b-1R:unit_mm2"] - result.metadata["PRA-2b-16R:unit_mm2"] < 0
    )
