"""Benchmark: regenerate Table II (per-layer neuron precision profiles)."""

from repro.nn.networks import NETWORK_NAMES


def test_bench_table2(report):
    result = report("table2")
    # Profiled widths must track the published profiles (same order of magnitude,
    # never collapsing to the full 16-bit storage width on average).
    for network in NETWORK_NAMES:
        published = result.metadata[f"{network}:published_mean"]
        profiled = result.metadata[f"{network}:profiled_mean"]
        assert 4.0 <= profiled <= 16.0
        assert abs(profiled - published) <= 5.0, network
