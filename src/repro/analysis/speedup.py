"""Speedup aggregation helpers and baseline adapters.

The cycle simulators produce :class:`~repro.core.accelerator.NetworkResult`
objects for Pragmatic configurations; this module provides the matching results
for the DaDianNao and Stripes baselines (so the figures can plot all engines
uniformly), plus the geometric-mean aggregation the paper uses across networks.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

from repro.arch.config import ChipConfig, DEFAULT_CHIP
from repro.baselines.dadiannao import DaDianNaoModel
from repro.baselines.stripes import StripesModel
from repro.core.accelerator import LayerResult, NetworkResult
from repro.nn.traces import NetworkTrace

__all__ = ["geometric_mean", "dadn_result", "stripes_result", "speedup_summary"]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (the cross-network aggregate of the paper)."""
    values = list(values)
    if not values:
        raise ValueError("cannot take the geometric mean of an empty sequence")
    if any(value <= 0 for value in values):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(value) for value in values) / len(values))


def dadn_result(trace: NetworkTrace, chip: ChipConfig = DEFAULT_CHIP) -> NetworkResult:
    """The DaDianNao baseline expressed as a :class:`NetworkResult` (speedup 1.0)."""
    model = DaDianNaoModel(chip)
    layers = tuple(
        LayerResult(
            layer_name=layer.name,
            cycles=float(model.layer_cycles(layer)),
            baseline_cycles=float(model.layer_cycles(layer)),
            terms=float(model.layer_terms(layer, trace.storage_bits)),
            baseline_terms=float(model.layer_terms(layer, trace.storage_bits)),
        )
        for layer in trace.network.layers
    )
    return NetworkResult(network=trace.network.name, accelerator=model.name, layers=layers)


def stripes_result(
    trace: NetworkTrace,
    chip: ChipConfig = DEFAULT_CHIP,
    precision_widths: tuple[int, ...] | None = None,
) -> NetworkResult:
    """Stripes cycle counts as a :class:`NetworkResult` relative to DaDianNao.

    ``precision_widths`` overrides the per-layer precisions attached to the
    trace (used for the 8-bit quantized study, where the published 16-bit
    profiles are capped at the 8-bit storage width).
    """
    stripes = StripesModel(chip)
    baseline = DaDianNaoModel(chip)
    layers = []
    for index, layer in enumerate(trace.network.layers):
        if precision_widths is not None:
            width: int = precision_widths[index]
            cycles = stripes.layer_cycles(layer, width)
            terms = stripes.layer_terms(layer, width)
        else:
            precision = trace.layer_precision(index)
            cycles = stripes.layer_cycles(layer, precision)
            terms = stripes.layer_terms(layer, precision)
        layers.append(
            LayerResult(
                layer_name=layer.name,
                cycles=float(cycles),
                baseline_cycles=float(baseline.layer_cycles(layer)),
                terms=float(terms),
                baseline_terms=float(baseline.layer_terms(layer, trace.storage_bits)),
            )
        )
    return NetworkResult(
        network=trace.network.name, accelerator=stripes.name, layers=tuple(layers)
    )


def speedup_summary(results: Mapping[str, Mapping[str, NetworkResult]]) -> dict[str, float]:
    """Geometric-mean speedup per engine over a results[engine][network] mapping."""
    return {
        engine: geometric_mean(result.speedup for result in by_network.values())
        for engine, by_network in results.items()
    }
