"""Content-addressed result cache.

One :class:`ResultCache` stores JSON payloads under fingerprint keys (see
:mod:`repro.runtime.fingerprint`).  Three modes share the interface:

* **disk** (``directory`` set) — one gzip-compressed ``<key>.json.gz`` file
  per entry, written atomically so concurrent process-pool workers can share
  the directory (legacy uncompressed ``<key>.json`` entries remain
  readable); a *bounded* in-process memo avoids re-reading entries this
  process already touched, and a persistent manifest
  (:mod:`repro.runtime.lifecycle`) indexes sizes and LRU timestamps so
  ``len(cache)``, :meth:`ResultCache.usage` and garbage collection never
  scan the directory.
* **memory** (``directory=None``) — a per-process dict; the default for
  library use so importing ``repro`` never writes to disk.  The memo *is*
  the store here, so it is never evicted.
* **disabled** (``ResultCache.disabled()``) — every lookup misses and stores
  are dropped (the ``--no-cache`` mode).

Corrupted entries (truncated writes, manual edits, schema drift) are treated
as misses: the entry is deleted, ``stats.errors`` is incremented and the
caller recomputes.  The key scheme the cache is addressed by, the on-disk
layout and the GC policy are documented in ``docs/runtime.md``.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass
from pathlib import Path

from repro.runtime import lifecycle

__all__ = ["CacheStats", "ResultCache", "DEFAULT_MEMO_ENTRIES"]

#: Format version of on-disk entries; mismatches are treated as corruption.
ENTRY_SCHEMA = 1

#: Default bound on the in-process memo of a *disk* cache.  A long-lived
#: serve process used to retain every payload it ever touched; beyond this
#: many, the least-recently-used memo entries are dropped (the disk copy
#: still hits).
DEFAULT_MEMO_ENTRIES = 512


@dataclass
class CacheStats:
    """Counters describing how a cache behaved during a run.

    ``hits``/``misses``/``stores``/``errors`` are counters (summed by
    :meth:`merge`).  ``disk_entries``/``disk_bytes``/``memo_entries`` and
    ``oldest_age_seconds`` are *gauges* describing current cache state —
    populated by :meth:`ResultCache.snapshot`, merged by ``max`` (merging
    snapshots of one shared cache must not double its size).
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0
    disk_entries: int = 0
    disk_bytes: int = 0
    memo_entries: int = 0
    oldest_age_seconds: float = 0.0

    def merge(self, other: "CacheStats | dict") -> None:
        """Accumulate counters (and max gauges) from another stats object."""
        if isinstance(other, CacheStats):
            other = other.as_dict()
        self.hits += other.get("hits", 0)
        self.misses += other.get("misses", 0)
        self.stores += other.get("stores", 0)
        self.errors += other.get("errors", 0)
        self.disk_entries = max(self.disk_entries, other.get("disk_entries", 0))
        self.disk_bytes = max(self.disk_bytes, other.get("disk_bytes", 0))
        self.memo_entries = max(self.memo_entries, other.get("memo_entries", 0))
        self.oldest_age_seconds = max(
            self.oldest_age_seconds, other.get("oldest_age_seconds", 0.0)
        )

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "errors": self.errors,
            "disk_entries": self.disk_entries,
            "disk_bytes": self.disk_bytes,
            "memo_entries": self.memo_entries,
            "oldest_age_seconds": self.oldest_age_seconds,
        }


class ResultCache:
    """Content-addressed cache of JSON payloads keyed by fingerprint."""

    def __init__(
        self,
        directory: str | Path | None = None,
        enabled: bool = True,
        memo_entries: int = DEFAULT_MEMO_ENTRIES,
    ) -> None:
        self.directory = Path(directory).expanduser() if directory is not None else None
        self.enabled = enabled
        self.memo_entries = memo_entries
        self.stats = CacheStats()
        #: LRU memo keyed by ``(key, kind)`` — the kind is part of the memo
        #: key so an entry stored under one kind can never answer a lookup
        #: for another (the disk path always enforced this).
        self._memory: collections.OrderedDict[tuple[str, str], dict] = (
            collections.OrderedDict()
        )
        self.manifest: lifecycle.CacheManifest | None = None
        if self.enabled and self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self.manifest = lifecycle.CacheManifest(self.directory)

    @classmethod
    def disabled(cls) -> "ResultCache":
        """A cache that never hits and never stores."""
        return cls(directory=None, enabled=False)

    @property
    def persistent(self) -> bool:
        """Whether entries survive this process (i.e. the cache is on disk)."""
        return self.enabled and self.directory is not None

    # ------------------------------------------------------------------- memo
    def _memo_get(self, key: str, kind: str) -> dict | None:
        payload = self._memory.get((key, kind))
        if payload is not None:
            self._memory.move_to_end((key, kind))
        return payload

    def _memo_put(self, key: str, kind: str, payload: dict) -> None:
        self._memory[(key, kind)] = payload
        self._memory.move_to_end((key, kind))
        # Only a disk cache may evict: in memory mode the memo is the store.
        if self.directory is not None:
            while len(self._memory) > self.memo_entries:
                self._memory.popitem(last=False)

    def _memo_drop(self, key: str) -> None:
        for memo_key in [mk for mk in self._memory if mk[0] == key]:
            del self._memory[memo_key]

    # ----------------------------------------------------------------- lookup
    def _drop_corrupt(self, path: Path, key: str) -> None:
        """Remove a corrupted entry (file + manifest record), counting the error."""
        self.stats.errors += 1
        try:
            path.unlink()
        except OSError:
            pass
        if self.manifest is not None:
            self.manifest.record_remove(key)

    def get(self, key: str, kind: str = "network_result") -> dict | None:
        """Payload stored under ``key``, or ``None`` on a miss."""
        if not self.enabled:
            self.stats.misses += 1
            return None
        payload = self._memo_get(key, kind)
        if payload is not None:
            self.stats.hits += 1
            if self.manifest is not None:
                # Memo hits must advance the on-disk LRU clock too, or GC
                # would evict the hottest entries first (record_use is
                # throttled, so this stays cheap on the hot path).
                self.manifest.record_use(key)
            return payload
        if self.directory is None:
            self.stats.misses += 1
            return None
        path = lifecycle.find_entry(self.directory, key)
        if path is None:
            self.stats.misses += 1
            return None
        try:
            entry = lifecycle.read_entry(path)
            if entry["schema"] != ENTRY_SCHEMA or entry["kind"] != kind:
                raise ValueError("cache entry schema mismatch")
            payload = entry["payload"]
            if not isinstance(payload, dict):
                raise ValueError("cache entry payload is not an object")
        except (OSError, ValueError, KeyError, TypeError):
            # Corrupted entry: drop it and recompute.
            self.stats.misses += 1
            self._drop_corrupt(path, key)
            return None
        self.stats.hits += 1
        self._memo_put(key, kind, payload)
        if self.manifest is not None:
            self.manifest.record_use(key)
        return payload

    def contains(self, key: str, kind: str = "network_result") -> bool:
        """Whether ``key`` resolves to a valid entry, without counting hit/miss.

        Used by the run planner to prune simulation jobs.  Validates the entry
        but deliberately does not retain its payload (the planning process
        never consumes the results, only the workers do); hit/miss counters
        are reserved for actual lookups, while corruption discovered during a
        probe still counts as an error and drops the entry.
        """
        if not self.enabled:
            return False
        if self._memo_get(key, kind) is not None:
            return True
        if self.directory is None:
            return False
        path = lifecycle.find_entry(self.directory, key)
        if path is None:
            return False
        try:
            entry = lifecycle.read_entry(path)
            valid = (
                entry["schema"] == ENTRY_SCHEMA
                and entry["kind"] == kind
                and isinstance(entry["payload"], dict)
            )
        except (OSError, ValueError, KeyError, TypeError):
            valid = False
        if not valid:
            self._drop_corrupt(path, key)
            return False
        return True

    # ------------------------------------------------------------------ store
    def put(self, key: str, payload: dict, kind: str = "network_result") -> None:
        """Store ``payload`` under ``key`` (atomic, compressed on disk).

        Disk failures (read-only directory, disk full) are not fatal: the
        entry stays available in memory for this process and the failure is
        counted in ``stats.errors``.
        """
        if not self.enabled:
            return
        self._memo_put(key, kind, payload)
        self.stats.stores += 1
        if self.directory is None:
            return
        entry = {"schema": ENTRY_SCHEMA, "kind": kind, "key": key, "payload": payload}
        try:
            size = lifecycle.write_entry(self.directory, key, entry)
        except OSError:
            self.stats.errors += 1
            return
        if self.manifest is not None:
            self.manifest.record_store(key, kind, size)

    # -------------------------------------------------------------- lifecycle
    def usage(self) -> dict:
        """Current cache state: entries, disk bytes, ages, memo size.

        Disk numbers come from the manifest — no directory scan.
        """
        usage = {
            "entries": len(self),
            "memo_entries": len(self._memory),
            "directory": str(self.directory) if self.directory is not None else None,
        }
        if self.manifest is not None:
            manifest_stats = self.manifest.stats()
            usage["entries"] = manifest_stats["entries"]
            usage["disk_bytes"] = manifest_stats["bytes"]
            usage["oldest_age_seconds"] = manifest_stats["oldest_age_seconds"]
            usage["lru_age_seconds"] = manifest_stats["lru_age_seconds"]
        else:
            usage["disk_bytes"] = 0
            usage["oldest_age_seconds"] = None
            usage["lru_age_seconds"] = None
        return usage

    def snapshot(self) -> CacheStats:
        """This cache's counters plus current state gauges (see CacheStats)."""
        snapshot = CacheStats()
        snapshot.merge(self.stats)
        usage = self.usage()
        snapshot.disk_entries = usage["entries"] if self.persistent else 0
        snapshot.disk_bytes = usage["disk_bytes"]
        snapshot.memo_entries = usage["memo_entries"]
        snapshot.oldest_age_seconds = usage["oldest_age_seconds"] or 0.0
        return snapshot

    def gc(
        self, max_bytes: int | None = None, max_age: float | None = None
    ) -> lifecycle.GCResult:
        """Garbage-collect the disk cache (LRU-first; see ``CacheManifest.gc``).

        Evicted keys are also dropped from the in-process memo so a bounded
        cache never serves an entry GC decided to retire.  A memory-only or
        disabled cache has nothing to collect and returns an empty result.
        """
        if self.manifest is None:
            return lifecycle.GCResult()
        result = self.manifest.gc(max_bytes=max_bytes, max_age=max_age)
        for key in result.removed_keys:
            self._memo_drop(key)
        return result

    def clear(self) -> int:
        """Remove every entry (disk and memo); returns disk entries removed."""
        removed = 0
        if self.manifest is not None:
            removed = self.manifest.clear()
        self._memory.clear()
        return removed

    def __len__(self) -> int:
        if not self.enabled:
            return 0
        if self.directory is None:
            return len(self._memory)
        assert self.manifest is not None
        return len(self.manifest)
