"""repro.cachenet — the network cache tier (``docs/cachenet.md``).

A standalone cache server (``python -m repro cacheserve``) exposes one
content-addressed entry store — the same gzip entry codec and lifecycle
manifest every filesystem cache uses — over a length-prefixed JSON frame
protocol, so many hosts share one warm cache instead of each keeping its own.
The client side plugs into the runtime through the
:class:`~repro.runtime.backends.CacheBackend` seam:

* :class:`~repro.cachenet.backend.RemoteBackend` — a synchronous TCP client
  with connect/request timeouts, bounded retry with exponential backoff and
  jitter, and a circuit breaker that degrades to cache-miss (a simulation
  never fails because the cache tier is down).
* :class:`~repro.cachenet.backend.TieredBackend` — a write-through
  memory→remote composite with negative-lookup suppression; what
  ``--cache-backend remote://host:port`` selects.

``docs/cachenet.md`` documents the protocol, the failure/degradation
semantics and the backend URI scheme.
"""

from repro.cachenet.backend import RemoteBackend, TieredBackend, resolve_backend
from repro.cachenet.server import CacheServer

__all__ = ["RemoteBackend", "TieredBackend", "resolve_backend", "CacheServer"]
