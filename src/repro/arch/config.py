"""Chip-level configuration shared by all accelerator models.

Every design evaluated in the paper — DaDianNao, Stripes and Pragmatic — keeps
the same overall organization (Section IV-B): 16 tiles, each pairing 16 filter
lanes with 16 synapse lanes per filter, a 2 MB synapse buffer (SB) per tile, a
4 MB central neuron memory (NM) and per-tile NBin/NBout SRAM buffers.  Stripes
and Pragmatic additionally process 16 windows in parallel so that their
worst-case throughput matches DaDianNao.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ChipConfig", "DEFAULT_CHIP"]


@dataclass(frozen=True)
class ChipConfig:
    """Structural parameters of the accelerator chip.

    The defaults reproduce the DaDianNao configuration the paper builds on.
    """

    tiles: int = 16
    filters_per_tile: int = 16
    synapses_per_filter_lane: int = 16
    pallet_windows: int = 16
    storage_bits: int = 16
    frequency_ghz: float = 0.606
    nm_row_bytes: int = 512
    sb_bytes_per_tile: int = 2 * 1024 * 1024
    nm_bytes: int = 4 * 1024 * 1024
    nbin_bytes: int = 2 * 1024
    nbout_bytes: int = 2 * 1024

    def __post_init__(self) -> None:
        for field_name in (
            "tiles",
            "filters_per_tile",
            "synapses_per_filter_lane",
            "pallet_windows",
            "storage_bits",
        ):
            if getattr(self, field_name) < 1:
                raise ValueError(f"{field_name} must be positive")
        if self.frequency_ghz <= 0:
            raise ValueError("frequency_ghz must be positive")

    @property
    def filters_per_cycle(self) -> int:
        """Filters processed concurrently chip-wide (256 for DaDN)."""
        return self.tiles * self.filters_per_tile

    @property
    def synapses_per_cycle(self) -> int:
        """Synapses consumed per cycle chip-wide (4096 for DaDN)."""
        return self.filters_per_cycle * self.synapses_per_filter_lane

    @property
    def bit_parallel_terms_per_cycle(self) -> int:
        """Terms (single-bit products) a bit-parallel chip computes per cycle."""
        return self.synapses_per_cycle * self.storage_bits

    @property
    def serial_terms_per_cycle(self) -> int:
        """Terms per cycle of the bit-serial designs (one per synapse and window lane)."""
        return self.synapses_per_cycle * self.pallet_windows

    @property
    def neuron_bytes(self) -> int:
        """Bytes per stored neuron."""
        return max(1, self.storage_bits // 8)


#: The configuration every experiment uses unless stated otherwise.
DEFAULT_CHIP = ChipConfig()
