"""Table II — per-layer neuron precision profiles."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, Preset, get_preset
from repro.nn.networks import get_network
from repro.nn.precision import profile_from_values, table2_precisions
from repro.runtime import TraceSpec, current_session

__all__ = ["run"]


def run(preset: str | Preset = "fast", seed: int = 0) -> ExperimentResult:
    """Report the published Table II profiles next to trace-profiled widths.

    The published profiles are what Stripes and PRA-red consume; the profiled
    column exercises the distribution-based profiler on the calibrated traces
    (the stand-in for the accuracy-driven method of Judd et al.).
    """
    config = get_preset(preset)
    headers = ["network", "published (Table II)", "profiled from trace"]
    rows: list[list[object]] = []
    metadata: dict[str, float] = {}
    for name in config.networks:
        network = get_network(name)
        published = table2_precisions(network)
        trace = current_session().trace(TraceSpec(network=name, seed=seed))
        profiled = []
        for index in range(network.num_layers):
            values = trace.sample_layer_values(index, config.samples_per_layer)
            profiled.append(profile_from_values(values, storage_bits=16).width)
        rows.append(
            [
                network.name,
                "-".join(str(p) for p in published),
                "-".join(str(p) for p in profiled),
            ]
        )
        metadata[f"{network.name}:published_mean"] = sum(published) / len(published)
        metadata[f"{network.name}:profiled_mean"] = sum(profiled) / len(profiled)
    notes = (
        "The published profiles are shipped as data and drive Stripes and PRA-red.\n"
        "Profiled widths come from the coverage-based profiler on synthetic traces\n"
        "and are expected to track, not equal, the accuracy-driven published values."
    )
    return ExperimentResult(
        experiment="table2",
        title="Table II: per-layer neuron precision profiles (bits)",
        headers=headers,
        rows=rows,
        notes=notes,
        metadata=metadata,
    )
