"""Benchmark: regenerate Table V (benefit of software-provided precisions)."""


def test_bench_table5(report):
    result = report("table5")
    average = result.metadata["average:benefit"]
    # Paper: software guidance contributes 19% on average (10%-23% per network);
    # the reproduction should land in the same band.
    assert 0.05 <= average <= 0.40
    for key, value in result.metadata.items():
        if key.endswith(":benefit") and not key.startswith(("average", "geomean")):
            assert value >= 0.0, key
