#!/usr/bin/env python3
"""Quickstart: simulate Pragmatic on AlexNet and compare it against the baselines.

This example walks the public API end to end:

1. build a calibrated activation trace for AlexNet,
2. simulate the DaDianNao, Stripes and Pragmatic accelerators on it,
3. report per-layer and network speedups, and
4. attach the area/power/energy-efficiency numbers of each design.

Run it with::

    python examples/quickstart.py [network]
"""

from __future__ import annotations

import sys

from repro.analysis.speedup import dadn_result, stripes_result
from repro.analysis.tables import format_ratio, format_table
from repro.arch.tiling import SamplingConfig
from repro.core.accelerator import PragmaticAccelerator
from repro.core.variants import column_variant, pallet_variant
from repro.energy.area import design_area
from repro.energy.efficiency import design_efficiency
from repro.energy.power import design_power
from repro.nn.calibration import calibrated_trace


def main(network: str = "alexnet") -> None:
    print(f"== Bit-Pragmatic quickstart on {network} ==\n")

    # 1. A calibrated synthetic activation trace (bit statistics match Table I).
    trace = calibrated_trace(network)
    print(trace.network.describe())
    print()

    # 2. Simulate the accelerators.  Sampling a handful of pallets per layer is
    #    enough for stable network-level numbers.
    sampling = SamplingConfig(max_pallets=8)
    designs = {
        "DaDN": None,
        "Stripes": None,
        "PRA-2b": pallet_variant(2),
        "PRA-2b-1R": column_variant(1),
    }
    results = {
        "DaDN": dadn_result(trace),
        "Stripes": stripes_result(trace),
    }
    for name, config in designs.items():
        if config is not None:
            results[name] = PragmaticAccelerator(config).simulate_network(trace, sampling)

    # 3. Per-layer speedups of the headline design.
    print("Per-layer speedup of PRA-2b over DaDianNao:")
    print(results["PRA-2b"].summary())
    print()

    # 4. Network-level comparison including area, power and energy efficiency.
    rows = []
    for name, config in designs.items():
        design = config if config is not None else name.lower()
        result = results[name]
        area = design_area(design)
        power = design_power(design)
        efficiency = design_efficiency(design, result)
        rows.append(
            [
                name,
                format_ratio(result.speedup),
                f"{area.chip_mm2:.0f} mm2",
                f"{power.chip_w:.1f} W",
                format_ratio(efficiency.efficiency),
            ]
        )
    print(format_table(["design", "speedup", "chip area", "chip power", "energy eff."], rows))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "alexnet")
