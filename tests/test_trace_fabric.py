"""Tests for the zero-copy trace fabric (:mod:`repro.runtime.trace_cache`).

The load-bearing claim of the fabric is bit-identity: a tensor resolved
through a read-only mmap of a published artifact must be *exactly* equal —
values and dtype — to the one generate-on-demand produces for the same spec.
These tests prove it over randomized specs, then cover the publication race
(N processes, one artifact), lifecycle GC of ``.npy`` artifacts, calibration
persistence, the bounded per-trace tensor LRU, and the trace-dir resolution
policy.
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro.nn.traces import FULL_CACHE_ENTRIES, TraceBacking
from repro.runtime import lifecycle
from repro.runtime.fingerprint import trace_tensor_key
from repro.runtime.session import RuntimeSession, resolve_trace_dir
from repro.runtime.trace_cache import (
    MmapTraceBacking,
    TraceArtifactStore,
    default_trace_dir,
)
from repro.runtime.trace_store import TraceSpec, TraceStore


def _random_specs(count: int) -> list[TraceSpec]:
    """Randomized-but-reproducible specs spanning network/seed/representation."""
    rng = np.random.default_rng(20260808)
    specs = []
    for _ in range(count):
        specs.append(
            TraceSpec(
                network=str(rng.choice(["alexnet", "nin"])),
                seed=int(rng.integers(0, 100)),
                dense_first_layer=bool(rng.integers(0, 2)),
            )
        )
    return specs


def _fabric_trace(directory, spec):
    """A trace wired through a fabric store rooted at ``directory``."""
    artifacts = TraceArtifactStore(directory)
    trace = TraceStore(artifacts=artifacts).get(spec)
    return artifacts, trace


class TestGoldenBitIdentity:
    """The mmap path returns arrays exactly equal to generate-on-demand."""

    @pytest.mark.parametrize("spec", _random_specs(3), ids=lambda s: f"{s.network}-s{s.seed}")
    def test_backed_equals_generated_exactly(self, tmp_path, spec):
        artifacts, trace = _fabric_trace(tmp_path / "traces", spec)
        layers = [0, trace.network.num_layers - 1]
        for layer_index in layers:
            golden = trace.generate_layer_input(layer_index)
            backed = trace.layer_input(layer_index)
            assert isinstance(backed, np.memmap)
            assert not backed.flags.writeable
            assert backed.dtype == golden.dtype
            assert backed.shape == golden.shape
            assert np.array_equal(np.asarray(backed), golden)

    def test_second_store_maps_without_building(self, tmp_path):
        spec = TraceSpec(network="alexnet", seed=5)
        first, trace = _fabric_trace(tmp_path / "traces", spec)
        golden = trace.layer_input(0)
        assert first.counters()["trace_tensors_built"] == 1

        second, warm = _fabric_trace(tmp_path / "traces", spec)
        mapped = warm.layer_input(0)
        counters = second.counters()
        assert counters["trace_tensors_built"] == 0
        assert counters["traces_mapped"] == 1
        assert counters["trace_bytes_shared"] > 0
        assert np.array_equal(np.asarray(mapped), np.asarray(golden))

    def test_sampling_is_independent_of_backing(self, tmp_path):
        spec = TraceSpec(network="alexnet", seed=5)
        _, backed = _fabric_trace(tmp_path / "traces", spec)
        pure = TraceStore().get(spec)
        assert np.array_equal(
            backed.sample_layer_values(0, 512), pure.sample_layer_values(0, 512)
        )

    def test_corrupt_artifact_is_dropped_and_rebuilt(self, tmp_path):
        spec = TraceSpec(network="alexnet", seed=5)
        directory = tmp_path / "traces"
        artifacts, trace = _fabric_trace(directory, spec)
        # Copy before corrupting: truncating a file in place invalidates live
        # mappings of it (the fabric itself only ever replaces via rename,
        # which keeps old mappings on the old inode).
        golden = np.array(trace.layer_input(0))
        path = lifecycle.tensor_path(directory, trace_tensor_key(spec, 0))
        path.write_bytes(b"not a npy file")

        fresh, again = _fabric_trace(directory, spec)
        rebuilt = again.layer_input(0)
        assert fresh.errors == 1
        assert fresh.counters()["trace_tensors_built"] == 1
        assert np.array_equal(np.asarray(rebuilt), golden)


_RACE_SPEC = TraceSpec(network="alexnet", seed=77)


def _race_builder() -> np.ndarray:
    # Deterministic stand-in tensor: the race is about publication, not
    # generation, and a cheap builder keeps the window between processes tight.
    return np.arange(64 * 1024, dtype=np.int64).reshape(64, 32, 32)


def _race_worker(directory, barrier, queue):
    store = TraceArtifactStore(directory)
    barrier.wait()
    tensor = store.layer_tensor(_RACE_SPEC, 0, _race_builder)
    queue.put(
        (int(np.asarray(tensor).sum()), tuple(tensor.shape), store.errors)
    )


class TestPublicationRace:
    def test_concurrent_publication_one_artifact_no_torn_reads(self, tmp_path):
        directory = tmp_path / "traces"
        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(4)
        queue = context.Queue()
        workers = [
            context.Process(target=_race_worker, args=(directory, barrier, queue))
            for _ in range(4)
        ]
        for worker in workers:
            worker.start()
        results = [queue.get(timeout=120) for _ in workers]
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0

        golden = _race_builder()
        for checksum, shape, errors in results:
            assert checksum == int(golden.sum())
            assert shape == golden.shape
            assert errors == 0
        # Exactly one published artifact, no temp files left behind.
        artifacts = [name for name in os.listdir(directory) if name.endswith(".npy")]
        assert len(artifacts) == 1
        assert not [name for name in os.listdir(directory) if name.endswith(".tmp")]
        published = np.load(directory / artifacts[0])
        assert np.array_equal(published, golden)


class TestCalibrationPersistence:
    def test_second_store_loads_instead_of_computing(self, tmp_path):
        spec = TraceSpec(network="alexnet", seed=9)
        directory = tmp_path / "traces"
        cold = TraceArtifactStore(directory)
        trace_cold = TraceStore(artifacts=cold).get(spec)
        assert cold.counters()["trace_calibrations_computed"] == 1
        assert cold.counters()["trace_calibrations_loaded"] == 0

        warm = TraceArtifactStore(directory)
        trace_warm = TraceStore(artifacts=warm).get(spec)
        counters = warm.counters()
        assert counters["trace_calibrations_computed"] == 0
        assert counters["trace_calibrations_loaded"] == 1
        # A persisted calibration yields the identical trace parameterization.
        assert trace_warm.params == trace_cold.params
        assert trace_warm.precisions == trace_cold.precisions

    def test_usage_classifies_both_kinds(self, tmp_path):
        spec = TraceSpec(network="alexnet", seed=9)
        artifacts, trace = _fabric_trace(tmp_path / "traces", spec)
        trace.layer_input(0)
        usage = artifacts.usage()
        assert usage["tensors"] == 1
        assert usage["calibrations"] == 1
        assert usage["entries"] == 2
        assert usage["tensor_bytes"] > 0
        assert usage["disk_bytes"] > usage["tensor_bytes"]


class TestLifecycleGC:
    def test_gc_evicts_tensor_artifacts_then_rematerializes(self, tmp_path):
        spec = TraceSpec(network="alexnet", seed=13)
        directory = tmp_path / "traces"
        artifacts, trace = _fabric_trace(directory, spec)
        trace.layer_input(0)
        path = lifecycle.tensor_path(directory, trace_tensor_key(spec, 0))
        assert path.exists()

        result = artifacts.gc(max_bytes=0)
        assert result.removed_entries == len(result.removed_keys) > 0
        assert result.remaining_entries == 0
        assert not path.exists()
        assert artifacts.usage()["entries"] == 0

        # The fabric degrades gracefully: the next resolution rebuilds.
        rebuilt = trace.layer_input(0)
        assert np.array_equal(np.asarray(rebuilt), trace.generate_layer_input(0))
        assert path.exists()

    def test_instance_caps_are_gc_defaults(self, tmp_path):
        spec = TraceSpec(network="alexnet", seed=13)
        directory = tmp_path / "traces"
        artifacts = TraceArtifactStore(directory, max_bytes=0)
        trace = TraceStore(artifacts=artifacts).get(spec)
        trace.layer_input(0)
        assert artifacts.gc().remaining_entries == 0

    def test_gc_without_caps_is_a_noop(self, tmp_path):
        spec = TraceSpec(network="alexnet", seed=13)
        artifacts, trace = _fabric_trace(tmp_path / "traces", spec)
        trace.layer_input(0)
        before = len(artifacts)
        result = artifacts.gc()
        assert result.remaining_entries == before == len(artifacts)

    def test_clear_removes_everything(self, tmp_path):
        spec = TraceSpec(network="alexnet", seed=13)
        artifacts, trace = _fabric_trace(tmp_path / "traces", spec)
        trace.layer_input(0)
        removed = artifacts.clear()
        assert removed == 2  # tensor + calibration
        assert len(artifacts) == 0


class TestFullCacheLRU:
    def test_cache_is_bounded_and_lru_ordered(self):
        spec = TraceSpec(network="alexnet", seed=2)
        trace = TraceStore().get(spec)
        layers = trace.network.num_layers
        if layers <= FULL_CACHE_ENTRIES:
            pytest.skip("network too small to overflow the trace LRU")
        for layer_index in range(FULL_CACHE_ENTRIES):
            trace.layer_input(layer_index, cache=True)
        assert len(trace._full_cache) == FULL_CACHE_ENTRIES
        # Touch layer 0 so layer 1 becomes least-recently-used, then overflow.
        trace.layer_input(0, cache=True)
        trace.layer_input(FULL_CACHE_ENTRIES, cache=True)
        assert len(trace._full_cache) == FULL_CACHE_ENTRIES
        assert 0 in trace._full_cache
        assert FULL_CACHE_ENTRIES in trace._full_cache
        assert 1 not in trace._full_cache

    def test_cached_tensor_is_returned_without_backing_call(self):
        calls = []

        class CountingBacking(TraceBacking):
            def layer_tensor(self, trace, layer_index):
                calls.append(layer_index)
                return None

        spec = TraceSpec(network="alexnet", seed=2)
        trace = TraceStore().get(spec)
        trace.attach_backing(CountingBacking())
        first = trace.layer_input(0, cache=True)
        second = trace.layer_input(0)
        assert second is first
        assert calls == [0]


class TestSessionWiring:
    def test_resolve_trace_dir_policy(self, tmp_path):
        assert resolve_trace_dir(None, None, False) is None
        assert resolve_trace_dir(None, None, True) is None
        assert resolve_trace_dir(tmp_path, None, False) == default_trace_dir(tmp_path)
        assert resolve_trace_dir(tmp_path, tmp_path / "t", False) == tmp_path / "t"
        # --no-cache --trace-dir keeps the fabric on (independent tiers)...
        assert resolve_trace_dir(None, tmp_path / "t", False) == tmp_path / "t"
        # ...while --no-trace-cache always wins.
        assert resolve_trace_dir(tmp_path, tmp_path / "t", True) is None

    def test_session_stats_surface_fabric_counters(self, tmp_path):
        spec = TraceSpec(network="alexnet", seed=5)
        artifacts = TraceArtifactStore(tmp_path / "traces")
        session = RuntimeSession(traces=TraceStore(artifacts=artifacts))
        session.trace(spec).layer_input(0)
        stats = session.stats()
        assert stats.trace_calibrations_computed == 1
        assert stats.trace_tensors_built == 1
        assert stats.traces_mapped >= 1
        assert stats.trace_bytes_shared > 0
        assert "fabric" in stats.summary()
        wire = stats.as_dict()
        assert wire["traces_mapped"] == stats.traces_mapped
        assert wire["trace_bytes_shared"] == stats.trace_bytes_shared

    def test_reset_counters_zeroes_the_snapshot(self, tmp_path):
        spec = TraceSpec(network="alexnet", seed=5)
        artifacts, trace = _fabric_trace(tmp_path / "traces", spec)
        trace.layer_input(0)
        artifacts.reset_counters()
        assert all(value == 0 for value in artifacts.counters().values())

    def test_mmap_backing_uses_trace_generator_as_builder(self, tmp_path):
        spec = TraceSpec(network="alexnet", seed=5)
        artifacts = TraceArtifactStore(tmp_path / "traces")
        trace = TraceStore().get(spec)
        backing = MmapTraceBacking(artifacts, spec)
        tensor = backing.layer_tensor(trace, 1)
        assert np.array_equal(np.asarray(tensor), trace.generate_layer_input(1))
