"""Content-addressed result cache.

One :class:`ResultCache` stores JSON payloads under fingerprint keys (see
:mod:`repro.runtime.fingerprint`).  Three modes share the interface:

* **disk** (``directory`` set) — one ``<key>.json`` file per entry, written
  atomically so concurrent process-pool workers can share the directory; an
  in-process memo avoids re-reading entries this process already touched.
* **memory** (``directory=None``) — a per-process dict; the default for
  library use so importing ``repro`` never writes to disk.
* **disabled** (``ResultCache.disabled()``) — every lookup misses and stores
  are dropped (the ``--no-cache`` mode).

Corrupted entries (truncated writes, manual edits, schema drift) are treated
as misses: the entry is deleted, ``stats.errors`` is incremented and the
caller recomputes.  The key scheme the cache is addressed by is documented in
``docs/runtime.md``.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["CacheStats", "ResultCache"]

#: Format version of on-disk entries; mismatches are treated as corruption.
ENTRY_SCHEMA = 1


@dataclass
class CacheStats:
    """Counters describing how a cache behaved during a run."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0

    def merge(self, other: "CacheStats | dict") -> None:
        """Accumulate counters from another stats object (or its dict form)."""
        if isinstance(other, CacheStats):
            other = other.as_dict()
        self.hits += other.get("hits", 0)
        self.misses += other.get("misses", 0)
        self.stores += other.get("stores", 0)
        self.errors += other.get("errors", 0)

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "errors": self.errors,
        }


class ResultCache:
    """Content-addressed cache of JSON payloads keyed by fingerprint."""

    def __init__(self, directory: str | Path | None = None, enabled: bool = True) -> None:
        self.directory = Path(directory).expanduser() if directory is not None else None
        self.enabled = enabled
        self.stats = CacheStats()
        self._memory: dict[str, dict] = {}
        if self.enabled and self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)

    @classmethod
    def disabled(cls) -> "ResultCache":
        """A cache that never hits and never stores."""
        return cls(directory=None, enabled=False)

    @property
    def persistent(self) -> bool:
        """Whether entries survive this process (i.e. the cache is on disk)."""
        return self.enabled and self.directory is not None

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.json"

    # ------------------------------------------------------------------ lookup
    def get(self, key: str, kind: str = "network_result") -> dict | None:
        """Payload stored under ``key``, or ``None`` on a miss."""
        if not self.enabled:
            self.stats.misses += 1
            return None
        if key in self._memory:
            self.stats.hits += 1
            return self._memory[key]
        if self.directory is None:
            self.stats.misses += 1
            return None
        path = self._path(key)
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
            if entry["schema"] != ENTRY_SCHEMA or entry["kind"] != kind:
                raise ValueError("cache entry schema mismatch")
            payload = entry["payload"]
            if not isinstance(payload, dict):
                raise ValueError("cache entry payload is not an object")
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Corrupted entry: drop it and recompute.
            self.stats.errors += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        self._memory[key] = payload
        return payload

    def contains(self, key: str, kind: str = "network_result") -> bool:
        """Whether ``key`` resolves to a valid entry, without counting hit/miss.

        Used by the run planner to prune simulation jobs.  Validates the entry
        but deliberately does not retain its payload (the planning process
        never consumes the results, only the workers do); hit/miss counters
        are reserved for actual lookups, while corruption discovered during a
        probe still counts as an error and drops the entry.
        """
        if not self.enabled:
            return False
        if key in self._memory:
            return True
        if self.directory is None:
            return False
        path = self._path(key)
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
            valid = (
                entry["schema"] == ENTRY_SCHEMA
                and entry["kind"] == kind
                and isinstance(entry["payload"], dict)
            )
        except FileNotFoundError:
            return False
        except (OSError, ValueError, KeyError, TypeError):
            valid = False
        if not valid:
            self.stats.errors += 1
            try:
                path.unlink()
            except OSError:
                pass
            return False
        return True

    # ------------------------------------------------------------------ store
    def put(self, key: str, payload: dict, kind: str = "network_result") -> None:
        """Store ``payload`` under ``key`` (atomic on disk).

        Disk failures (read-only directory, disk full) are not fatal: the
        entry stays available in memory for this process and the failure is
        counted in ``stats.errors``.
        """
        if not self.enabled:
            return
        self._memory[key] = payload
        self.stats.stores += 1
        if self.directory is None:
            return
        entry = {"schema": ENTRY_SCHEMA, "kind": kind, "key": key, "payload": payload}
        text = json.dumps(entry, sort_keys=True)
        tmp_name = None
        try:
            descriptor, tmp_name = tempfile.mkstemp(
                dir=self.directory, prefix=f".{key[:16]}-", suffix=".tmp"
            )
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp_name, self._path(key))
        except OSError:
            self.stats.errors += 1
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass

    def __len__(self) -> int:
        if not self.enabled:
            return 0
        if self.directory is None:
            return len(self._memory)
        return sum(1 for _ in self.directory.glob("*.json"))
