"""Batched drain kernel: whole-array cycle computation for the sweep engine.

The drain computation — how many cycles a PIP column needs to stream its
neurons' oneffsets through the two-stage shifter — is the hot path of every
sweep.  The original implementation (kept as
:func:`repro.core.scheduling._reference_drain_cycles`) walks the schedule one
cycle at a time over a boolean bit-plane tensor; this module replaces it with
a packed formulation that the whole batch shares:

* **Packed masks.**  Every column's 16 neuron magnitudes are stored as one
  ``uint16`` bit mask per lane (``pack_drain_masks``), 16x denser than the
  boolean bit-plane tensor, so one kernel call can hold *all* sampled pallets
  and *all* drain groups of a layer at once.
* **Closed-form fast path.**  A column whose set bits all fit inside one
  first-stage window (``highest - lowest < reach``) never stalls: it finishes
  in exactly its busiest lane's popcount.  This generalizes the full-reach
  shortcut (``reach >= positions``) and resolves the large majority of
  trimmed columns without any iteration.
* **Batched frontier loop.**  The remaining slow columns of *every* drain
  group advance together, one whole-array update per cycle, so the number of
  Python-level iterations is bounded by the maximum drain depth across the
  whole batch — not summed per group as the per-group loop was.

:func:`batched_drain_cycles` evaluates many ``first_stage_bits`` reaches over
one packed tensor in a single call (the per-column statistics are computed
once and shared); :func:`repro.core.sweep.sweep_network` dispatches all of a
layer's ``(first_stage_bits, software_trimming)`` drain groups through it.

The results are **bit-identical** to the reference scheduler — the golden
suite (``tests/test_core_kernels.py``) proves it against both
``_reference_drain_cycles`` and :class:`~repro.core.accelerator.PragmaticAccelerator`,
and ``docs/runtime.md`` documents the guarantee.

An optional compiled backend for the frontier loop can be selected with
``REPRO_DRAIN_BACKEND=numba``; when numba is not installed (or fails to
compile) the kernel silently falls back to the numpy loop, and both backends
produce identical cycle counts.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "KERNEL_MAX_POSITIONS",
    "pack_drain_masks",
    "pack_bit_planes",
    "batched_drain_cycles",
    "packed_essential_terms",
    "drain_backend",
]

#: Widest bit position the packed representation holds (``uint16`` masks).
KERNEL_MAX_POSITIONS = 16

#: Sentinel head value of an empty lane (no outstanding oneffsets).
_EMPTY_HEAD = KERNEL_MAX_POSITIONS

#: Environment variable selecting the frontier-loop backend.
_BACKEND_ENV = "REPRO_DRAIN_BACKEND"

# Lazily-built lookup tables over all 2**16 masks: trailing-zero position
# (lowest set bit; 16 for mask 0), popcount, and highest set bit (-1 for 0).
_TZ16: np.ndarray | None = None
_POP16: np.ndarray | None = None
_HB16: np.ndarray | None = None

_NUMBA_FRONTIER = None
_NUMBA_FAILED = False


def _tables() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The (trailing-zero, popcount, highest-bit) tables, built once."""
    global _TZ16, _POP16, _HB16
    if _TZ16 is None:
        n = np.arange(1 << KERNEL_MAX_POSITIONS, dtype=np.uint32)
        tz = np.full(n.size, _EMPTY_HEAD, dtype=np.uint8)
        hb = np.full(n.size, -1, dtype=np.int8)
        pop = np.zeros(n.size, dtype=np.uint8)
        for position in range(KERNEL_MAX_POSITIONS - 1, -1, -1):
            set_here = ((n >> position) & 1).astype(bool)
            tz[set_here] = position
            pop += set_here
        for position in range(KERNEL_MAX_POSITIONS):
            hb[((n >> position) & 1).astype(bool)] = position
        _TZ16, _POP16, _HB16 = tz, pop, hb
    return _TZ16, _POP16, _HB16


# --------------------------------------------------------------------- packing
def pack_drain_masks(values: np.ndarray, storage_bits: int) -> np.ndarray:
    """Pack integer neuron values into per-lane ``uint16`` bit masks.

    ``values`` may have any shape; element ``[...]`` of the result holds the
    magnitude bits of the corresponding neuron.  Raises :class:`ValueError`
    when a magnitude does not fit in ``storage_bits`` (same contract as
    :func:`repro.numerics.fixedpoint.bit_matrix`) or when ``storage_bits``
    exceeds the packed width.
    """
    if not 1 <= storage_bits <= KERNEL_MAX_POSITIONS:
        raise ValueError(
            f"storage_bits must be in [1, {KERNEL_MAX_POSITIONS}], got {storage_bits}"
        )
    magnitudes = np.abs(np.asarray(values, dtype=np.int64))
    limit = (1 << storage_bits) - 1
    if magnitudes.size and int(magnitudes.max()) > limit:
        raise ValueError(
            f"magnitude {int(magnitudes.max())} does not fit in {storage_bits} bits "
            f"(max {limit})"
        )
    return magnitudes.astype(np.uint16)


def pack_bit_planes(bits: np.ndarray) -> np.ndarray:
    """Pack a boolean bit-plane tensor ``(..., positions)`` into ``uint16`` masks."""
    arr = np.asarray(bits, dtype=bool)
    if arr.ndim < 1:
        raise ValueError("bits must have at least a positions dimension")
    positions = arr.shape[-1]
    if positions > KERNEL_MAX_POSITIONS:
        raise ValueError(
            f"cannot pack {positions} bit positions into {KERNEL_MAX_POSITIONS}-bit masks"
        )
    weights = (np.int64(1) << np.arange(positions, dtype=np.int64))
    return np.tensordot(arr.astype(np.int64), weights, axes=([-1], [0])).astype(np.uint16)


def packed_essential_terms(masks: np.ndarray) -> float:
    """Total essential-bit terms (set bits) of a packed mask tensor."""
    _, pop, _ = _tables()
    masks = np.asarray(masks, dtype=np.uint16)
    return float(pop[masks].sum(dtype=np.int64))


# -------------------------------------------------------------- frontier loops
def _frontier_numpy(masks: np.ndarray, reach: np.ndarray) -> np.ndarray:
    """Drain the slow columns with one whole-array update per cycle.

    ``masks`` is ``uint16 [columns, lanes]`` (consumed by value — the caller
    passes a private copy); ``reach`` is ``int16 [columns]``.  Returns the
    per-column cycle counts.  Columns retire from the working set as they
    drain, so late iterations touch only the deepest columns.
    """
    tz, _, _ = _tables()
    out = np.zeros(masks.shape[0], dtype=np.int64)
    cycles = np.zeros(masks.shape[0], dtype=np.int64)
    index = np.arange(masks.shape[0])
    reach = reach.astype(np.int16, copy=False)
    while masks.size:
        heads = tz[masks].astype(np.int16)
        column_minimum = heads.min(axis=1)
        eligible = (heads < _EMPTY_HEAD) & (
            heads < (column_minimum + reach)[:, None]
        )
        masks = np.where(eligible, masks & (masks - np.uint16(1)), masks)
        cycles += 1
        alive = masks.any(axis=1)
        if not alive.all():
            finished = ~alive
            out[index[finished]] = cycles[finished]
            masks = masks[alive]
            reach = reach[alive]
            cycles = cycles[alive]
            index = index[alive]
    return out


def _load_numba_frontier():
    """JIT-compile the frontier loop with numba, or ``None`` when unavailable."""
    global _NUMBA_FRONTIER, _NUMBA_FAILED
    if _NUMBA_FRONTIER is not None:
        return _NUMBA_FRONTIER
    if _NUMBA_FAILED:
        return None
    try:
        import numba

        @numba.njit(cache=False)
        def frontier(masks, reach):  # pragma: no cover - requires numba
            rows, lanes = masks.shape
            out = np.zeros(rows, dtype=np.int64)
            for row in range(rows):
                cycles = 0
                while True:
                    column_minimum = 64
                    for lane in range(lanes):
                        value = masks[row, lane]
                        if value != 0:
                            trailing = 0
                            while value & 1 == 0:
                                value >>= 1
                                trailing += 1
                            if trailing < column_minimum:
                                column_minimum = trailing
                    if column_minimum == 64:
                        break
                    limit = column_minimum + reach[row]
                    for lane in range(lanes):
                        value = masks[row, lane]
                        if value != 0:
                            trailing = 0
                            while value & 1 == 0:
                                value >>= 1
                                trailing += 1
                            if trailing < limit:
                                masks[row, lane] &= masks[row, lane] - 1
                    cycles += 1
                out[row] = cycles
            return out

        def wrapper(masks: np.ndarray, reach: np.ndarray) -> np.ndarray:
            return frontier(masks.astype(np.int64), reach.astype(np.int64))

        # Compile eagerly on a trivial input so a broken toolchain falls back
        # here instead of mid-sweep.
        wrapper(np.array([[1]], dtype=np.uint16), np.array([1], dtype=np.int16))
        _NUMBA_FRONTIER = wrapper
        return wrapper
    except Exception:
        _NUMBA_FAILED = True
        return None


def drain_backend() -> str:
    """The frontier-loop backend the next kernel call will use."""
    if os.environ.get(_BACKEND_ENV, "").strip().lower() == "numba":
        if _load_numba_frontier() is not None:
            return "numba"
    return "numpy"


def _frontier(masks: np.ndarray, reach: np.ndarray) -> np.ndarray:
    if drain_backend() == "numba":
        return _NUMBA_FRONTIER(masks, reach)
    return _frontier_numpy(masks, reach)


# --------------------------------------------------------------------- kernel
def batched_drain_cycles(masks: np.ndarray, reaches) -> np.ndarray:
    """Drain cycles of every column under every first-stage reach, in one call.

    Parameters
    ----------
    masks:
        Packed neuron magnitudes shaped ``(..., lanes)`` — the lanes of one
        PIP column along the last axis, any leading batch shape (the sweep
        packs ``[pallets, steps, windows, neurons]``).
    reaches:
        Sequence of first-stage reaches (``2 ** first_stage_bits``, each at
        least 1) to evaluate.  The per-column statistics (popcounts, bit
        span) are computed once and shared by every reach.

    Returns
    -------
    numpy.ndarray
        ``int64`` cycle counts shaped ``(len(reaches), *masks.shape[:-1])``.
        Columns with no set bits report zero cycles, exactly like the
        reference scheduler.
    """
    masks = np.asarray(masks, dtype=np.uint16)
    if masks.ndim < 1:
        raise ValueError("masks must have at least a lanes dimension")
    reaches = [int(reach) for reach in reaches]
    if not reaches:
        raise ValueError("reaches must not be empty")
    if any(reach < 1 for reach in reaches):
        raise ValueError("every reach must be at least 1")

    tz, pop, hb = _tables()
    *lead, lanes = masks.shape
    flat = np.ascontiguousarray(masks.reshape(-1, lanes))
    columns = flat.shape[0]
    out = np.zeros((len(reaches), columns), dtype=np.int64)
    if columns:
        busiest = pop[flat].max(axis=1).astype(np.int64)
        column_mask = np.bitwise_or.reduce(flat, axis=1)
        # Bit span of the column; empty columns go deeply negative and are
        # therefore always closed-form (zero busiest lanes -> zero cycles).
        span = hb[column_mask].astype(np.int64) - tz[column_mask]
        slow_sets: list[tuple[int, np.ndarray]] = []
        for slot, reach in enumerate(reaches):
            closed = span < reach
            out[slot] = np.where(closed, busiest, 0)
            slow = np.nonzero(~closed)[0]
            if slow.size:
                slow_sets.append((slot, slow))
        if slow_sets:
            rows = np.concatenate([slow for _, slow in slow_sets])
            row_reach = np.concatenate(
                [
                    np.full(slow.size, reaches[slot], dtype=np.int16)
                    for slot, slow in slow_sets
                ]
            )
            cycles = _frontier(flat[rows], row_reach)
            offset = 0
            for slot, slow in slow_sets:
                out[slot, slow] = cycles[offset : offset + slow.size]
                offset += slow.size
    return out.reshape((len(reaches), *lead))
