"""Cycle scheduling models for Pragmatic's neuron-lane synchronization schemes.

Three questions determine Pragmatic's cycle count for a layer:

1. How many cycles does a PIP *column* (the 16 neurons of one window's brick)
   need to drain its oneffsets under 2-stage shifting with a first-stage reach
   of ``2**L``?  (:func:`column_drain_cycles` — vectorized over many columns.)
2. Under **per-pallet synchronization** (Section V-A4) every window lane waits
   for the slowest column before the next brick step, so a step costs the
   maximum column drain over the pallet (:func:`pallet_sync_cycles`).
3. Under **per-column synchronization** (Section V-E) columns advance
   independently, limited by the single SB port and by the number of synapse
   set registers (SSRs); :func:`ssr_pipeline_cycles` is the single dynamic
   program over brick steps that both :func:`column_sync_cycles` and the sweep
   engine's ``cycles_from_drain`` schedule with.

All functions accept integer neuron values shaped
``[pallets, steps, windows, neurons]`` (the layout produced by
:func:`repro.arch.tiling.sample_pallet_values`).  Drain computation dispatches
through the packed batch kernel of :mod:`repro.core.kernels`; the original
cycle-by-cycle scheduler survives as :func:`_reference_drain_cycles`, the
executable specification the kernel's golden tests compare against.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels import (
    KERNEL_MAX_POSITIONS,
    batched_drain_cycles,
    pack_bit_planes,
    pack_drain_masks,
    packed_essential_terms,
)
from repro.numerics.encodings import DEFAULT_ENCODING, get_encoding

__all__ = [
    "column_drain_cycles",
    "step_drain_cycles",
    "pallet_sync_cycles",
    "column_sync_cycles",
    "ssr_pipeline_cycles",
    "essential_terms",
    "encoded_drain_masks",
]


def encoded_drain_masks(
    values: np.ndarray, storage_bits: int, encoding: str = DEFAULT_ENCODING
) -> np.ndarray:
    """Packed term masks of integer neuron values under a named encoding.

    The ``positional`` default routes through :func:`pack_drain_masks` — the
    exact pre-registry code path, preserving the bit-identity guarantee —
    while every other registered encoding contributes its own term planes
    (``uint32`` masks when positions above 15 are used, e.g. CSD/HESE).
    """
    if encoding == DEFAULT_ENCODING:
        return pack_drain_masks(values, storage_bits)
    return get_encoding(encoding).term_masks(values, bits=storage_bits)


def column_drain_cycles(bits: np.ndarray, first_stage_bits: int) -> np.ndarray:
    """Cycles for PIP columns to drain their neurons' oneffsets.

    Parameters
    ----------
    bits:
        Boolean array of shape ``(..., lanes, positions)``: the bit planes of
        the neurons feeding one column (``lanes`` neurons of ``positions`` bit
        positions each).  Leading dimensions enumerate independent columns.
    first_stage_bits:
        Width ``L`` of the first-stage shifter control.  Each cycle the control
        processes, for every lane, the lowest outstanding oneffset whose
        distance from the column-wide minimum is below ``2**L``; other lanes
        stall (Figure 7 of the paper).

    Returns
    -------
    numpy.ndarray
        Integer cycle counts with shape ``bits.shape[:-2]``.  Columns with no
        set bits report zero cycles; callers clamp to their minimum step cost.

    The computation dispatches through the packed batch kernel
    (:mod:`repro.core.kernels`); :func:`_reference_drain_cycles` keeps the
    original cycle-by-cycle loop as the golden reference for tests.
    """
    arr = np.asarray(bits, dtype=bool)
    if arr.ndim < 2:
        raise ValueError("bits must have at least (lanes, positions) dimensions")
    if first_stage_bits < 0:
        raise ValueError("first_stage_bits must be non-negative")
    positions = arr.shape[-1]
    reach = 1 << first_stage_bits

    if reach >= positions:
        # Full-reach shifters never stall: a column finishes when its busiest
        # lane has streamed all of its oneffsets.
        return arr.sum(axis=-1).max(axis=-1)
    if positions > KERNEL_MAX_POSITIONS:
        # Wider than even the uint32 packing (none of the registered
        # encodings gets here); the reference scheduler handles any width.
        return _reference_drain_cycles(arr, first_stage_bits)
    return batched_drain_cycles(pack_bit_planes(arr), (reach,))[0]


def _reference_drain_cycles(bits: np.ndarray, first_stage_bits: int) -> np.ndarray:
    """The pre-batch drain scheduler: one cycle per Python iteration, per call.

    Kept verbatim as the executable specification the batched kernel is tested
    against (golden suite + property tests); production paths use
    :func:`column_drain_cycles`.
    """
    arr = np.asarray(bits, dtype=bool)
    if arr.ndim < 2:
        raise ValueError("bits must have at least (lanes, positions) dimensions")
    if first_stage_bits < 0:
        raise ValueError("first_stage_bits must be non-negative")
    *lead, lanes, positions = arr.shape
    reach = 1 << first_stage_bits

    if reach >= positions:
        return arr.sum(axis=-1).max(axis=-1)

    flat = arr.reshape(-1, lanes, positions).copy()
    cycles = np.zeros(flat.shape[0], dtype=np.int64)
    position_index = np.arange(positions)
    active = flat.any(axis=(1, 2))
    while active.any():
        sub = flat[active]
        # Lowest outstanding oneffset per lane ("positions" marks an empty lane).
        head = np.where(sub, position_index, positions).min(axis=2)
        column_minimum = head.min(axis=1)
        process = (head < positions) & (head - column_minimum[:, None] < reach)
        rows, lane_index = np.nonzero(process)
        sub[rows, lane_index, head[rows, lane_index]] = False
        flat[active] = sub
        cycles[active] += 1
        active = flat.any(axis=(1, 2))
    return cycles.reshape(lead) if lead else cycles.reshape(())


def step_drain_cycles(
    step_values: np.ndarray,
    first_stage_bits: int,
    storage_bits: int,
    encoding: str = DEFAULT_ENCODING,
) -> np.ndarray:
    """Per-column drain cycles for integer neuron values.

    ``step_values`` has shape ``(..., windows, neurons)``; the result has shape
    ``(..., windows)``.  Values are packed once — as the term masks of the
    selected encoding — and dispatched through the batch kernel.
    """
    if first_stage_bits < 0:
        raise ValueError("first_stage_bits must be non-negative")
    masks = encoded_drain_masks(step_values, storage_bits, encoding)
    if masks.ndim < 1:
        raise ValueError("step_values must have at least a neurons dimension")
    return batched_drain_cycles(masks, (1 << first_stage_bits,))[0]


def pallet_sync_cycles(
    step_values: np.ndarray,
    first_stage_bits: int,
    storage_bits: int,
    min_step_cycles: int = 1,
    encoding: str = DEFAULT_ENCODING,
) -> np.ndarray:
    """Cycles per pallet under per-pallet neuron lane synchronization.

    Parameters
    ----------
    step_values:
        Integer neuron values shaped ``[pallets, steps, windows, neurons]``.
    first_stage_bits:
        First-stage shifter control width ``L``.
    storage_bits:
        Storage representation width (16 or 8).
    min_step_cycles:
        Lower bound on the cost of one brick step; covers the single cycle a
        null pallet still takes and the NM fetch overlap floor
        (``max(NM_cycles, processing)`` of Section V-A4).
    encoding:
        Registered oneffset encoding the lanes stream
        (:mod:`repro.numerics.encodings`).

    Returns
    -------
    numpy.ndarray
        Total cycles per pallet, shape ``[pallets]``.
    """
    if min_step_cycles < 1:
        raise ValueError("min_step_cycles must be at least 1")
    values = _check_pallet_shape(step_values)
    column = step_drain_cycles(values, first_stage_bits, storage_bits, encoding)
    step = np.maximum(column.max(axis=2), min_step_cycles)
    return step.sum(axis=1)


def column_sync_cycles(
    step_values: np.ndarray,
    first_stage_bits: int,
    storage_bits: int,
    ssr_count: int | None = 1,
    sb_read_cycles: int = 1,
    min_step_cycles: int = 1,
    encoding: str = DEFAULT_ENCODING,
) -> np.ndarray:
    """Cycles per pallet under per-column synchronization with ``ssr_count`` SSRs.

    The model follows Section V-E: only one synapse set can be read from the SB
    per cycle; a set stays in its SSR until every column has copied it into its
    synapse registers, and only then can the SSR be reused.  Columns process
    brick steps in order at their own pace:

    * ``load[b] = max(load[b-1] + sb_read_cycles, copied[b - R])``
    * ``start[c, b] = max(finish[c, b-1], load[b])``
    * ``finish[c, b] = start[c, b] + drain[c, b]``

    where ``copied[b]`` is the time the last column started step ``b`` (i.e. has
    copied the set out of the SSR).  ``ssr_count=None`` models the ideal,
    infinitely-buffered configuration ("perCol-ideal" in Figure 10).

    Returns the per-pallet completion times, shape ``[pallets]``.
    """
    if ssr_count is not None and ssr_count < 1:
        raise ValueError("ssr_count must be positive (or None for ideal buffering)")
    if sb_read_cycles < 1:
        raise ValueError("sb_read_cycles must be at least 1")
    if min_step_cycles < 1:
        raise ValueError("min_step_cycles must be at least 1")
    values = _check_pallet_shape(step_values)
    drain = np.maximum(
        step_drain_cycles(values, first_stage_bits, storage_bits, encoding),
        min_step_cycles,
    )
    return ssr_pipeline_cycles(drain, ssr_count, sb_read_cycles=sb_read_cycles)


def ssr_pipeline_cycles(
    drain: np.ndarray, ssr_count: int | None, sb_read_cycles: int = 1
) -> np.ndarray:
    """Per-pallet completion times of the SSR pipeline dynamic program.

    ``drain`` holds the (already clamped) per-column drain cycles shaped
    ``[pallets, steps, windows]``.  This is the single implementation of the
    Section V-E schedule shared by :func:`column_sync_cycles` and
    :func:`repro.core.sweep.cycles_from_drain` — the two call sites used to
    duplicate it.
    """
    drain = np.asarray(drain)
    if drain.ndim != 3:
        raise ValueError(
            f"drain must be shaped [pallets, steps, windows], got shape {drain.shape}"
        )
    pallets, steps, windows = drain.shape
    registers = steps if ssr_count is None else min(ssr_count, steps)

    finish = np.zeros((pallets, windows), dtype=np.float64)
    load_previous = np.zeros(pallets, dtype=np.float64)
    copied: list[np.ndarray] = []
    for step in range(steps):
        if step:
            load = load_previous + sb_read_cycles
        else:
            load = np.full(pallets, sb_read_cycles, dtype=np.float64)
        if step >= registers:
            load = np.maximum(load, copied[step - registers])
        start = np.maximum(finish, load[:, None])
        finish = start + drain[:, step, :]
        copied.append(start.max(axis=1))
        load_previous = load
    return finish.max(axis=1)


def essential_terms(
    step_values: np.ndarray, storage_bits: int, encoding: str = DEFAULT_ENCODING
) -> float:
    """Total essential terms contained in the sampled neuron values.

    For ``positional`` this is the paper's essential-bit count; other
    encodings count their own signed terms.
    """
    return packed_essential_terms(encoded_drain_masks(step_values, storage_bits, encoding))


def _check_pallet_shape(step_values: np.ndarray) -> np.ndarray:
    values = np.asarray(step_values)
    if values.ndim != 4:
        raise ValueError(
            "step_values must be shaped [pallets, steps, windows, neurons], got "
            f"shape {values.shape}"
        )
    return values
