"""Tests for the content-addressed result cache and the trace store."""

import gzip
import json

import pytest

from repro.arch.tiling import SamplingConfig
from repro.core.variants import pallet_variant
from repro.runtime.cache import ResultCache
from repro.runtime.engine import SimulationRequest, simulate
from repro.runtime.session import RuntimeSession
from repro.runtime.trace_store import TraceSpec, TraceStore

PAYLOAD = {"network": "alexnet", "accelerator": "x", "layers": []}


class TestMemoryCache:
    def test_miss_then_hit(self):
        cache = ResultCache()
        assert cache.get("k") is None
        cache.put("k", PAYLOAD)
        assert cache.get("k") == PAYLOAD
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_disabled_cache_never_hits(self):
        cache = ResultCache.disabled()
        cache.put("k", PAYLOAD)
        assert cache.get("k") is None
        assert not cache.persistent
        assert len(cache) == 0


class TestDiskCache:
    def test_entries_survive_across_instances(self, tmp_path):
        first = ResultCache(directory=tmp_path)
        first.put("deadbeef", PAYLOAD)
        second = ResultCache(directory=tmp_path)
        assert second.get("deadbeef") == PAYLOAD
        assert second.stats.hits == 1
        assert len(second) == 1

    def test_contains_does_not_touch_stats(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put("k", PAYLOAD)
        fresh = ResultCache(directory=tmp_path)
        assert fresh.contains("k")
        assert not fresh.contains("missing")
        assert fresh.stats.hits == 0
        assert fresh.stats.misses == 0

    @pytest.mark.parametrize(
        "garbage",
        ["not json at all", "[]", '{"schema": 99, "kind": "network_result", "payload": {}}'],
    )
    def test_corrupted_entries_recover_as_misses(self, tmp_path, garbage):
        cache = ResultCache(directory=tmp_path)
        cache.put("k", PAYLOAD)
        path = tmp_path / "k.json.gz"
        path.write_text(garbage)  # not even gzip anymore
        fresh = ResultCache(directory=tmp_path)
        assert fresh.get("k") is None
        assert fresh.stats.errors == 1
        assert fresh.stats.misses == 1
        assert not path.exists()  # the bad entry was dropped

    @pytest.mark.parametrize(
        "garbage",
        ["not json at all", "[]", '{"schema": 99, "kind": "network_result", "payload": {}}'],
    )
    def test_corrupted_legacy_entries_recover_as_misses(self, tmp_path, garbage):
        path = tmp_path / "k.json"
        path.write_text(garbage)
        fresh = ResultCache(directory=tmp_path)
        assert fresh.get("k") is None
        assert fresh.stats.errors == 1
        assert not path.exists()

    def test_kind_mismatch_is_corruption(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put("k", PAYLOAD, kind="other_kind")
        fresh = ResultCache(directory=tmp_path)
        assert fresh.get("k", kind="network_result") is None
        assert fresh.stats.errors == 1

    def test_unwritable_directory_degrades_to_memory(self, tmp_path):
        cache = ResultCache(directory=tmp_path / "c")
        # Make writes fail by replacing the cache directory with a file.
        (tmp_path / "c").rmdir()
        (tmp_path / "c").write_text("not a directory")
        cache.put("k", PAYLOAD)
        assert cache.stats.errors == 1
        assert cache.get("k") == PAYLOAD  # memory copy still serves this process

    def test_entries_are_gzipped_json_documents(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put("k", PAYLOAD)
        entry = json.loads(gzip.decompress((tmp_path / "k.json.gz").read_bytes()))
        assert entry["key"] == "k"
        assert entry["payload"] == PAYLOAD

    def test_memo_is_keyed_by_kind(self, tmp_path):
        # Regression: the in-memory memo used to ignore ``kind``, so an entry
        # stored under one kind answered same-process lookups for another.
        cache = ResultCache(directory=tmp_path)
        cache.put("k", PAYLOAD, kind="network_result")
        assert cache.get("k", kind="statistics_result") is None
        assert cache.get("k", kind="network_result") == PAYLOAD
        # Memory-only caches enforce the same contract.
        memory = ResultCache()
        memory.put("k", PAYLOAD, kind="network_result")
        assert memory.get("k", kind="statistics_result") is None
        assert not memory.contains("k", kind="statistics_result")
        assert memory.contains("k", kind="network_result")


class TestTraceStore:
    def test_builds_each_spec_once(self):
        store = TraceStore()
        spec = TraceSpec(network="alexnet", seed=3)
        first = store.get(spec)
        second = store.get(spec)
        assert first is second
        assert store.builds == 1
        assert store.reuses == 1

    def test_distinct_specs_build_distinct_traces(self):
        store = TraceStore()
        a = store.get(TraceSpec(network="alexnet", seed=3))
        b = store.get(TraceSpec(network="alexnet", seed=4))
        assert a is not b
        assert store.builds == 2


class TestCorruptionEndToEnd:
    def test_simulate_recovers_from_a_corrupted_entry(self, tmp_path):
        request = SimulationRequest(
            trace=TraceSpec(network="alexnet", seed=0),
            configs=(("PRA-2b", pallet_variant(2)),),
            sampling=SamplingConfig(max_pallets=1, seed=0),
        )
        session = RuntimeSession(cache=ResultCache(directory=tmp_path))
        reference = simulate(request, session=session)["PRA-2b"]
        (key,) = request.keys().values()
        (tmp_path / f"{key}.json.gz").write_text("{truncated")

        recovered_session = RuntimeSession(cache=ResultCache(directory=tmp_path))
        recovered = simulate(request, session=recovered_session)["PRA-2b"]
        assert recovered == reference
        assert recovered_session.cache.stats.errors == 1
        assert recovered_session.sweep_stats.configs_simulated == 1
        # The recomputed entry was re-stored and is valid again.
        final_session = RuntimeSession(cache=ResultCache(directory=tmp_path))
        assert simulate(request, session=final_session)["PRA-2b"] == reference
        assert final_session.sweep_stats.configs_simulated == 0
