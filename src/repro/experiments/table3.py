"""Table III — area and power, unit and chip, pallet-synchronized designs."""

from __future__ import annotations

from repro.core.variants import pallet_variant
from repro.energy.area import design_area
from repro.energy.power import design_power
from repro.experiments.base import ExperimentResult, Preset, get_preset

__all__ = ["run", "PAPER_TABLE3"]

#: The paper's Table III: (unit area mm², chip area mm², chip power W).
PAPER_TABLE3: dict[str, tuple[float, float, float]] = {
    "DaDN": (1.55, 90.0, 18.8),
    "Stripes": (3.05, 114.0, 30.2),
    "PRA-0b": (3.11, 115.0, 31.4),
    "PRA-1b": (3.16, 116.0, 34.5),
    "PRA-2b": (3.54, 122.0, 38.2),
    "PRA-3b": (4.41, 136.0, 43.8),
    "PRA-4b": (5.75, 157.0, 51.6),
}


def run(preset: str | Preset = "fast", seed: int = 0) -> ExperimentResult:
    """Reproduce Table III from the calibrated component model."""
    get_preset(preset)  # presets do not change this experiment; validates the name
    designs: list[tuple[str, object]] = [("DaDN", "dadn"), ("Stripes", "stripes")]
    designs.extend((f"PRA-{bits}b", pallet_variant(bits)) for bits in range(5))

    headers = [
        "design",
        "unit mm2",
        "unit mm2 (paper)",
        "chip mm2",
        "chip mm2 (paper)",
        "chip W",
        "chip W (paper)",
        "dArea",
        "dPower",
    ]
    rows: list[list[object]] = []
    metadata: dict[str, float] = {}
    for label, design in designs:
        area = design_area(design)
        power = design_power(design)
        paper_unit, paper_chip, paper_power = PAPER_TABLE3[label]
        rows.append(
            [
                label,
                f"{area.unit_mm2:.2f}",
                f"{paper_unit:.2f}",
                f"{area.chip_mm2:.0f}",
                f"{paper_chip:.0f}",
                f"{power.chip_w:.1f}",
                f"{paper_power:.1f}",
                f"{area.chip_ratio:.2f}x",
                f"{power.chip_ratio:.2f}x",
            ]
        )
        metadata[f"{label}:unit_mm2"] = area.unit_mm2
        metadata[f"{label}:chip_mm2"] = area.chip_mm2
        metadata[f"{label}:chip_w"] = power.chip_w
    notes = (
        "Component coefficients are calibrated once against the published synthesis\n"
        "totals (DESIGN.md §4); composed values are expected to track the paper within\n"
        "a few percent and preserve all relative relationships."
    )
    return ExperimentResult(
        experiment="table3",
        title="Table III: area [mm2] and power [W], pallet synchronization",
        headers=headers,
        rows=rows,
        notes=notes,
        metadata=metadata,
    )
