"""Table IV — area and power of the per-column synchronized PRA-2b designs."""

from __future__ import annotations

from repro.core.variants import column_variant, pallet_variant
from repro.energy.area import design_area
from repro.energy.power import design_power
from repro.experiments.base import ExperimentResult, Preset, get_preset

__all__ = ["run", "PAPER_TABLE4"]

#: The paper's Table IV: (unit area mm², chip area mm², chip power W).
PAPER_TABLE4: dict[str, tuple[float, float, float]] = {
    "DaDN": (1.55, 90.0, 18.8),
    "Stripes": (3.05, 114.0, 30.2),
    "PRA-2b-1R": (3.58, 122.0, 38.8),
    "PRA-2b-4R": (3.73, 125.0, 40.8),
    "PRA-2b-16R": (4.33, 134.0, 49.1),
}


def run(preset: str | Preset = "fast", seed: int = 0) -> ExperimentResult:
    """Reproduce Table IV from the calibrated component model."""
    get_preset(preset)
    designs: list[tuple[str, object]] = [
        ("DaDN", "dadn"),
        ("Stripes", "stripes"),
        ("PRA-2b-1R", column_variant(1)),
        ("PRA-2b-4R", column_variant(4)),
        ("PRA-2b-16R", column_variant(16)),
    ]
    headers = [
        "design",
        "unit mm2",
        "unit mm2 (paper)",
        "chip mm2",
        "chip mm2 (paper)",
        "chip W",
        "chip W (paper)",
        "dArea",
        "dPower",
    ]
    rows: list[list[object]] = []
    metadata: dict[str, float] = {}
    for label, design in designs:
        area = design_area(design)
        power = design_power(design)
        paper_unit, paper_chip, paper_power = PAPER_TABLE4[label]
        rows.append(
            [
                label,
                f"{area.unit_mm2:.2f}",
                f"{paper_unit:.2f}",
                f"{area.chip_mm2:.0f}",
                f"{paper_chip:.0f}",
                f"{power.chip_w:.1f}",
                f"{paper_power:.1f}",
                f"{area.chip_ratio:.2f}x",
                f"{power.chip_ratio:.2f}x",
            ]
        )
        metadata[f"{label}:unit_mm2"] = area.unit_mm2
        metadata[f"{label}:chip_mm2"] = area.chip_mm2
        metadata[f"{label}:chip_w"] = power.chip_w
    notes = (
        "Each SSR adds one synapse-set register (16 bricks, 4 Kbit) per tile; the\n"
        "reference PRA-2b pallet design is in Table III. "
        f"(Pallet PRA-2b unit area: {design_area(pallet_variant(2)).unit_mm2:.2f} mm2.)"
    )
    return ExperimentResult(
        experiment="table4",
        title="Table IV: area [mm2] and power [W], per-column synchronization (PRA-2b)",
        headers=headers,
        rows=rows,
        notes=notes,
        metadata=metadata,
    )
