"""repro.loadgen — sustained-traffic load harness for serve and cluster.

The subsystem every perf claim is judged by (``docs/loadgen.md``):

* :mod:`repro.loadgen.mix` — declarative request-mix specs (hot/cold cache
  ratio, experiment/preset distributions, stream vs. batch delivery,
  cancellation rate, concurrency ramp) compiled by a deterministic seeded
  scheduler into a replayable request schedule;
* :mod:`repro.loadgen.metrics` — bounded-relative-error latency histogram
  (HDR-style log buckets) and percentile math;
* :mod:`repro.loadgen.swarm` — the asyncio client swarm replaying a schedule
  against a ``repro serve`` instance or a ``repro cluster`` coordinator over
  real :class:`~repro.serve.client.ServeClient` connections;
* :mod:`repro.loadgen.report` — the run report (p50/p95/p99, throughput,
  error/cancel counts, coalescing hit-rate, worker utilization) as text and
  schema-checked JSON;
* :mod:`repro.loadgen.trajectory` — the schema-versioned append-only perf
  trajectory behind ``benchmarks/reports/bench_summary.json``;
* :mod:`repro.loadgen.gate` — the CI regression gate comparing the two
  newest trajectory records;
* :mod:`repro.loadgen.cli` — ``python -m repro loadgen`` (``--spawn`` for
  hermetic runs, ``--gate`` for the CI check).
"""

from repro.loadgen.gate import GateResult, check_gate
from repro.loadgen.metrics import LatencyHistogram
from repro.loadgen.mix import MixError, MixSpec, PlannedRequest
from repro.loadgen.report import LoadReport, validate_report
from repro.loadgen.swarm import LoadSwarm
from repro.loadgen.trajectory import (
    TRAJECTORY_SCHEMA,
    append_loadgen_section,
    load_trajectory,
    save_trajectory,
    upsert_record,
)

__all__ = [
    "GateResult",
    "check_gate",
    "LatencyHistogram",
    "MixError",
    "MixSpec",
    "PlannedRequest",
    "LoadReport",
    "validate_report",
    "LoadSwarm",
    "TRAJECTORY_SCHEMA",
    "append_loadgen_section",
    "load_trajectory",
    "save_trajectory",
    "upsert_record",
]
