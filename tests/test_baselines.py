"""Unit tests for the DaDianNao, Stripes and zero-skipping baselines."""

import numpy as np
import pytest

from repro.baselines.dadiannao import DaDianNaoFunctional, DaDianNaoModel
from repro.baselines.stripes import StripesFunctional, StripesModel
from repro.baselines.zero_skip import ZeroSkipModel, zero_fraction
from repro.nn.layers import ConvLayerSpec
from repro.nn.networks import get_network
from repro.nn.precision import LayerPrecision
from repro.nn.reference import conv2d_reference
from repro.nn.traces import generate_synapses


class TestDaDianNaoModel:
    def test_layer_cycles_formula(self):
        layer = ConvLayerSpec("l", 64, 28, 28, 128, 3, 3, padding=1)
        model = DaDianNaoModel()
        assert model.layer_cycles(layer) == layer.num_windows * layer.bricks_per_window

    def test_second_filter_pass_doubles_cycles(self):
        narrow = ConvLayerSpec("a", 64, 14, 14, 256, 3, 3, padding=1)
        wide = ConvLayerSpec("b", 64, 14, 14, 512, 3, 3, padding=1)
        model = DaDianNaoModel()
        assert model.layer_cycles(wide) == 2 * model.layer_cycles(narrow)

    def test_layer_terms_counts_sixteen_per_mac(self):
        layer = ConvLayerSpec("l", 16, 8, 8, 4, 3, 3, padding=1)
        assert DaDianNaoModel().layer_terms(layer) == layer.macs * 16

    def test_network_cycles_sums_layers(self):
        model = DaDianNaoModel()
        network = get_network("alexnet")
        assert model.network_cycles(network) == sum(
            model.layer_cycles(layer) for layer in network.layers
        )

    def test_cycles_independent_of_neuron_values(self):
        # Bit-parallel hardware is value-agnostic by construction.
        layer = ConvLayerSpec("l", 16, 8, 8, 4, 3, 3)
        model = DaDianNaoModel()
        assert model.layer_cycles(layer) == model.layer_cycles(layer)


class TestDaDianNaoFunctional:
    def test_matches_reference_convolution(self, tiny_layer, tiny_trace, rng):
        neurons = tiny_trace.layer_input(0)
        synapses = generate_synapses(tiny_layer, rng)
        expected = conv2d_reference(tiny_layer, neurons, synapses)
        actual = DaDianNaoFunctional().compute_layer(tiny_layer, neurons, synapses)
        np.testing.assert_array_equal(actual, expected)

    def test_matches_reference_with_stride(self, strided_layer, rng):
        neurons = rng.integers(0, 64, size=(16, 9, 9))
        synapses = generate_synapses(strided_layer, rng)
        expected = conv2d_reference(strided_layer, neurons, synapses)
        actual = DaDianNaoFunctional().compute_layer(strided_layer, neurons, synapses)
        np.testing.assert_array_equal(actual, expected)


class TestStripesModel:
    def test_cycles_scale_with_precision(self):
        layer = ConvLayerSpec("l", 64, 28, 28, 128, 3, 3, padding=1)
        model = StripesModel()
        assert model.layer_cycles(layer, 8) == 2 * model.layer_cycles(layer, 4)

    def test_ideal_speedup_is_sixteen_over_p(self):
        layer = ConvLayerSpec("l", 64, 32, 32, 256, 3, 3, padding=1)
        dadn = DaDianNaoModel()
        stripes = StripesModel()
        speedup = dadn.layer_cycles(layer) / stripes.layer_cycles(layer, 8)
        assert speedup == pytest.approx(16 / 8, rel=0.01)

    def test_precision_is_capped_at_storage_width(self):
        layer = ConvLayerSpec("l", 16, 8, 8, 4, 3, 3)
        model = StripesModel()
        assert model.layer_cycles(layer, 99) == model.layer_cycles(layer, 16)

    def test_accepts_layer_precision_objects(self):
        layer = ConvLayerSpec("l", 16, 8, 8, 4, 3, 3)
        model = StripesModel()
        assert model.layer_cycles(layer, LayerPrecision(msb=8, lsb=2)) == model.layer_cycles(layer, 7)

    def test_network_cycles_uses_trace_precisions(self, tiny_trace):
        model = StripesModel()
        expected = sum(
            model.layer_cycles(tiny_trace.layer(i), tiny_trace.layer_precision(i))
            for i in range(2)
        )
        assert model.network_cycles(tiny_trace) == expected

    def test_rejects_zero_precision(self):
        layer = ConvLayerSpec("l", 16, 8, 8, 4, 3, 3)
        with pytest.raises(ValueError):
            StripesModel().layer_cycles(layer, 0)


class TestStripesFunctional:
    def test_matches_reference_when_window_covers_values(self, tiny_layer, rng):
        neurons = rng.integers(0, 2**8, size=(24, 6, 6))
        synapses = generate_synapses(tiny_layer, rng)
        precision = LayerPrecision(msb=7, lsb=0)
        expected = conv2d_reference(tiny_layer, neurons, synapses)
        actual = StripesFunctional().compute_layer(tiny_layer, neurons, synapses, precision)
        np.testing.assert_array_equal(actual, expected)

    def test_rejects_values_outside_precision_window(self, tiny_layer, rng):
        neurons = np.full((24, 6, 6), 0b1001, dtype=np.int64)
        synapses = generate_synapses(tiny_layer, rng)
        with pytest.raises(ValueError):
            StripesFunctional().compute_layer(
                tiny_layer, neurons, synapses, LayerPrecision(msb=2, lsb=0)
            )

    def test_cycles_per_window_group_is_precision_width(self):
        assert StripesFunctional().cycles_per_window_group(LayerPrecision(msb=8, lsb=2)) == 7


class TestZeroSkip:
    def test_zero_fraction(self):
        assert zero_fraction(np.array([0, 0, 1, 2])) == 0.5
        with pytest.raises(ValueError):
            zero_fraction(np.array([]))

    def test_ideal_skips_zero_neurons_everywhere(self):
        layer = ConvLayerSpec("l", 16, 8, 8, 4, 3, 3)
        values = np.array([0, 0, 5, 9])
        zn = ZeroSkipModel(skip_first_layer=True)
        assert zn.layer_terms(layer, values, layer_index=0) == layer.macs * 16 * 0.5

    def test_cnvlutin_processes_first_layer_fully(self):
        layer = ConvLayerSpec("l", 16, 8, 8, 4, 3, 3)
        values = np.array([0, 0, 5, 9])
        cvn = ZeroSkipModel(skip_first_layer=False)
        assert cvn.layer_terms(layer, values, layer_index=0) == layer.macs * 16
        assert cvn.layer_terms(layer, values, layer_index=1) == layer.macs * 16 * 0.5

    def test_names(self):
        assert ZeroSkipModel(skip_first_layer=True).name == "ZN"
        assert ZeroSkipModel(skip_first_layer=False).name == "CVN"
