"""Cached execution of cycle-simulation sweeps.

:func:`simulate` is the single funnel every experiment's cycle simulation goes
through.  It resolves each requested ``(trace spec, sampling, config)`` triple
against the session cache, runs one :func:`repro.core.sweep.sweep_network`
over exactly the missing configurations (so drain tensors are still shared
within the group), and stores each fresh result under its own key — which is
what lets overlapping experiments (Figure 9 / Figure 10 / Figure 11 / Table V
all evaluate common PRA design points) reuse each other's work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.tiling import SamplingConfig
from repro.core.accelerator import NetworkResult, PragmaticConfig
from repro.core.sweep import sweep_network
from repro.runtime.fingerprint import simulation_key
from repro.runtime.serialization import network_result_from_dict, network_result_to_dict
from repro.runtime.session import RuntimeSession, current_session
from repro.runtime.trace_store import TraceSpec

__all__ = ["SimulationRequest", "simulate"]


@dataclass(frozen=True)
class SimulationRequest:
    """One config-group simulation task: a set of designs over one trace.

    Attributes
    ----------
    trace:
        Declarative spec of the calibrated trace to simulate over.
    configs:
        ``(label, config)`` pairs, in presentation order.  Labels are
        display-only; caching keys ignore them.
    sampling:
        Pallet sampling configuration (from the preset).
    """

    trace: TraceSpec
    configs: tuple[tuple[str, PragmaticConfig], ...]
    sampling: SamplingConfig = SamplingConfig()

    def keys(self) -> dict[str, str]:
        """Cache key per label."""
        return {
            label: simulation_key(self.trace, self.sampling, config)
            for label, config in self.configs
        }


def simulate(
    request: SimulationRequest, session: RuntimeSession | None = None
) -> dict[str, NetworkResult]:
    """Run (or recall) every configuration of ``request``.

    Returns label → :class:`NetworkResult` in the request's order, numerically
    identical whether each result came from the cache or a fresh sweep.
    """
    session = session if session is not None else current_session()
    labels = [label for label, _ in request.configs]
    if len(set(labels)) != len(labels):
        raise ValueError(f"duplicate labels in simulation request: {labels}")
    keys = request.keys()
    results: dict[str, NetworkResult] = {}
    missing: dict[str, PragmaticConfig] = {}
    for label, config in request.configs:
        payload = session.cache.get(keys[label])
        if payload is not None:
            results[label] = network_result_from_dict(payload, accelerator=config.name)
        else:
            missing[label] = config
    if missing:
        trace = session.traces.get(request.trace)
        computed = sweep_network(
            trace, missing, sampling=request.sampling, stats=session.sweep_stats
        )
        for label, result in computed.items():
            session.cache.put(keys[label], network_result_to_dict(result))
            results[label] = result
    return {label: results[label] for label, _ in request.configs}
