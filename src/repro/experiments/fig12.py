"""Figure 12 — performance with the 8-bit quantized representation."""

from __future__ import annotations

from repro.analysis.speedup import geometric_mean, stripes_result
from repro.analysis.tables import format_ratio
from repro.core.variants import fig12_variants
from repro.experiments.base import ExperimentResult, Preset, get_preset
from repro.nn.precision import table2_precisions
from repro.runtime import SimulationRequest, TraceSpec, current_session, simulate

__all__ = ["run", "plan", "PAPER_GEOMEANS"]

#: The paper reports PRA-2b-1R reaching nearly 3.5x with the quantized representation.
PAPER_GEOMEANS: dict[str, float] = {"perCol-1reg-2bit": 3.5}


def plan(preset: str | Preset = "fast", seed: int = 0) -> list[SimulationRequest]:
    """The cycle simulations this experiment needs (one job per network)."""
    config = get_preset(preset)
    variants = tuple(fig12_variants().items())
    return [
        SimulationRequest(
            trace=TraceSpec(network=name, representation="quant8", seed=seed),
            configs=variants,
            sampling=config.sampling(),
        )
        for name in config.networks
    ]


def run(preset: str | Preset = "fast", seed: int = 0) -> ExperimentResult:
    """Reproduce Figure 12: speedups over an 8-bit quantized DaDN baseline."""
    config = get_preset(preset)
    variants = fig12_variants()
    engine_names = ["Stripes", *variants.keys()]
    headers = ["network", *engine_names]
    rows: list[list[object]] = []
    metadata: dict[str, float] = {}
    speedups: dict[str, list[float]] = {name: [] for name in engine_names}

    for request in plan(config, seed):
        results = simulate(request)
        trace = current_session().trace(request.trace)
        network = trace.network
        # The published (16-bit) precision profiles capped at the 8-bit storage
        # width stand in for re-profiled quantized precisions.
        capped = tuple(min(width, 8) for width in table2_precisions(network))
        stripes = stripes_result(trace, precision_widths=capped)
        row: list[object] = [network.name, format_ratio(stripes.speedup)]
        speedups["Stripes"].append(stripes.speedup)
        metadata[f"{network.name}:Stripes"] = stripes.speedup
        for label in variants:
            speedup = results[label].speedup
            row.append(format_ratio(speedup))
            speedups[label].append(speedup)
            metadata[f"{network.name}:{label}"] = speedup
        rows.append(row)

    geomeans = {name: geometric_mean(values) for name, values in speedups.items()}
    rows.append(["geomean", *[format_ratio(geomeans[name]) for name in engine_names]])
    for name, value in geomeans.items():
        metadata[f"geomean:{name}"] = value
    notes = (
        "All values are relative to an 8-bit quantized DaDN baseline.  The paper reports\n"
        "Pragmatic's benefits persisting, with PRA-2b-1R near 3.5x; Stripes precisions are\n"
        "the published profiles capped at 8 bits (the paper does not publish re-profiled\n"
        "quantized precisions)."
    )
    return ExperimentResult(
        experiment="fig12",
        title="Figure 12: speedup with the 8-bit quantized representation",
        headers=headers,
        rows=rows,
        notes=notes,
        metadata=metadata,
    )
