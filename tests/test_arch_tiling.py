"""Unit tests for brick/pallet extraction and sampling."""

import numpy as np
import pytest

from repro.arch.tiling import (
    BrickPosition,
    SamplingConfig,
    brick_positions,
    exact_pallet_values,
    extract_brick,
    extract_pallet_step,
    iter_pallet_steps,
    pallet_window_coordinates,
    sample_pallet_values,
    window_coordinates,
)
from repro.nn.layers import BRICK_SIZE, PALLET_WINDOWS
from repro.nn.reference import pad_input


class TestBrickPositions:
    def test_count_matches_bricks_per_window(self, tiny_layer):
        assert len(brick_positions(tiny_layer)) == tiny_layer.bricks_per_window

    def test_positions_cover_filter_extent(self, tiny_layer):
        positions = brick_positions(tiny_layer)
        assert {p.fy for p in positions} == set(range(tiny_layer.filter_height))
        assert {p.fx for p in positions} == set(range(tiny_layer.filter_width))
        assert {p.channel_brick for p in positions} == set(range(tiny_layer.channel_bricks))


class TestWindowsAndPallets:
    def test_window_count(self, tiny_layer):
        assert len(window_coordinates(tiny_layer)) == tiny_layer.num_windows

    def test_pallet_grouping(self, tiny_layer):
        pallets = pallet_window_coordinates(tiny_layer)
        assert len(pallets) == tiny_layer.window_groups
        assert all(len(p) <= PALLET_WINDOWS for p in pallets)
        assert sum(len(p) for p in pallets) == tiny_layer.num_windows


class TestExtraction:
    def test_extract_brick_reads_channel_slice(self, tiny_layer, tiny_trace):
        neurons = tiny_trace.layer_input(0)
        padded = pad_input(neurons, tiny_layer.padding)
        position = BrickPosition(fy=1, fx=1, channel_brick=0)
        brick = extract_brick(padded, tiny_layer, 2, 3, position)
        assert brick.shape == (BRICK_SIZE,)
        np.testing.assert_array_equal(brick, padded[:16, 2 + 1, 3 + 1])

    def test_extract_brick_pads_partial_channel_brick(self, tiny_layer, tiny_trace):
        neurons = tiny_trace.layer_input(0)
        padded = pad_input(neurons, tiny_layer.padding)
        position = BrickPosition(fy=0, fx=0, channel_brick=1)
        brick = extract_brick(padded, tiny_layer, 0, 0, position)
        # The layer has 24 channels: brick 1 holds channels 16-23 plus 8 zeros.
        assert np.all(brick[8:] == 0)

    def test_extract_pallet_step_shape(self, tiny_layer, tiny_trace):
        padded = pad_input(tiny_trace.layer_input(0), tiny_layer.padding)
        windows = pallet_window_coordinates(tiny_layer)[0]
        step = extract_pallet_step(padded, tiny_layer, windows, BrickPosition(0, 0, 0))
        assert step.shape == (PALLET_WINDOWS, BRICK_SIZE)

    def test_iter_pallet_steps_covers_whole_layer(self, tiny_layer, tiny_trace):
        steps = list(iter_pallet_steps(tiny_trace.layer_input(0), tiny_layer))
        assert len(steps) == tiny_layer.window_groups * tiny_layer.bricks_per_window

    def test_exact_pallet_values_matches_iteration(self, tiny_layer, tiny_trace):
        neurons = tiny_trace.layer_input(0)
        tensor = exact_pallet_values(neurons, tiny_layer)
        assert tensor.shape == (
            tiny_layer.window_groups,
            tiny_layer.bricks_per_window,
            PALLET_WINDOWS,
            BRICK_SIZE,
        )
        iterated = list(iter_pallet_steps(neurons, tiny_layer))
        pallet_index, _, first_step = iterated[0]
        np.testing.assert_array_equal(tensor[pallet_index, 0], first_step)


class TestSampling:
    def test_sampling_config_validation(self):
        with pytest.raises(ValueError):
            SamplingConfig(max_pallets=0)

    def test_exact_mode_returns_all_pallets(self, tiny_trace):
        values, total = sample_pallet_values(tiny_trace, 0, SamplingConfig(exact=True))
        assert total == tiny_trace.layer(0).window_groups
        assert values.shape[0] == total

    def test_sampled_mode_bounds_pallet_count(self, tiny_trace):
        values, total = sample_pallet_values(tiny_trace, 0, SamplingConfig(max_pallets=1))
        assert values.shape[0] == 1
        assert total == tiny_trace.layer(0).window_groups

    def test_sampled_values_respect_storage_range(self, tiny_trace):
        values, _ = sample_pallet_values(tiny_trace, 0, SamplingConfig(max_pallets=2))
        assert values.min() >= 0
        assert values.max() < 2**16

    def test_sampled_statistics_track_exact_statistics(self, tiny_trace):
        exact, _ = sample_pallet_values(tiny_trace, 0, SamplingConfig(exact=True))
        sampled, _ = sample_pallet_values(tiny_trace, 0, SamplingConfig(max_pallets=4))
        # Exact mode includes the spatial/channel zero padding of this very small
        # layer, so it sees somewhat more zeros than the sampled distribution.
        exact_zero = np.count_nonzero(exact == 0) / exact.size
        sampled_zero = np.count_nonzero(sampled == 0) / sampled.size
        assert sampled_zero <= exact_zero + 0.05
        exact_nonzero_median = np.median(exact[exact > 0])
        sampled_nonzero_median = np.median(sampled[sampled > 0])
        assert sampled_nonzero_median == pytest.approx(exact_nonzero_median, rel=0.35)
