"""Pluggable cache backends: where content-addressed entries actually live.

:class:`~repro.runtime.cache.ResultCache` used to *be* the filesystem layout —
one entry file per key plus a manifest — which tied every deployment shape to
one local directory.  Scaling the runtime out (many worker processes, many
machines, see ``docs/cluster.md``) needs the storage behind the cache to be a
seam, not a hard-coded layer.  This module is that seam:

* :class:`CacheBackend` — the abstract interface.  A backend stores validated
  JSON entries under ``(key, kind)``, reports usage, and optionally supports
  garbage collection.  ``ResultCache`` owns policy (enabled/disabled, the
  bounded memo, hit/miss/error counters); backends own persistence.
* :class:`InMemoryBackend` — a per-process dict.  The default for library
  use, so importing ``repro`` never writes to disk.
* :class:`FilesystemBackend` — the on-disk layout extracted from the old
  ``ResultCache``: gzip entry files written atomically plus the persistent
  manifest index of :mod:`repro.runtime.lifecycle`.
* :class:`SharedDirectoryBackend` — a :class:`FilesystemBackend` tuned for
  *many processes* sharing one directory (cluster workers): reads never trust
  the in-memory manifest for existence, and usage/size queries re-sync the
  manifest from disk (throttled) so one process's bookkeeping reflects its
  siblings' stores and evictions.

A future object-store or redis backend is one new subclass — the cache, the
sessions, the serve layer and the cluster coordinator are all agnostic.
Corrupted entries raise :class:`CorruptEntry`; the cache converts that into a
miss + error counter + recompute, so no backend has to invent its own
recovery story.  The interface contract is documented in ``docs/runtime.md``.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.runtime import lifecycle
from repro.runtime.lifecycle import GCResult

__all__ = [
    "CorruptEntry",
    "CacheBackend",
    "InMemoryBackend",
    "FilesystemBackend",
    "SharedDirectoryBackend",
    "ENTRY_SCHEMA",
]

#: Format version of stored entries; mismatches are treated as corruption.
ENTRY_SCHEMA = 1


class CorruptEntry(ValueError):
    """A stored entry was unreadable or malformed (already dropped)."""


class CacheBackend:
    """Abstract storage behind a :class:`~repro.runtime.cache.ResultCache`.

    Implementations must be safe to call from multiple threads (the serve
    worker pool drives one shared cache concurrently).  ``load``/``probe``
    raise :class:`CorruptEntry` after dropping a damaged entry, so the caller
    can count the error and recompute; ``store`` raises ``OSError`` when the
    write fails (the caller degrades to its in-process memo).
    """

    #: Whether entries survive this process.
    persistent: bool = False

    #: Whether concurrent processes may safely share this backend's storage.
    shared: bool = False

    #: Directory of a filesystem-shaped backend, ``None`` otherwise (kept on
    #: the interface because run reports and the serve ``stats`` op name it).
    directory: Path | None = None

    #: Manifest index of a filesystem-shaped backend, ``None`` otherwise.
    manifest: lifecycle.CacheManifest | None = None

    def load(self, key: str, kind: str) -> dict | None:
        """The payload stored under ``(key, kind)``, or ``None`` when absent."""
        raise NotImplementedError

    def probe(self, key: str, kind: str) -> bool:
        """Whether ``(key, kind)`` resolves to a valid entry (no payload kept)."""
        raise NotImplementedError

    def store(self, key: str, payload: dict, kind: str) -> None:
        """Persist ``payload`` under ``(key, kind)``."""
        raise NotImplementedError

    def touch(self, key: str) -> None:
        """Refresh ``key``'s LRU clock (no-op for backends without one)."""

    def usage(self) -> dict:
        """Current state: ``entries``, ``disk_bytes``, age gauges."""
        raise NotImplementedError

    def gc(self, max_bytes: int | None = None, max_age: float | None = None) -> GCResult:
        """Evict entries until the store fits the bounds; default: nothing to do."""
        return GCResult()

    def clear(self) -> int:
        """Remove every entry; returns how many were removed."""
        raise NotImplementedError

    def describe(self) -> str:
        """Short human-readable identity (for reports and stats payloads)."""
        return type(self).__name__

    def __len__(self) -> int:
        raise NotImplementedError


class InMemoryBackend(CacheBackend):
    """Per-process dict storage — nothing survives the interpreter.

    The default backend of library use: importing ``repro`` and running an
    experiment never touches the filesystem.  ``gc`` is a no-op (there is no
    LRU pressure a byte cap could relieve that process exit doesn't).
    """

    persistent = False
    shared = False

    def __init__(self) -> None:
        self._entries: dict[tuple[str, str], dict] = {}

    def load(self, key: str, kind: str) -> dict | None:
        return self._entries.get((key, kind))

    def probe(self, key: str, kind: str) -> bool:
        return (key, kind) in self._entries

    def store(self, key: str, payload: dict, kind: str) -> None:
        self._entries[(key, kind)] = payload

    def usage(self) -> dict:
        return {
            "entries": len(self._entries),
            "disk_bytes": 0,
            "oldest_age_seconds": None,
            "lru_age_seconds": None,
        }

    def clear(self) -> int:
        removed = len(self._entries)
        self._entries.clear()
        return removed

    def describe(self) -> str:
        return "memory"

    def __len__(self) -> int:
        return len(self._entries)


class FilesystemBackend(CacheBackend):
    """One directory of gzip entry files plus a persistent manifest index.

    This is the storage layer extracted from the pre-backend ``ResultCache``:
    atomic compressed writes (:func:`repro.runtime.lifecycle.write_entry`),
    transparent reads of legacy uncompressed entries, and the incrementally
    maintained manifest that makes ``len``/``usage``/GC O(1) instead of a
    directory scan.  Entry validation (schema + kind + payload shape) lives
    here so every filesystem-shaped backend rejects damage identically.
    """

    persistent = True
    shared = False

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory).expanduser()
        self.directory.mkdir(parents=True, exist_ok=True)
        self.manifest = lifecycle.CacheManifest(self.directory)

    # ------------------------------------------------------------------ entries
    def _drop(self, path: Path, key: str) -> None:
        """Remove a corrupted entry file and its manifest record."""
        try:
            path.unlink()
        except OSError:
            pass
        self.manifest.record_remove(key)

    def _read(self, key: str, kind: str) -> dict | None:
        """The validated payload of ``(key, kind)``; raises :class:`CorruptEntry`."""
        path = lifecycle.find_entry(self.directory, key)
        if path is None:
            return None
        try:
            entry = lifecycle.read_entry(path)
            if entry["schema"] != ENTRY_SCHEMA or entry["kind"] != kind:
                raise ValueError("cache entry schema mismatch")
            payload = entry["payload"]
            if not isinstance(payload, dict):
                raise ValueError("cache entry payload is not an object")
        except (OSError, ValueError, KeyError, TypeError) as error:
            self._drop(path, key)
            raise CorruptEntry(str(error)) from error
        return payload

    def load(self, key: str, kind: str) -> dict | None:
        payload = self._read(key, kind)
        if payload is not None:
            self.manifest.record_use(key)
        return payload

    def probe(self, key: str, kind: str) -> bool:
        # Validates without retaining the payload: planning probes never
        # consume results, so there is nothing worth keeping in memory.
        return self._read(key, kind) is not None

    def store(self, key: str, payload: dict, kind: str) -> None:
        entry = {"schema": ENTRY_SCHEMA, "kind": kind, "key": key, "payload": payload}
        size = lifecycle.write_entry(self.directory, key, entry)
        self.manifest.record_store(key, kind, size)

    def touch(self, key: str) -> None:
        self.manifest.record_use(key)

    # -------------------------------------------------------------- observation
    def usage(self) -> dict:
        stats = self.manifest.stats()
        return {
            "entries": stats["entries"],
            "disk_bytes": stats["bytes"],
            "oldest_age_seconds": stats["oldest_age_seconds"],
            "lru_age_seconds": stats["lru_age_seconds"],
        }

    def gc(self, max_bytes: int | None = None, max_age: float | None = None) -> GCResult:
        return self.manifest.gc(max_bytes=max_bytes, max_age=max_age)

    def clear(self) -> int:
        return self.manifest.clear()

    def describe(self) -> str:
        return f"filesystem:{self.directory}"

    def __len__(self) -> int:
        return len(self.manifest)


#: Minimum seconds between manifest re-syncs of a :class:`SharedDirectoryBackend`.
#: Existence checks always go to the filesystem; this only throttles how often
#: *usage/size* queries reload sibling processes' bookkeeping.
SHARED_SYNC_INTERVAL = 2.0


class SharedDirectoryBackend(FilesystemBackend):
    """A filesystem backend safe for many processes sharing one directory.

    :class:`FilesystemBackend` is already *write*-safe across processes
    (atomic entry files, merge-on-save manifest), but its in-memory manifest
    view goes stale the moment a sibling process stores or evicts an entry —
    acceptable for pool workers that exit with their run, wrong for long-lived
    cluster workers whose ``usage``/``len`` feed capacity decisions and merged
    stats.  This subclass re-syncs the manifest from disk before answering
    usage and size queries, throttled to :data:`SHARED_SYNC_INTERVAL` so the
    hot lookup path never pays for it.  Loads and probes hit the filesystem
    directly in the base class, so entry *reads* are always coherent.
    """

    shared = True

    def __init__(
        self, directory: str | Path, sync_interval: float = SHARED_SYNC_INTERVAL
    ) -> None:
        super().__init__(directory)
        self.sync_interval = sync_interval
        self._last_sync = 0.0

    def _sync(self) -> None:
        now = time.monotonic()
        if now - self._last_sync < self.sync_interval:
            return
        self._last_sync = now
        self.manifest.refresh()

    def usage(self) -> dict:
        self._sync()
        return super().usage()

    def gc(self, max_bytes: int | None = None, max_age: float | None = None) -> GCResult:
        # Collect against the directory's current state, not a stale view.
        self.manifest.refresh()
        self._last_sync = time.monotonic()
        return super().gc(max_bytes=max_bytes, max_age=max_age)

    def describe(self) -> str:
        return f"shared-directory:{self.directory}"

    def __len__(self) -> int:
        self._sync()
        return super().__len__()
