"""Stripes (STR) — the bit-serial-neuron / bit-parallel-synapse baseline.

Stripes (Judd et al.) processes neurons bit-serially over ``p`` cycles, where
``p`` is the per-layer precision obtained by profiling, and compensates the
serial slowdown by processing 16 windows in parallel.  Its ideal speedup over
DaDN is ``16 / p``; it removes the excess-of-precision (EoP) bits but still
processes every bit inside the precision window, zero or not — which is exactly
the inefficiency Pragmatic removes.

* :class:`StripesModel` — closed-form cycle/term model.
* :class:`StripesFunctional` — functional bit-serial computation used to verify
  that serial processing of the precision window reproduces the reference
  convolution exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.config import ChipConfig, DEFAULT_CHIP
from repro.nn.layers import ConvLayerSpec
from repro.nn.networks import Network
from repro.nn.precision import LayerPrecision
from repro.nn.reference import check_shapes, conv2d_reference
from repro.nn.traces import NetworkTrace

__all__ = ["StripesModel", "StripesFunctional"]


@dataclass(frozen=True)
class StripesModel:
    """Closed-form cycle and term-count model of the Stripes chip."""

    chip: ChipConfig = DEFAULT_CHIP

    @property
    def name(self) -> str:
        return "Stripes"

    def layer_cycles(self, layer: ConvLayerSpec, precision: LayerPrecision | int) -> int:
        """Cycles for one layer given its neuron precision.

        Each brick step of each window pallet costs ``p`` cycles (one per
        neuron bit inside the precision window), per filter pass.
        """
        width = precision if isinstance(precision, int) else precision.width
        if width < 1:
            raise ValueError("precision width must be at least 1 bit")
        width = min(width, self.chip.storage_bits)
        passes = layer.filter_passes(self.chip.filters_per_cycle)
        return passes * layer.window_groups * layer.bricks_per_window * width

    def layer_terms(self, layer: ConvLayerSpec, precision: LayerPrecision | int) -> int:
        """Terms processed: ``p`` per neuron-and-synapse pair."""
        width = precision if isinstance(precision, int) else precision.width
        return layer.macs * min(max(width, 1), self.chip.storage_bits)

    def network_cycles(self, trace: NetworkTrace) -> int:
        """Cycles summed over a traced network using its precision profile."""
        return sum(
            self.layer_cycles(layer, trace.layer_precision(index))
            for index, layer in enumerate(trace.network.layers)
        )

    def network_cycles_from_widths(self, network: Network, widths: tuple[int, ...]) -> int:
        """Cycles summed over a network given explicit per-layer precision widths."""
        if len(widths) != network.num_layers:
            raise ValueError("one precision width per layer is required")
        return sum(
            self.layer_cycles(layer, width) for layer, width in zip(network.layers, widths)
        )


@dataclass
class StripesFunctional:
    """Functional bit-serial computation (the unit of Figure 4b).

    For every bit position inside the precision window, the neuron bit is ANDed
    with the full synapse and the result is accumulated shifted by the bit
    position.  When the window covers all set bits of the neurons the output is
    exactly the reference convolution.
    """

    chip: ChipConfig = field(default_factory=lambda: DEFAULT_CHIP)

    def compute_layer(
        self,
        layer: ConvLayerSpec,
        neurons: np.ndarray,
        synapses: np.ndarray,
        precision: LayerPrecision,
    ) -> np.ndarray:
        """Bit-serial computation of the layer output ``[N, Oy, Ox]``.

        Neuron magnitudes must fit inside the precision window (callers trim
        first); signs are handled by applying the neuron's sign to its terms.
        """
        check_shapes(layer, neurons, synapses)
        values = np.asarray(neurons, dtype=np.int64)
        magnitudes = np.abs(values)
        signs = np.sign(values)
        if np.any(magnitudes & ~np.int64(precision.mask)):
            raise ValueError(
                "neuron magnitudes have set bits outside the precision window; "
                "apply LayerPrecision.trim() before the bit-serial computation"
            )
        out = np.zeros(
            (layer.num_filters, layer.output_height, layer.output_width), dtype=np.int64
        )
        for bit in range(precision.lsb, precision.msb + 1):
            bit_plane = ((magnitudes >> bit) & 1) * signs
            out += conv2d_reference(layer, bit_plane, synapses) << bit
        return out

    def cycles_per_window_group(self, precision: LayerPrecision) -> int:
        """Cycles one pallet step costs: the precision width."""
        return precision.width
