"""Brick and pallet extraction from neuron tensors.

The DaDianNao family of accelerators consumes input neurons in *bricks* (16
values contiguous along the input-channel dimension) and Stripes/Pragmatic
consume *pallets* (16 bricks from 16 adjacent windows).  This module turns a
layer's input tensor into those structures, both exhaustively (exact mode, used
by the functional models and for small layers) and by sampling (used by the
cycle simulator on full-size layers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.nn.layers import BRICK_SIZE, PALLET_WINDOWS, ConvLayerSpec
from repro.nn.reference import pad_input
from repro.nn.traces import NetworkTrace

__all__ = [
    "BrickPosition",
    "brick_positions",
    "window_coordinates",
    "pallet_window_coordinates",
    "extract_brick",
    "extract_pallet_step",
    "iter_pallet_steps",
    "exact_pallet_values",
    "sample_pallet_values",
    "SamplingConfig",
]


@dataclass(frozen=True)
class BrickPosition:
    """One (filter-row, filter-column, channel-brick) position within a window."""

    fy: int
    fx: int
    channel_brick: int


def brick_positions(layer: ConvLayerSpec) -> list[BrickPosition]:
    """All brick positions of a window, in the order the tiles walk them."""
    return [
        BrickPosition(fy=fy, fx=fx, channel_brick=cb)
        for fy in range(layer.filter_height)
        for fx in range(layer.filter_width)
        for cb in range(layer.channel_bricks)
    ]


def window_coordinates(layer: ConvLayerSpec) -> list[tuple[int, int]]:
    """All window (output) coordinates in row-major order."""
    return [
        (oy, ox) for oy in range(layer.output_height) for ox in range(layer.output_width)
    ]


def pallet_window_coordinates(layer: ConvLayerSpec) -> list[list[tuple[int, int]]]:
    """Group window coordinates into pallets of 16 adjacent windows.

    Windows are grouped in row-major order; the final pallet of a layer may hold
    fewer than 16 windows, in which case the missing window lanes idle (their
    neuron values are treated as zero).
    """
    coords = window_coordinates(layer)
    return [coords[i : i + PALLET_WINDOWS] for i in range(0, len(coords), PALLET_WINDOWS)]


def extract_brick(
    padded: np.ndarray, layer: ConvLayerSpec, oy: int, ox: int, position: BrickPosition
) -> np.ndarray:
    """Read the 16 neurons of one brick (zero padded past the channel count).

    ``padded`` is the layer input after spatial padding, shaped ``[I, H, W]``.
    """
    y = oy * layer.stride + position.fy
    x = ox * layer.stride + position.fx
    start = position.channel_brick * BRICK_SIZE
    stop = min(start + BRICK_SIZE, layer.input_channels)
    brick = np.zeros(BRICK_SIZE, dtype=np.int64)
    brick[: stop - start] = padded[start:stop, y, x]
    return brick


def extract_pallet_step(
    padded: np.ndarray,
    layer: ConvLayerSpec,
    windows: list[tuple[int, int]],
    position: BrickPosition,
) -> np.ndarray:
    """Neurons of one pallet step: ``[PALLET_WINDOWS, BRICK_SIZE]``.

    Missing windows (short final pallet) contribute zero bricks.
    """
    step = np.zeros((PALLET_WINDOWS, BRICK_SIZE), dtype=np.int64)
    for lane, (oy, ox) in enumerate(windows):
        step[lane] = extract_brick(padded, layer, oy, ox, position)
    return step


def iter_pallet_steps(
    neurons: np.ndarray, layer: ConvLayerSpec
) -> Iterator[tuple[int, BrickPosition, np.ndarray]]:
    """Yield ``(pallet_index, position, step_values)`` over the whole layer.

    ``step_values`` has shape ``[PALLET_WINDOWS, BRICK_SIZE]``.  This is the
    exact traversal used by the functional models and by the exact cycle mode.
    """
    padded = pad_input(np.asarray(neurons, dtype=np.int64), layer.padding)
    positions = brick_positions(layer)
    for pallet_index, windows in enumerate(pallet_window_coordinates(layer)):
        for position in positions:
            yield pallet_index, position, extract_pallet_step(padded, layer, windows, position)


def exact_pallet_values(neurons: np.ndarray, layer: ConvLayerSpec) -> np.ndarray:
    """All pallet steps of a layer: ``[pallets, steps, PALLET_WINDOWS, BRICK_SIZE]``.

    Only intended for small layers (tests, examples); memory grows with
    ``pallets * bricks_per_window * 256``.
    """
    padded = pad_input(np.asarray(neurons, dtype=np.int64), layer.padding)
    positions = brick_positions(layer)
    pallets = pallet_window_coordinates(layer)
    out = np.zeros(
        (len(pallets), len(positions), PALLET_WINDOWS, BRICK_SIZE), dtype=np.int64
    )
    for p_index, windows in enumerate(pallets):
        for s_index, position in enumerate(positions):
            out[p_index, s_index] = extract_pallet_step(padded, layer, windows, position)
    return out


@dataclass(frozen=True)
class SamplingConfig:
    """How many pallets the cycle simulator draws per layer.

    ``max_pallets`` bounds the sample; layers with fewer pallets are evaluated
    exhaustively.  ``exact`` forces full traversal of the real tensor structure
    regardless of size (use only on small layers).
    """

    max_pallets: int = 24
    exact: bool = False
    seed: int = 2024

    def __post_init__(self) -> None:
        if self.max_pallets < 1:
            raise ValueError("max_pallets must be positive")


def sample_pallet_values(
    trace: NetworkTrace, layer_index: int, sampling: SamplingConfig
) -> tuple[np.ndarray, int]:
    """Draw pallet-step neuron values for the cycle simulator.

    Returns ``(values, total_pallets)`` where ``values`` has shape
    ``[sampled_pallets, steps, PALLET_WINDOWS, BRICK_SIZE]`` and
    ``total_pallets`` is the number of pallets the full layer contains (used to
    scale the sampled cycle counts back up).

    In exact mode the real spatial structure of the synthetic tensor is used; in
    sampled mode the neuron values of each sampled step are drawn i.i.d. from
    the layer's calibrated distribution, which matches the exact mode's
    statistics because distinct window lanes read distinct tensor positions
    within any single step (see DESIGN.md §4).
    """
    layer = trace.layer(layer_index)
    total_pallets = layer.window_groups
    if sampling.exact:
        values = exact_pallet_values(trace.layer_input(layer_index), layer)
        return values, total_pallets

    sampled = min(sampling.max_pallets, total_pallets)
    steps = layer.bricks_per_window
    count = sampled * steps * PALLET_WINDOWS * BRICK_SIZE
    flat = trace.sample_layer_values(layer_index, count)
    values = flat.reshape(sampled, steps, PALLET_WINDOWS, BRICK_SIZE)

    # The final pallet of a layer may be short; emulate the idle lanes'
    # contribution proportionally by zeroing lanes of one sampled pallet when the
    # layer's window count is not a multiple of the pallet width.
    remainder = layer.num_windows % PALLET_WINDOWS
    if remainder and sampled == total_pallets:
        values[-1, :, remainder:, :] = 0
    return values, total_pallets
