"""Figure 10 — PRA-2b speedup with per-column synchronization vs SSR count."""

from __future__ import annotations

from repro.analysis.speedup import geometric_mean, stripes_result
from repro.analysis.tables import format_ratio
from repro.core.variants import fig10_variants
from repro.core.sweep import sweep_network
from repro.experiments.base import ExperimentResult, Preset, get_preset
from repro.nn.calibration import calibrated_trace
from repro.nn.networks import get_network

__all__ = ["run", "PAPER_GEOMEANS"]

#: Geometric means the paper reports: one SSR already reaches 3.1x, the ideal
#: configuration 3.45x.
PAPER_GEOMEANS: dict[str, float] = {"1-reg": 3.1, "perCol-ideal": 3.45}


def run(preset: str | Preset = "fast", seed: int = 0) -> ExperimentResult:
    """Reproduce Figure 10: column synchronization as a function of the SSR count."""
    config = get_preset(preset)
    variants = fig10_variants()
    engine_names = ["Stripes", *variants.keys()]
    headers = ["network", *engine_names]
    rows: list[list[object]] = []
    metadata: dict[str, float] = {}
    speedups: dict[str, list[float]] = {name: [] for name in engine_names}

    for name in config.networks:
        network = get_network(name)
        trace = calibrated_trace(network, seed=seed)
        results = sweep_network(trace, variants, sampling=config.sampling())
        stripes = stripes_result(trace)
        row: list[object] = [network.name, format_ratio(stripes.speedup)]
        speedups["Stripes"].append(stripes.speedup)
        metadata[f"{network.name}:Stripes"] = stripes.speedup
        for label in variants:
            speedup = results[label].speedup
            row.append(format_ratio(speedup))
            speedups[label].append(speedup)
            metadata[f"{network.name}:{label}"] = speedup
        rows.append(row)

    geomeans = {name: geometric_mean(values) for name, values in speedups.items()}
    rows.append(["geomean", *[format_ratio(geomeans[name]) for name in engine_names]])
    for name, value in geomeans.items():
        metadata[f"geomean:{name}"] = value
    notes = (
        "Paper geometric means: PRA-2b with a single SSR reaches 3.1x, close to the\n"
        "3.45x of the ideal (infinitely buffered) per-column configuration."
    )
    return ExperimentResult(
        experiment="fig10",
        title="Figure 10: PRA-2b speedup with per-column synchronization vs SSR count",
        headers=headers,
        rows=rows,
        notes=notes,
        metadata=metadata,
    )
