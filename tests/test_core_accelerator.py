"""Unit tests for the Pragmatic accelerator cycle simulator."""

import numpy as np
import pytest

from repro.arch.tiling import SamplingConfig
from repro.baselines.dadiannao import DaDianNaoModel
from repro.core.accelerator import (
    LayerResult,
    NetworkResult,
    PragmaticAccelerator,
    PragmaticConfig,
)
from repro.core.software import SoftwareGuidance


class TestPragmaticConfig:
    def test_defaults(self):
        config = PragmaticConfig()
        assert config.first_stage_bits == 2
        assert config.synchronization == "pallet"
        assert config.software_trimming

    def test_name_generation(self):
        assert PragmaticConfig(first_stage_bits=3).name == "PRA-3b"
        assert PragmaticConfig(synchronization="column", ssr_count=4).name == "PRA-2b-4R"
        assert (
            PragmaticConfig(synchronization="column", ssr_count=None).name == "PRA-2b-idealR"
        )
        assert PragmaticConfig(software_trimming=False).name == "PRA-2b-fp"

    def test_label_overrides_name(self):
        assert PragmaticConfig(label="custom").name == "custom"

    def test_validation(self):
        with pytest.raises(ValueError):
            PragmaticConfig(first_stage_bits=5)
        with pytest.raises(ValueError):
            PragmaticConfig(synchronization="row")
        with pytest.raises(ValueError):
            PragmaticConfig(synchronization="column", ssr_count=0)


class TestResults:
    def test_layer_result_speedup(self):
        result = LayerResult("l", cycles=50.0, baseline_cycles=100.0, terms=1.0, baseline_terms=4.0)
        assert result.speedup == 2.0
        assert result.term_reduction == 0.25

    def test_network_result_aggregates(self):
        layers = (
            LayerResult("a", 10.0, 40.0, 1.0, 2.0),
            LayerResult("b", 30.0, 40.0, 1.0, 2.0),
        )
        result = NetworkResult("net", "PRA", layers)
        assert result.cycles == 40.0
        assert result.baseline_cycles == 80.0
        assert result.speedup == 2.0
        assert "PRA on net" in result.summary()


class TestPragmaticAccelerator:
    def test_exact_layer_simulation_bounds(self, tiny_trace):
        accelerator = PragmaticAccelerator(PragmaticConfig(software_trimming=False))
        result = accelerator.simulate_layer(tiny_trace, 0, SamplingConfig(exact=True))
        baseline = DaDianNaoModel().layer_cycles(tiny_trace.layer(0))
        assert result.baseline_cycles == baseline
        assert result.cycles <= baseline
        assert result.cycles >= baseline / 16.0

    def test_speedup_at_least_one_and_at_most_sixteen(self, tiny_trace):
        accelerator = PragmaticAccelerator(PragmaticConfig())
        network = accelerator.simulate_network(tiny_trace, SamplingConfig(exact=True))
        assert 1.0 <= network.speedup <= 16.0

    def test_sampled_matches_exact_for_small_layers(self, tiny_trace):
        accelerator = PragmaticAccelerator(PragmaticConfig())
        exact = accelerator.simulate_layer(tiny_trace, 0, SamplingConfig(exact=True))
        sampled = accelerator.simulate_layer(tiny_trace, 0, SamplingConfig(max_pallets=64))
        assert sampled.cycles == pytest.approx(exact.cycles, rel=0.35)

    def test_software_trimming_never_slows_down(self, tiny_trace):
        sampling = SamplingConfig(exact=True)
        with_software = PragmaticAccelerator(PragmaticConfig(software_trimming=True))
        without_software = PragmaticAccelerator(PragmaticConfig(software_trimming=False))
        fast = with_software.simulate_network(tiny_trace, sampling)
        slow = without_software.simulate_network(tiny_trace, sampling)
        assert fast.cycles <= slow.cycles + 1e-9

    def test_column_sync_not_slower_than_pallet_sync(self, tiny_trace):
        sampling = SamplingConfig(exact=True)
        pallet = PragmaticAccelerator(PragmaticConfig(synchronization="pallet"))
        column = PragmaticAccelerator(
            PragmaticConfig(synchronization="column", ssr_count=None)
        )
        pallet_result = pallet.simulate_network(tiny_trace, sampling)
        column_result = column.simulate_network(tiny_trace, sampling)
        # Allow the small SB-port skew the column model charges per step.
        slack = sum(layer.bricks_per_window * layer.window_groups for layer in tiny_trace.network.layers)
        assert column_result.cycles <= pallet_result.cycles + slack

    def test_explicit_guidance_override(self, tiny_trace):
        accelerator = PragmaticAccelerator(PragmaticConfig(software_trimming=True))
        guidance = SoftwareGuidance.disabled(tiny_trace.network.num_layers)
        result = accelerator.simulate_layer(
            tiny_trace, 0, SamplingConfig(exact=True), guidance=guidance
        )
        unguided = PragmaticAccelerator(PragmaticConfig(software_trimming=False)).simulate_layer(
            tiny_trace, 0, SamplingConfig(exact=True)
        )
        assert result.cycles == pytest.approx(unguided.cycles)

    def test_terms_scale_with_macs(self, tiny_trace):
        accelerator = PragmaticAccelerator(PragmaticConfig())
        result = accelerator.simulate_layer(tiny_trace, 0, SamplingConfig(exact=True))
        layer = tiny_trace.layer(0)
        assert 0 < result.terms <= layer.macs * 16
        assert result.baseline_terms == layer.macs * 16

    def test_accelerator_name_propagates_to_results(self, tiny_trace):
        config = PragmaticConfig(first_stage_bits=3)
        accelerator = PragmaticAccelerator(config)
        result = accelerator.simulate_network(tiny_trace, SamplingConfig(max_pallets=1))
        assert result.accelerator == "PRA-3b"
