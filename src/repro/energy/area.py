"""Area model: compose component inventories into unit and chip areas (Table III/IV)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import ChipConfig, DEFAULT_CHIP
from repro.core.accelerator import PragmaticConfig
from repro.energy.components import (
    AREA_COEFFICIENTS,
    MEMORY_AREA_MM2,
    ComponentCounts,
    component_counts_for,
)

__all__ = ["AreaReport", "unit_area", "chip_area", "design_area"]


def unit_area(counts: ComponentCounts) -> float:
    """Area of one tile's datapath in mm²."""
    return sum(AREA_COEFFICIENTS[name] * value for name, value in counts.as_dict().items())


def chip_area(counts: ComponentCounts, chip: ChipConfig = DEFAULT_CHIP) -> float:
    """Whole-chip area in mm²: all tiles plus the shared memory system."""
    return chip.tiles * unit_area(counts) + MEMORY_AREA_MM2


@dataclass(frozen=True)
class AreaReport:
    """Unit and chip area of one design, with ratios to the DaDianNao baseline."""

    design: str
    unit_mm2: float
    chip_mm2: float
    unit_ratio: float
    chip_ratio: float

    def row(self) -> str:
        return (
            f"{self.design:>14s}  unit {self.unit_mm2:6.2f} mm² ({self.unit_ratio:4.2f}x)  "
            f"chip {self.chip_mm2:6.1f} mm² ({self.chip_ratio:4.2f}x)"
        )


def design_area(
    design: str | PragmaticConfig, chip: ChipConfig = DEFAULT_CHIP
) -> AreaReport:
    """Area report for a design, normalized against DaDianNao."""
    counts = component_counts_for(design, chip)
    baseline_counts = component_counts_for("dadn", chip)
    unit = unit_area(counts)
    total = chip_area(counts, chip)
    baseline_unit = unit_area(baseline_counts)
    baseline_total = chip_area(baseline_counts, chip)
    name = design.name if isinstance(design, PragmaticConfig) else design
    return AreaReport(
        design=name,
        unit_mm2=unit,
        chip_mm2=total,
        unit_ratio=unit / baseline_unit,
        chip_ratio=total / baseline_total,
    )
