"""Figure 9 — speedup over DaDianNao: Stripes and PRA-0b…4b, per-pallet sync."""

from __future__ import annotations

from repro.analysis.speedup import geometric_mean, stripes_result
from repro.analysis.tables import format_ratio
from repro.core.variants import fig9_variants
from repro.experiments.base import ExperimentResult, Preset, get_preset
from repro.runtime import SimulationRequest, TraceSpec, current_session, simulate

__all__ = ["run", "plan", "PAPER_GEOMEANS"]

#: Geometric-mean speedups the paper reports for this figure.
PAPER_GEOMEANS: dict[str, float] = {"Stripes": 1.85, "4-bit": 2.59}


def plan(preset: str | Preset = "fast", seed: int = 0) -> list[SimulationRequest]:
    """The cycle simulations this experiment needs (one job per network)."""
    config = get_preset(preset)
    variants = tuple(fig9_variants().items())
    return [
        SimulationRequest(
            trace=TraceSpec(network=name, seed=seed),
            configs=variants,
            sampling=config.sampling(),
        )
        for name in config.networks
    ]


def run(preset: str | Preset = "fast", seed: int = 0) -> ExperimentResult:
    """Reproduce Figure 9: per-network speedups of STR and the PRA 2-stage variants."""
    config = get_preset(preset)
    variants = fig9_variants()
    engine_names = ["Stripes", *variants.keys()]
    headers = ["network", *engine_names]
    rows: list[list[object]] = []
    metadata: dict[str, float] = {}
    speedups: dict[str, list[float]] = {name: [] for name in engine_names}

    for request in plan(config, seed):
        results = simulate(request)
        trace = current_session().trace(request.trace)
        network_name = trace.network.name
        stripes = stripes_result(trace)
        row: list[object] = [network_name, format_ratio(stripes.speedup)]
        speedups["Stripes"].append(stripes.speedup)
        metadata[f"{network_name}:Stripes"] = stripes.speedup
        for label in variants:
            speedup = results[label].speedup
            row.append(format_ratio(speedup))
            speedups[label].append(speedup)
            metadata[f"{network_name}:{label}"] = speedup
        rows.append(row)

    geomeans = {name: geometric_mean(values) for name, values in speedups.items()}
    rows.append(["geomean", *[format_ratio(geomeans[name]) for name in engine_names]])
    for name, value in geomeans.items():
        metadata[f"geomean:{name}"] = value
    notes = (
        "Paper geometric means: Stripes 1.85x, PRA-single (4-bit) 2.59x; PRA-2b and\n"
        "PRA-3b within 0.2% of PRA-single, PRA-0b about 20% faster than Stripes."
    )
    return ExperimentResult(
        experiment="fig9",
        title="Figure 9: speedup over DaDianNao (2-stage shifting, per-pallet synchronization)",
        headers=headers,
        rows=rows,
        notes=notes,
        metadata=metadata,
    )
