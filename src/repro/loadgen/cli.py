"""``python -m repro loadgen`` — drive sustained traffic, report, and gate.

Modes:

* **run** (default) — replay a seeded request mix against a serve-protocol
  endpoint and emit the report: human-readable text on stderr, schema-checked
  JSON on stdout (or ``--json FILE``).  The target is either an existing
  server (``--connect HOST:PORT``) or — for hermetic runs — a target this
  command spawns and tears down itself: ``--spawn serve`` (one process,
  ``--workers`` execution slots, private temp cache) or ``--spawn cluster``
  (a coordinator over ``--workers`` worker processes, private temp cache).
* ``--gate [FILE]`` — the CI regression gate: compare the two newest records
  of the perf trajectory (default ``benchmarks/reports/bench_summary.json``)
  and exit non-zero on any >``--gate-threshold`` regression of an experiment
  wall time or a loadgen p95 (policy in ``docs/loadgen.md``).

The mix comes from ``--mix FILE`` (JSON, see ``docs/loadgen.md``) with
individual flags overriding single fields; every run is deterministic in its
``--seed``.  ``--append-trajectory`` records the run's percentiles into the
trajectory under the current git sha, which is how each PR's loadgen baseline
lands next to its benchmark wall times.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import re
import sys
import tempfile
from pathlib import Path

from repro.loadgen.gate import DEFAULT_MIN_SECONDS, DEFAULT_THRESHOLD, check_gate_file
from repro.loadgen.mix import MixError, MixSpec
from repro.loadgen.report import validate_report
from repro.loadgen.swarm import LoadSwarm
from repro.loadgen.trajectory import append_loadgen_section, current_git_sha

__all__ = ["main", "DEFAULT_TRAJECTORY"]

#: The repo's perf trajectory (resolved relative to this checkout; falls back
#: to a cwd-relative path when running from an installed package).
_REPO_ROOT = Path(__file__).resolve().parents[3]
DEFAULT_TRAJECTORY = (
    _REPO_ROOT / "benchmarks" / "reports" / "bench_summary.json"
    if (_REPO_ROOT / "benchmarks").is_dir()
    else Path("benchmarks/reports/bench_summary.json")
)

#: Endpoint banners of the spawnable targets (both print to stderr).
_BANNER = re.compile(r"(?:listening on|coordinator on) ([\d.]+):(\d+)")

#: Seconds allowed for a spawned target to print its endpoint banner
#: (cluster startup includes per-worker spawn + handshake).
SPAWN_TIMEOUT = 180.0


class SpawnError(RuntimeError):
    """The spawned target never became ready."""


class _SpawnedTarget:
    """A serve/cluster subprocess owned by this load run (hermetic)."""

    def __init__(
        self,
        kind: str,
        workers: int,
        worker_processes: int,
        cache_backend: str | None = None,
    ) -> None:
        self.kind = kind
        self.workers = workers
        self.worker_processes = worker_processes
        self.cache_backend = cache_backend
        self.process: asyncio.subprocess.Process | None = None
        self.host: str | None = None
        self.port: int | None = None
        self._tmp: tempfile.TemporaryDirectory | None = None

    def _command(self) -> list[str]:
        if self.kind == "serve":
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-loadgen-cache-")
            command = [
                sys.executable, "-m", "repro", "serve",
                "--tcp", "127.0.0.1:0",
                "--workers", str(self.workers),
                "--cache-dir", self._tmp.name,
            ]
        else:
            # Cluster: cache_dir omitted on purpose — the coordinator creates
            # and removes a private shared directory itself.
            command = [
                sys.executable, "-m", "repro", "cluster",
                "--tcp", "127.0.0.1:0",
                "--workers", str(self.workers),
                "--worker-processes", str(self.worker_processes),
            ]
        if self.cache_backend is not None:
            command.extend(["--cache-backend", self.cache_backend])
        return command

    async def __aenter__(self) -> "_SpawnedTarget":
        self.process = await asyncio.create_subprocess_exec(
            *self._command(),
            stdout=asyncio.subprocess.DEVNULL,
            stderr=asyncio.subprocess.PIPE,
        )
        try:
            await asyncio.wait_for(self._await_banner(), SPAWN_TIMEOUT)
        except asyncio.TimeoutError:
            await self._terminate()
            raise SpawnError(
                f"spawned {self.kind} produced no endpoint banner within {SPAWN_TIMEOUT:.0f}s"
            ) from None
        except BaseException:
            await self._terminate()
            raise
        return self

    async def _await_banner(self) -> None:
        assert self.process is not None and self.process.stderr is not None
        while True:
            line = await self.process.stderr.readline()
            if not line:
                code = await self.process.wait()
                raise SpawnError(f"spawned {self.kind} exited early (code {code})")
            match = _BANNER.search(line.decode("utf-8", "replace"))
            if match:
                self.host, self.port = match.group(1), int(match.group(2))
                # Stop consuming stderr; the pipe buffer is ample for the
                # target's remaining diagnostics over one load run.
                return

    async def __aexit__(self, *exc_info) -> None:
        await self._shutdown()

    async def _shutdown(self) -> None:
        """Ask the target to shut down via the protocol; escalate if deaf."""
        from repro.serve.client import ServeClient

        if self.process is not None and self.process.returncode is None and self.port:
            with contextlib.suppress(Exception):
                client = await ServeClient.connect(self.host, self.port)
                await asyncio.wait_for(client.shutdown(), timeout=15)
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(self.process.wait(), timeout=30)
        await self._terminate()
        if self._tmp is not None:
            self._tmp.cleanup()

    async def _terminate(self) -> None:
        if self.process is None or self.process.returncode is not None:
            return
        with contextlib.suppress(ProcessLookupError):
            self.process.terminate()
        try:
            await asyncio.wait_for(self.process.wait(), timeout=10)
        except asyncio.TimeoutError:  # pragma: no cover - last resort
            with contextlib.suppress(ProcessLookupError):
                self.process.kill()
            await self.process.wait()


def _parse_weights(text: str, what: str) -> dict:
    """``name=3,other`` → ``{"name": 3.0, "other": 1.0}`` (validated later)."""
    weights: dict = {}
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        name, _, weight = chunk.partition("=")
        try:
            weights[name.strip()] = float(weight) if weight else 1.0
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"bad {what} weight {chunk!r} (expected name or name=weight)"
            ) from None
    if not weights:
        raise argparse.ArgumentTypeError(f"empty {what} list")
    return weights


def _build_mix(args) -> MixSpec:
    """Mix file (if any) + CLI field overrides → a validated MixSpec."""
    data: dict = {}
    if args.mix:
        data = json.loads(Path(args.mix).read_text(encoding="utf-8"))
        if not isinstance(data, dict):
            raise MixError("mix spec must be a JSON object")
    for name in (
        "requests", "clients", "seed", "hot_ratio", "stream_ratio",
        "cancel_rate", "ramp_seconds", "think_seconds",
    ):
        value = getattr(args, name)
        if value is not None:
            data[name] = value
    if args.experiments is not None:
        data["experiments"] = args.experiments
    if args.presets is not None:
        data["presets"] = args.presets
    if args.overrides is not None:
        data["overrides"] = json.loads(args.overrides)
    return MixSpec.from_dict(data)


async def _run(args, mix: MixSpec) -> int:
    if args.spawn:
        async with _SpawnedTarget(
            args.spawn, args.workers, args.worker_processes,
            cache_backend=args.cache_backend,
        ) as target:
            swarm = LoadSwarm(
                mix, target.host, target.port, auth_token=args.auth_token, target=args.spawn
            )
            report = await swarm.run()
    else:
        host, port = args.connect
        swarm = LoadSwarm(mix, host, port, auth_token=args.auth_token, target="connect")
        report = await swarm.run()

    payload = report.to_dict()
    validate_report(payload)  # a malformed report must fail loudly, not ship
    print(report.to_text(), file=sys.stderr)
    rendered = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.json:
        Path(args.json).write_text(rendered, encoding="utf-8")
        print(f"loadgen: report written to {args.json}", file=sys.stderr)
    else:
        sys.stdout.write(rendered)
    if args.append_trajectory is not None:
        path = args.append_trajectory or DEFAULT_TRAJECTORY
        record = append_loadgen_section(
            path,
            target=args.spawn or "connect",
            section=report.trajectory_section(),
            git_sha=current_git_sha(_REPO_ROOT),
            label=args.label,
        )
        print(
            f"loadgen: trajectory record {record['index']} updated in {path}",
            file=sys.stderr,
        )
    if report.done == 0:
        print("loadgen: no request completed", file=sys.stderr)
        return 1
    if report.failed:
        print(f"loadgen: {report.failed} request(s) failed", file=sys.stderr)
        return 1
    return 0


def _run_gate(args) -> int:
    path = args.gate or DEFAULT_TRAJECTORY
    result = check_gate_file(
        path, threshold=args.gate_threshold, min_seconds=args.gate_min_seconds
    )
    print(result.describe())
    return 0 if result.ok else 1


def main(argv: list[str] | None = None) -> int:
    from repro.serve.cli import _parse_endpoint

    parser = argparse.ArgumentParser(
        prog="repro loadgen",
        description="Sustained-traffic load harness, perf trajectory and regression gate.",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--connect", type=_parse_endpoint, metavar="HOST:PORT",
        help="load an already-running serve/cluster endpoint",
    )
    mode.add_argument(
        "--spawn", choices=("serve", "cluster"),
        help="spawn the target for a hermetic run (private temp cache), "
        "tear it down afterwards",
    )
    mode.add_argument(
        "--gate", nargs="?", const="", metavar="FILE",
        help="regression-gate the perf trajectory (default: "
        "benchmarks/reports/bench_summary.json) and exit",
    )
    parser.add_argument("--auth-token", default=None, help="shared secret of the target")
    parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="--spawn serve: execution slots; --spawn cluster: worker processes "
        "(default: 2)",
    )
    parser.add_argument(
        "--worker-processes", type=int, default=2, metavar="K",
        help="--spawn cluster: concurrent jobs per worker (default: 2)",
    )
    parser.add_argument(
        "--cache-backend", default=None, metavar="SPEC",
        help="--spawn: mount a result-cache backend spec on the target "
        "(e.g. remote://HOST:PORT, docs/cachenet.md) instead of its "
        "private temp cache; the report then carries a remote_cache block",
    )
    mix_group = parser.add_argument_group("request mix (see docs/loadgen.md)")
    mix_group.add_argument("--mix", metavar="FILE", help="JSON mix spec (flags override fields)")
    mix_group.add_argument("--requests", type=int, default=None, metavar="N")
    mix_group.add_argument("--clients", type=int, default=None, metavar="N")
    mix_group.add_argument("--seed", type=int, default=None, metavar="N")
    mix_group.add_argument("--hot-ratio", type=float, default=None, metavar="F")
    mix_group.add_argument("--stream-ratio", type=float, default=None, metavar="F")
    mix_group.add_argument("--cancel-rate", type=float, default=None, metavar="F")
    mix_group.add_argument("--ramp-seconds", type=float, default=None, metavar="S")
    mix_group.add_argument("--think-seconds", type=float, default=None, metavar="S")
    mix_group.add_argument(
        "--experiments", type=lambda text: _parse_weights(text, "experiments"),
        default=None, metavar="NAME[=W],...",
    )
    mix_group.add_argument(
        "--presets", type=lambda text: _parse_weights(text, "presets"),
        default=None, metavar="NAME[=W],...",
    )
    mix_group.add_argument(
        "--overrides", default=None, metavar="JSON",
        help='preset overrides for every request, e.g. \'{"networks": ["alexnet"]}\'',
    )
    out = parser.add_argument_group("output")
    out.add_argument("--json", metavar="FILE", help="write the JSON report here instead of stdout")
    out.add_argument(
        "--append-trajectory", nargs="?", const="", default=None, metavar="FILE",
        help="record this run's percentiles into the perf trajectory "
        "(default file: benchmarks/reports/bench_summary.json)",
    )
    out.add_argument("--label", default=None, help="label for the trajectory record (e.g. 'PR 6')")
    gate_group = parser.add_argument_group("gate policy")
    gate_group.add_argument(
        "--gate-threshold", type=float, default=DEFAULT_THRESHOLD, metavar="F",
        help=f"maximum tolerated relative slowdown (default: {DEFAULT_THRESHOLD})",
    )
    gate_group.add_argument(
        "--gate-min-seconds", type=float, default=DEFAULT_MIN_SECONDS, metavar="S",
        help=f"skip metrics with a baseline below S seconds (default: {DEFAULT_MIN_SECONDS})",
    )
    args = parser.parse_args(argv)

    if args.gate is not None:
        return _run_gate(args)
    if not args.spawn and not args.connect:
        parser.error("pick a target: --spawn serve|cluster or --connect HOST:PORT")
    if args.workers < 1 or args.worker_processes < 1:
        parser.error("--workers and --worker-processes must be at least 1")
    if args.cache_backend and not args.spawn:
        parser.error("--cache-backend requires --spawn (a connected target "
                     "already chose its backend)")
    try:
        mix = _build_mix(args)
    except (MixError, ValueError) as error:
        parser.error(str(error))
    try:
        return asyncio.run(_run(args, mix))
    except SpawnError as error:
        print(f"loadgen: {error}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
