#!/usr/bin/env python3
"""Design-space exploration: first-stage shifter width and SSR count.

The two knobs the paper sweeps are the width ``L`` of the per-synapse
first-stage shifters (Figure 9 / Table III) and, for per-column
synchronization, the number of synapse set registers (Figure 10 / Table IV).
This example sweeps both over any network and reports performance together
with the area/power cost of each point — the data a designer would use to pick
the PRA-2b-1R configuration the paper recommends.

Run it with::

    python examples/design_space_exploration.py [network]
"""

from __future__ import annotations

import sys

from repro.analysis.tables import format_ratio, format_table
from repro.arch.tiling import SamplingConfig
from repro.core.sweep import sweep_network
from repro.core.variants import column_variant, pallet_variant
from repro.energy.area import design_area
from repro.energy.efficiency import design_efficiency
from repro.energy.power import design_power
from repro.nn.calibration import calibrated_trace


def main(network: str = "vgg_m") -> None:
    trace = calibrated_trace(network)
    sampling = SamplingConfig(max_pallets=8)

    print(f"== First-stage shifter sweep (per-pallet sync) on {network} ==")
    shifter_configs = {f"PRA-{bits}b": pallet_variant(bits) for bits in range(5)}
    results = sweep_network(trace, shifter_configs, sampling=sampling)
    rows = []
    for name, config in shifter_configs.items():
        result = results[name]
        rows.append(
            [
                name,
                format_ratio(result.speedup),
                f"{design_area(config).chip_mm2:.0f} mm2",
                f"{design_power(config).chip_w:.1f} W",
                format_ratio(design_efficiency(config, result).efficiency),
            ]
        )
    print(format_table(["design", "speedup", "chip area", "chip power", "energy eff."], rows))
    print()

    print(f"== SSR sweep (per-column sync, L = 2) on {network} ==")
    ssr_configs = {
        ("ideal" if count is None else f"{count} SSR"): column_variant(count)
        for count in (1, 2, 4, 8, 16, None)
    }
    results = sweep_network(trace, ssr_configs, sampling=sampling)
    rows = []
    for name, config in ssr_configs.items():
        result = results[name]
        rows.append(
            [
                name,
                format_ratio(result.speedup),
                f"{design_area(config).unit_mm2:.2f} mm2/unit",
                f"{design_power(config).chip_w:.1f} W",
                format_ratio(design_efficiency(config, result).efficiency),
            ]
        )
    print(format_table(["SSRs", "speedup", "unit area", "chip power", "energy eff."], rows))
    print()
    print(
        "The knee of both curves is the configuration the paper recommends:\n"
        "2-bit first-stage shifters with per-column synchronization and one SSR."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "vgg_m")
