"""Ablation study of the reproduction's trace-modelling choices (beyond the paper).

The synthetic-trace substitution (DESIGN.md §4) introduces two modelling choices
the paper did not have to make: how many trimmable suffix bits the stored
neurons carry, and whether the first layer is fed dense image pixels.  This
experiment quantifies how sensitive the headline speedup (PRA-2b, per-pallet
synchronization) is to both, so readers can judge the robustness of the
reproduced conclusions.
"""

from __future__ import annotations

from repro.analysis.speedup import geometric_mean
from repro.analysis.tables import format_ratio
from repro.arch.tiling import SamplingConfig
from repro.core.accelerator import PragmaticAccelerator
from repro.core.variants import pallet_variant
from repro.experiments.base import ExperimentResult, Preset, get_preset
from repro.nn.calibration import calibrated_trace
from repro.nn.networks import get_network

__all__ = ["run"]

#: Suffix-bit depths swept by the ablation.
SUFFIX_BITS = (0, 1, 2, 3)


def run(preset: str | Preset = "fast", seed: int = 0) -> ExperimentResult:
    """Sweep suffix bits and the dense-first-layer switch for PRA-2b."""
    config = get_preset(preset)
    accelerator = PragmaticAccelerator(pallet_variant(2))
    sampling = SamplingConfig(max_pallets=config.max_pallets, seed=config.seed)

    headers = ["configuration", *(config.networks), "geomean"]
    rows: list[list[object]] = []
    metadata: dict[str, float] = {}

    scenarios: list[tuple[str, dict[str, object]]] = [
        (f"suffix={bits}, dense first layer", {"suffix_bits": bits, "dense_first_layer": True})
        for bits in SUFFIX_BITS
    ]
    scenarios.append(
        ("suffix=2, sparse first layer", {"suffix_bits": 2, "dense_first_layer": False})
    )

    for label, kwargs in scenarios:
        speedups = []
        row: list[object] = [label]
        for name in config.networks:
            trace = calibrated_trace(get_network(name), seed=seed, **kwargs)
            result = accelerator.simulate_network(trace, sampling)
            speedups.append(result.speedup)
            row.append(format_ratio(result.speedup))
            metadata[f"{label}:{name}"] = result.speedup
        mean = geometric_mean(speedups)
        row.append(format_ratio(mean))
        metadata[f"{label}:geomean"] = mean
        rows.append(row)

    notes = (
        "PRA-2b, per-pallet synchronization.  More suffix bits give software guidance more\n"
        "to trim (higher speedup); modelling the first layer as sparse ReLU output instead\n"
        "of dense image pixels overstates the speedup, which is why the dense model is the\n"
        "default (DESIGN.md §4)."
    )
    return ExperimentResult(
        experiment="ablation",
        title="Ablation: sensitivity of the PRA-2b speedup to trace-modelling choices",
        headers=headers,
        rows=rows,
        notes=notes,
        metadata=metadata,
    )
