"""Cache lifecycle: the manifest index, the entry codec, and garbage collection.

The disk cache (:mod:`repro.runtime.cache`) used to be nothing but a directory
of ``<key>.json`` files — unbounded, uncompressed, and only inspectable by
globbing.  This module adds the lifecycle layer around that directory:

* **entry codec** — new entries are written as gzip-compressed
  ``<key>.json.gz`` files (full-preset payloads compress ~10x); reads accept
  both the compressed form and legacy uncompressed ``<key>.json`` entries, so
  a cache populated before the format change keeps hitting after it.
* **manifest** — ``manifest.json`` is a persistent index of the directory
  (per entry: kind, byte size, created/last-used timestamps), maintained
  incrementally on every store/remove so entry counts and disk usage are one
  manifest read instead of an O(N) directory scan.  A missing or corrupted
  manifest is rebuilt from the directory and is therefore never
  authoritative over the entries themselves — losing it loses bookkeeping,
  not results.
* **garbage collection** — :meth:`CacheManifest.gc` enforces a byte cap
  and/or a maximum entry age, evicting least-recently-used entries first.
* **clear** — :meth:`CacheManifest.clear` deletes every entry plus the
  manifest.

Concurrency: the manifest is written atomically (temp file + rename) and
every save first merges the copy on disk, so concurrent processes appending
entries to one shared cache directory keep each other's bookkeeping.  The
read-merge-replace is not transactional — a record can still lose a race —
but every loss self-heals: an unindexed entry is re-indexed the next time it
is read, a record whose file was removed behind our back is dropped at the
next save, and a missing/corrupted manifest is rebuilt outright.  Last-used
timestamps are also mirrored into file mtimes, which is what a rebuild falls
back to, so LRU order survives (approximately) even across a manifest loss.
``docs/runtime.md`` documents the on-disk layout and the GC policy.
"""

from __future__ import annotations

import gzip
import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "COMPRESSED_SUFFIX",
    "LEGACY_SUFFIX",
    "TENSOR_SUFFIX",
    "MANIFEST_NAME",
    "CacheManifest",
    "GCResult",
    "entry_path",
    "find_entry",
    "read_entry",
    "tensor_path",
    "write_entry",
]

#: Preferred on-disk form of new entries.
COMPRESSED_SUFFIX = ".json.gz"

#: Uncompressed entries written before the format change; still readable.
LEGACY_SUFFIX = ".json"

#: Raw numpy tensor artifacts (the trace fabric,
#: :mod:`repro.runtime.trace_cache`).  Deliberately *not* gzip-wrapped: the
#: whole point of the format is that ``np.load(..., mmap_mode="r")`` maps the
#: file read-only without copying it, so N processes share one physical copy.
TENSOR_SUFFIX = ".npy"

#: Index file inside the cache directory (never itself a cache entry).
MANIFEST_NAME = "manifest.json"

#: Format version of the manifest; mismatches trigger a rebuild.
MANIFEST_SCHEMA = 1

#: LRU bookkeeping granularity: implicit (real-time) uses within this many
#: seconds of the recorded ``last_used`` are no-ops, so hot entries cost one
#: timestamp update per window instead of one per hit.
USE_GRANULARITY = 60.0

#: Minimum seconds between manifest writes triggered by *uses*.  Stores and
#: removals always persist immediately; use-only updates are batched so a
#: warm run re-reading N entries does not rewrite the manifest N times.
SAVE_INTERVAL = 5.0


# ------------------------------------------------------------------ entry codec
def entry_path(directory: Path, key: str) -> Path:
    """Where a *new* entry for ``key`` is written (compressed form)."""
    return directory / f"{key}{COMPRESSED_SUFFIX}"


def legacy_path(directory: Path, key: str) -> Path:
    """Where the pre-compression format stored ``key``."""
    return directory / f"{key}{LEGACY_SUFFIX}"


def tensor_path(directory: Path, key: str) -> Path:
    """Where a raw ``.npy`` tensor artifact for ``key`` lives."""
    return directory / f"{key}{TENSOR_SUFFIX}"


def find_entry(directory: Path, key: str) -> Path | None:
    """The existing on-disk file of ``key`` (compressed preferred), or ``None``."""
    for path in (
        entry_path(directory, key),
        legacy_path(directory, key),
        tensor_path(directory, key),
    ):
        if path.exists():
            return path
    return None


def read_entry(path: Path) -> dict:
    """Decode one entry file, transparently handling both formats.

    Raises ``OSError`` / ``ValueError`` on unreadable or malformed content —
    the cache treats either as corruption.
    """
    data = path.read_bytes()
    if data[:2] == b"\x1f\x8b":  # gzip magic; suffix-agnostic on purpose
        data = gzip.decompress(data)
    entry = json.loads(data.decode("utf-8"))
    if not isinstance(entry, dict):
        raise ValueError("cache entry is not an object")
    return entry


def write_entry(directory: Path, key: str, entry: dict) -> int:
    """Atomically write ``entry`` compressed; returns its on-disk byte size.

    A leftover legacy uncompressed copy of the same key is removed so the
    directory never holds two generations of one entry.  Raises ``OSError``
    on write failure (the caller degrades to its in-memory copy).
    """
    data = gzip.compress(
        json.dumps(entry, sort_keys=True).encode("utf-8"), mtime=0
    )
    tmp_name = None
    try:
        descriptor, tmp_name = tempfile.mkstemp(
            dir=directory, prefix=f".{key[:16]}-", suffix=".tmp"
        )
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(data)
        os.replace(tmp_name, entry_path(directory, key))
    except OSError:
        if tmp_name is not None:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
        raise
    try:
        legacy_path(directory, key).unlink()
    except OSError:
        pass
    return len(data)


def _remove_entry_files(directory: Path, key: str) -> None:
    """Delete every on-disk form of ``key`` (best effort).

    Unlinking a ``.npy`` a live process has mapped is safe on POSIX — the
    inode (and the mapping) survives until the last reader unmaps it; only
    the name disappears, and the next fetch re-materializes the artifact.
    """
    for path in (
        entry_path(directory, key),
        legacy_path(directory, key),
        tensor_path(directory, key),
    ):
        try:
            path.unlink()
        except OSError:
            pass


# -------------------------------------------------------------------- manifest
@dataclass
class GCResult:
    """Outcome of one garbage-collection pass."""

    removed_entries: int = 0
    removed_bytes: int = 0
    remaining_entries: int = 0
    remaining_bytes: int = 0
    removed_keys: list[str] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"evicted {self.removed_entries} entries ({self.removed_bytes} bytes); "
            f"{self.remaining_entries} entries ({self.remaining_bytes} bytes) remain"
        )


class CacheManifest:
    """Persistent, incrementally-maintained index of one cache directory.

    One record per entry::

        key -> {"kind": str | None, "size": int, "created": float, "last_used": float}

    All methods are thread-safe (the serve worker pool drives one shared
    cache from many threads).  The manifest is loaded lazily; a missing or
    corrupted file triggers :meth:`rebuild` from a directory scan (``kind``
    is unknown after a rebuild, sizes and LRU order come from ``stat``).
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.path = self.directory / MANIFEST_NAME
        self.rebuilds = 0
        self._lock = threading.RLock()
        self._entries: dict[str, dict] | None = None
        self._removed: set[str] = set()
        self._dirty = False
        self._last_save = 0.0  # time.monotonic() of the last _save()

    # ------------------------------------------------------------- persistence
    def _load(self) -> dict[str, dict]:
        """The in-memory index, loading (or rebuilding) it on first use."""
        if self._entries is None:
            loaded = self._read_file()
            if loaded is None:
                self._entries = self._scan()
                self.rebuilds += 1
                self._save()
            else:
                self._entries = loaded
        return self._entries

    def _read_file(self) -> dict[str, dict] | None:
        """The manifest file's entries, or ``None`` when missing/corrupted."""
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
            if raw["schema"] != MANIFEST_SCHEMA:
                raise ValueError("manifest schema mismatch")
            entries = raw["entries"]
            if not isinstance(entries, dict) or not all(
                isinstance(meta, dict) and isinstance(meta.get("size"), int)
                for meta in entries.values()
            ):
                raise ValueError("manifest entries malformed")
        except (OSError, ValueError, KeyError, TypeError):
            return None
        return entries

    def _scan(self) -> dict[str, dict]:
        """Rebuild the index from the entry files actually present."""
        entries: dict[str, dict] = {}
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return entries
        for name in names:
            if name == MANIFEST_NAME or name.startswith("."):
                continue
            if name.endswith(COMPRESSED_SUFFIX):
                key = name[: -len(COMPRESSED_SUFFIX)]
            elif name.endswith(LEGACY_SUFFIX):
                key = name[: -len(LEGACY_SUFFIX)]
            elif name.endswith(TENSOR_SUFFIX):
                key = name[: -len(TENSOR_SUFFIX)]
            else:
                continue
            try:
                info = (self.directory / name).stat()
            except OSError:
                continue
            known = entries.get(key)
            record = {
                "kind": None,
                "size": info.st_size,
                "created": info.st_mtime,
                "last_used": info.st_mtime,
            }
            # Both generations present: index the compressed (preferred) one.
            if known is None or name.endswith(COMPRESSED_SUFFIX):
                entries[key] = record
        return entries

    def _save(self) -> None:
        """Atomically persist the index, merging concurrent writers' records.

        Entries present only in the on-disk manifest (another process stored
        them since we loaded) are adopted — except keys this instance
        removed; for keys we track, our record is authoritative.  A key we
        track that the disk manifest has dropped is re-verified against the
        directory, so records for entries another process gc'd or cleared
        are not resurrected as ghosts.  Failures are swallowed: the manifest
        is bookkeeping, and a rebuild recovers it.
        """
        assert self._entries is not None
        disk = self._read_file() or {}
        for key, meta in disk.items():
            if key not in self._removed and key not in self._entries:
                self._entries[key] = meta
        for key in [key for key in self._entries if key not in disk]:
            if find_entry(self.directory, key) is None:
                del self._entries[key]
        payload = {"schema": MANIFEST_SCHEMA, "entries": self._entries}
        tmp_name = None
        try:
            descriptor, tmp_name = tempfile.mkstemp(
                dir=self.directory, prefix=".manifest-", suffix=".tmp"
            )
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp_name, self.path)
        except OSError:
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
        self._dirty = False
        self._last_save = time.monotonic()

    # ----------------------------------------------------------------- updates
    def record_store(
        self, key: str, kind: str, size: int, now: float | None = None
    ) -> None:
        """Index a freshly-written entry (persisted immediately)."""
        now = time.time() if now is None else now
        with self._lock:
            entries = self._load()
            entries[key] = {"kind": kind, "size": size, "created": now, "last_used": now}
            self._removed.discard(key)
            self._save()

    def record_use(self, key: str, now: float | None = None) -> None:
        """Refresh an entry's LRU timestamp (manifest and file mtime).

        Implicit (real-time) uses are maintained at ``USE_GRANULARITY`` and
        their manifest writes batched at ``SAVE_INTERVAL`` — this sits on the
        warm lookup path, so it must stay O(1)-ish per hit.  An explicit
        ``now`` (tests, tooling) always takes effect and persists at once.
        """
        explicit = now is not None
        now = time.time() if now is None else now
        with self._lock:
            meta = self._load().get(key)
            if meta is None:
                # Entry written by another process after our load: index it.
                path = find_entry(self.directory, key)
                if path is None:
                    return
                try:
                    size = path.stat().st_size
                except OSError:
                    return
                meta = {"kind": None, "size": size, "created": now, "last_used": now}
                self._entries[key] = meta
            elif not explicit and now - meta.get("last_used", 0) < USE_GRANULARITY:
                return  # hot entry, timestamp fresh enough
            self._removed.discard(key)
            meta["last_used"] = now
            path = find_entry(self.directory, key)
            if path is not None:
                try:
                    os.utime(path, (now, now))
                except OSError:
                    pass
            self._dirty = True
            if explicit or time.monotonic() - self._last_save >= SAVE_INTERVAL:
                self._save()

    def record_remove(self, key: str) -> None:
        """Drop an entry from the index (its file is already gone)."""
        with self._lock:
            self._load().pop(key, None)
            self._removed.add(key)
            self._save()

    # ------------------------------------------------------------- observation
    def refresh(self) -> None:
        """Drop the in-memory index so the next read reloads from disk.

        Used after pool workers (separate processes) have been writing to the
        shared directory: their saves merged into the file, not into this
        process's loaded copy.
        """
        with self._lock:
            if self._dirty and self._entries is not None:
                self._save()  # do not silently drop deferred use-updates
            self._entries = None
            self._removed.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._load())

    def total_bytes(self) -> int:
        with self._lock:
            return sum(meta["size"] for meta in self._load().values())

    def entries(self) -> dict[str, dict]:
        """A snapshot copy of the index."""
        with self._lock:
            return {key: dict(meta) for key, meta in self._load().items()}

    def stats(self, now: float | None = None) -> dict:
        """Aggregate usage: counts, bytes, and entry-age extremes (seconds)."""
        now = time.time() if now is None else now
        with self._lock:
            entries = self._load()
            created = [meta["created"] for meta in entries.values()]
            used = [meta["last_used"] for meta in entries.values()]
            return {
                "entries": len(entries),
                "bytes": sum(meta["size"] for meta in entries.values()),
                "oldest_age_seconds": round(now - min(created), 3) if created else None,
                "lru_age_seconds": round(now - min(used), 3) if used else None,
                "rebuilds": self.rebuilds,
            }

    # -------------------------------------------------------------- collection
    def gc(
        self,
        max_bytes: int | None = None,
        max_age: float | None = None,
        now: float | None = None,
    ) -> GCResult:
        """Evict entries until the cache fits ``max_bytes`` and ``max_age``.

        ``max_age`` (seconds since last use) is applied first; the byte cap
        then evicts least-recently-used entries until the total fits.  Either
        bound may be ``None`` (not enforced).  Evicted entry files are
        deleted; the manifest is saved once at the end.
        """
        now = time.time() if now is None else now
        result = GCResult()
        with self._lock:
            entries = self._load()
            by_lru = sorted(entries.items(), key=lambda item: item[1]["last_used"])
            total = sum(meta["size"] for meta in entries.values())
            for key, meta in by_lru:
                expired = max_age is not None and now - meta["last_used"] > max_age
                over_cap = max_bytes is not None and total > max_bytes
                if not expired and not over_cap:
                    continue
                _remove_entry_files(self.directory, key)
                entries.pop(key, None)
                self._removed.add(key)
                total -= meta["size"]
                result.removed_entries += 1
                result.removed_bytes += meta["size"]
                result.removed_keys.append(key)
            result.remaining_entries = len(entries)
            result.remaining_bytes = total
            if result.removed_entries:
                self._save()
        return result

    def clear(self) -> int:
        """Delete every entry (and the manifest itself); returns entries removed.

        Unlike :meth:`gc`, clearing scans the directory: it is the one
        explicitly-O(N) operation, and must also remove entry files a lost
        manifest race left unindexed.
        """
        with self._lock:
            keys = set(self._load())
            keys.update(self._scan())
            for key in keys:
                _remove_entry_files(self.directory, key)
                self._removed.add(key)
            self._entries.clear()
            try:
                self.path.unlink()
            except OSError:
                pass
        return len(keys)
