"""Conformance suite for every :class:`CacheBackend` implementation.

One parametrized battery runs against all backends, pinning the interface
contract ``ResultCache`` (and therefore every layer above it) relies on:
store/load/probe semantics, usage accounting, clear, corruption handling,
persistence across instances, and multi-process-style sharing for the
backends that claim it.  The network cache tier (``docs/cachenet.md``) runs
the same battery against an in-process :class:`CacheServer` — both the bare
:class:`RemoteBackend` client and the ``--cache-backend remote://`` composite
:class:`TieredBackend`.  Backend-specific behaviour (GC, manifest sync,
degradation, negative suppression) gets targeted classes below the shared
battery.
"""

import gzip
import json
import time

import pytest

from repro.runtime import lifecycle
from repro.runtime.backends import (
    CorruptEntry,
    FilesystemBackend,
    InMemoryBackend,
    SharedDirectoryBackend,
)
from repro.runtime.cache import CacheStats, ResultCache

BACKENDS = ("memory", "filesystem", "shared", "remote", "tiered")


@pytest.fixture
def make_backend(tmp_path):
    """Factory building a fresh backend of the requested flavour.

    Repeated calls with the same flavour return backends over the *same*
    storage (a second filesystem backend sees the first one's entries), which
    is what the persistence and sharing tests need.  The remote flavours
    share one lazily started in-process cache server per test, reachable as
    ``make_backend.cachenet_server``.
    """
    state = {"server": None, "endpoint": None, "clients": []}

    def build(flavour: str):
        if flavour == "memory":
            return InMemoryBackend()
        if flavour == "filesystem":
            return FilesystemBackend(tmp_path / "cache")
        if flavour == "shared":
            return SharedDirectoryBackend(tmp_path / "cache", sync_interval=0.0)
        if flavour in ("remote", "tiered"):
            from repro.cachenet.backend import RemoteBackend, TieredBackend
            from repro.cachenet.server import CacheServer

            if state["server"] is None:
                state["server"] = CacheServer(directory=tmp_path / "remote-cache")
                state["endpoint"] = state["server"].start()
                build.cachenet_server = state["server"]
            host, port = state["endpoint"]
            # retries=0: degradation tests should fail fast, not back off.
            remote = RemoteBackend(host, port, retries=0, backoff=0.0)
            state["clients"].append(remote)
            return remote if flavour == "remote" else TieredBackend(remote)
        raise AssertionError(flavour)

    yield build
    for client in state["clients"]:
        client.close()
    if state["server"] is not None:
        state["server"].stop()


@pytest.mark.parametrize("flavour", BACKENDS)
class TestBackendConformance:
    def test_store_load_round_trip(self, make_backend, flavour):
        backend = make_backend(flavour)
        payload = {"cycles": [1.5, 2.0], "name": "alexnet"}
        backend.store("k1", payload, "network_result")
        assert backend.load("k1", "network_result") == payload
        assert backend.load("absent", "network_result") is None

    def test_kind_namespaces_do_not_alias(self, make_backend, flavour):
        backend = make_backend(flavour)
        backend.store("k1", {"a": 1}, "network_result")
        # A lookup under the wrong kind must never return the payload —
        # returning None or raising CorruptEntry are both conforming.
        try:
            assert backend.load("k1", "statistics") is None
        except CorruptEntry:
            pass

    def test_probe_does_not_lie(self, make_backend, flavour):
        backend = make_backend(flavour)
        assert not backend.probe("k1", "network_result")
        backend.store("k1", {"a": 1}, "network_result")
        assert backend.probe("k1", "network_result")

    def test_store_overwrites(self, make_backend, flavour):
        backend = make_backend(flavour)
        backend.store("k1", {"v": 1}, "network_result")
        backend.store("k1", {"v": 2}, "network_result")
        assert backend.load("k1", "network_result") == {"v": 2}
        assert len(backend) == 1

    def test_len_and_usage(self, make_backend, flavour):
        backend = make_backend(flavour)
        assert len(backend) == 0
        backend.store("k1", {"a": 1}, "network_result")
        backend.store("k2", {"b": 2}, "statistics")
        assert len(backend) == 2
        usage = backend.usage()
        assert usage["entries"] == 2
        assert "disk_bytes" in usage
        if backend.persistent:
            assert usage["disk_bytes"] > 0

    def test_clear(self, make_backend, flavour):
        backend = make_backend(flavour)
        backend.store("k1", {"a": 1}, "network_result")
        backend.store("k2", {"b": 2}, "network_result")
        assert backend.clear() == 2
        assert len(backend) == 0
        assert backend.load("k1", "network_result") is None

    def test_describe_is_informative(self, make_backend, flavour):
        backend = make_backend(flavour)
        assert isinstance(backend.describe(), str) and backend.describe()

    def test_persistence_across_instances(self, make_backend, flavour):
        backend = make_backend(flavour)
        backend.store("k1", {"a": 1}, "network_result")
        again = make_backend(flavour)
        if backend.persistent:
            assert again.load("k1", "network_result") == {"a": 1}
        else:
            assert again.load("k1", "network_result") is None

    def test_result_cache_over_backend(self, make_backend, flavour):
        """ResultCache policy (stats, memo) works over every backend."""
        cache = ResultCache(backend=make_backend(flavour))
        assert cache.get("k1") is None
        cache.put("k1", {"a": 1})
        assert cache.get("k1") == {"a": 1}
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1
        assert cache.contains("k1")
        assert len(cache) == 1
        snapshot = cache.snapshot()
        assert snapshot.hits == 1

    def test_result_cache_memo_eviction_falls_back_to_backend(
        self, make_backend, flavour
    ):
        cache = ResultCache(backend=make_backend(flavour), memo_entries=2)
        for index in range(4):
            cache.put(f"k{index}", {"v": index})
        assert len(cache._memory) == 2  # memo bounded...
        assert cache.get("k0") == {"v": 0}  # ...but the backend still serves


class TestPersistentBackendCorruption:
    @pytest.mark.parametrize("flavour", ["filesystem", "shared"])
    def test_corrupt_entry_raises_and_drops(self, make_backend, flavour):
        backend = make_backend(flavour)
        backend.store("k1", {"a": 1}, "network_result")
        path = lifecycle.entry_path(backend.directory, "k1")
        path.write_bytes(b"not gzip, not json")
        with pytest.raises(CorruptEntry):
            backend.load("k1", "network_result")
        assert not path.exists()  # dropped, not left to fail forever
        assert backend.load("k1", "network_result") is None

    @pytest.mark.parametrize("flavour", ["filesystem", "shared"])
    def test_wrong_schema_is_corruption(self, make_backend, flavour):
        backend = make_backend(flavour)
        entry = {"schema": 999, "kind": "network_result", "key": "k1", "payload": {}}
        path = lifecycle.entry_path(backend.directory, "k1")
        path.write_bytes(gzip.compress(json.dumps(entry).encode()))
        with pytest.raises(CorruptEntry):
            backend.probe("k1", "network_result")

    @pytest.mark.parametrize("flavour", ["filesystem", "shared"])
    def test_result_cache_counts_corruption_as_miss(self, make_backend, flavour):
        cache = ResultCache(backend=make_backend(flavour))
        cache.put("k1", {"a": 1})
        cache._memory.clear()  # force the next get through the backend
        lifecycle.entry_path(cache.directory, "k1").write_bytes(b"garbage")
        assert cache.get("k1") is None
        assert cache.stats.errors == 1


class TestPersistentBackendGC:
    @pytest.mark.parametrize("flavour", ["filesystem", "shared"])
    def test_gc_enforces_byte_cap(self, make_backend, flavour):
        backend = make_backend(flavour)
        for index in range(3):
            backend.store(f"k{index}", {"blob": "x" * 200, "i": index}, "network_result")
        result = backend.gc(max_bytes=1)
        assert result.removed_entries == 3
        assert len(backend) == 0

    def test_memory_backend_gc_is_a_noop(self):
        backend = InMemoryBackend()
        backend.store("k1", {"a": 1}, "network_result")
        result = backend.gc(max_bytes=0)
        assert result.removed_entries == 0
        assert backend.load("k1", "network_result") == {"a": 1}


class TestSharedDirectoryBackend:
    def test_sibling_stores_are_visible(self, tmp_path):
        """Two backends on one directory see each other's entries and sizes."""
        a = SharedDirectoryBackend(tmp_path, sync_interval=0.0)
        b = SharedDirectoryBackend(tmp_path, sync_interval=0.0)
        a.store("k1", {"a": 1}, "network_result")
        # Entry reads always go to the filesystem: immediately coherent.
        assert b.load("k1", "network_result") == {"a": 1}
        assert b.probe("k1", "network_result")
        # Usage re-syncs from the shared manifest.
        assert b.usage()["entries"] == 1
        assert len(b) == 1

    def test_sibling_gc_respected(self, tmp_path):
        a = SharedDirectoryBackend(tmp_path, sync_interval=0.0)
        b = SharedDirectoryBackend(tmp_path, sync_interval=0.0)
        a.store("k1", {"a": 1}, "network_result")
        assert b.usage()["entries"] == 1
        a.gc(max_bytes=0)
        assert b.load("k1", "network_result") is None
        assert b.usage()["entries"] == 0

    def test_sync_is_throttled(self, tmp_path):
        a = SharedDirectoryBackend(tmp_path, sync_interval=3600.0)
        b = SharedDirectoryBackend(tmp_path, sync_interval=3600.0)
        assert b.usage()["entries"] == 0  # sync clock starts now
        a.store("k1", {"a": 1}, "network_result")
        # Within the interval the stale view is allowed (and expected)...
        assert b.usage()["entries"] == 0
        # ...but direct entry reads stay coherent regardless.
        assert b.load("k1", "network_result") == {"a": 1}


class TestNetworkCacheTier:
    """Cachenet-specific semantics the shared battery cannot express."""

    @pytest.mark.parametrize("flavour", ["remote", "tiered"])
    def test_corrupt_server_entry_recovers_as_miss(self, make_backend, flavour):
        """Server-side damage surfaces as CorruptEntry once, then a miss."""
        backend = make_backend(flavour)
        backend.store("k1", {"a": 1}, "network_result")
        server = make_backend.cachenet_server
        lifecycle.entry_path(server.backend.directory, "k1").write_bytes(b"garbage")
        # A fresh client (empty memory tier) must take the remote path.
        reader = make_backend(flavour)
        with pytest.raises(CorruptEntry):
            reader.load("k1", "network_result")
        # The server dropped the damaged entry: subsequent loads miss cleanly.
        assert reader.load("k1", "network_result") is None

    @pytest.mark.parametrize("flavour", ["remote", "tiered"])
    def test_result_cache_recomputes_after_remote_corruption(
        self, make_backend, flavour
    ):
        cache = ResultCache(backend=make_backend(flavour))
        cache.put("k1", {"a": 1})
        cache._memory.clear()  # force the next get through the backend
        server = make_backend.cachenet_server
        lifecycle.entry_path(server.backend.directory, "k1").write_bytes(b"garbage")
        fresh = ResultCache(backend=make_backend(flavour))
        assert fresh.get("k1") is None
        assert fresh.stats.errors == 1
        fresh.put("k1", {"a": 2})  # recompute-and-store works afterwards
        assert ResultCache(backend=make_backend(flavour)).get("k1") == {"a": 2}

    @pytest.mark.parametrize("flavour", ["remote", "tiered"])
    def test_ttl_expiry_through_remote_gc(self, make_backend, flavour):
        backend = make_backend(flavour)
        backend.store("k1", {"a": 1}, "network_result")
        time.sleep(0.02)
        result = backend.gc(max_age=0.01)
        assert result.removed_entries == 1
        assert "k1" in result.removed_keys
        # The tiered memory copy must not outlive the authoritative entry.
        reader = make_backend(flavour)
        assert reader.load("k1", "network_result") is None

    @pytest.mark.parametrize("flavour", ["remote", "tiered"])
    def test_dead_server_degrades_to_miss(self, make_backend, flavour):
        backend = make_backend(flavour)
        backend.store("k1", {"a": 1}, "network_result")
        make_backend.cachenet_server.stop()
        if flavour == "tiered":
            # The warm memory tier outlives the server — that is the point
            # of the write-through composite.
            assert backend.load("k1", "network_result") == {"a": 1}
        # A fresh client (no warm memory tier) degrades to a miss, not a raise.
        reader = make_backend(flavour)
        assert reader.load("k1", "network_result") is None
        assert reader.probe("k1", "network_result") is False
        reader.store("k2", {"b": 2}, "network_result")  # swallowed, not raised
        reader.touch("k1")
        usage = reader.usage()
        assert usage["remote_reachable"] is False
        assert usage["remote_degraded"] > 0

    def test_wrong_auth_token_degrades(self, tmp_path):
        from repro.cachenet.backend import RemoteBackend
        from repro.cachenet.server import CacheServer

        server = CacheServer(directory=tmp_path / "secured", auth_token="secret")
        host, port = server.start()
        try:
            good = RemoteBackend(host, port, auth_token="secret", retries=0)
            good.store("k1", {"a": 1}, "network_result")
            assert good.load("k1", "network_result") == {"a": 1}
            bad = RemoteBackend(host, port, auth_token="wrong", retries=0)
            assert bad.load("k1", "network_result") is None  # degraded miss
            assert bad.usage()["remote_degraded"] > 0
            good.close()
            bad.close()
        finally:
            server.stop()

    def test_negative_lookups_are_suppressed(self, make_backend):
        backend = make_backend("tiered")
        hits_before = backend.remote.remote_misses
        assert backend.load("absent", "network_result") is None
        assert backend.probe("absent", "network_result") is False
        assert backend.probe("absent", "network_result") is False
        # One remote round trip; the repeats were answered by the negative
        # cache within its TTL window.
        assert backend.remote.remote_misses == hits_before + 1
        assert backend.suppressed >= 2
        # A store invalidates the negative entry immediately.
        backend.store("absent", {"a": 1}, "network_result")
        assert backend.load("absent", "network_result") == {"a": 1}

    def test_resolve_backend_specs(self, make_backend, tmp_path):
        from repro.cachenet.backend import (
            RemoteBackend,
            TieredBackend,
            resolve_backend,
        )

        make_backend("remote")  # boot the shared server
        server = make_backend.cachenet_server
        host, port = server._server.server_address
        tiered = resolve_backend(f"remote://{host}:{port}")
        assert isinstance(tiered, TieredBackend)
        assert isinstance(tiered.remote, RemoteBackend)
        assert isinstance(resolve_backend("memory://"), InMemoryBackend)
        assert isinstance(
            resolve_backend(str(tmp_path / "plain")), SharedDirectoryBackend
        )
        with pytest.raises(ValueError):
            resolve_backend("redis://nope:1")
        tiered.close()


class TestCacheStatsDistinctMerge:
    def test_shared_cache_merge_takes_max_gauges(self):
        total = CacheStats(disk_entries=10, disk_bytes=1000, memo_entries=5)
        total.merge(CacheStats(hits=2, disk_entries=8, disk_bytes=900, memo_entries=7))
        assert total.hits == 2
        assert total.disk_entries == 10  # same cache: max, not sum
        assert total.disk_bytes == 1000
        assert total.memo_entries == 7

    def test_distinct_cache_merge_sums_gauges(self):
        total = CacheStats(disk_entries=10, disk_bytes=1000, memo_entries=5)
        total.merge(
            CacheStats(
                hits=2,
                disk_entries=8,
                disk_bytes=900,
                memo_entries=7,
                oldest_age_seconds=50.0,
            ),
            distinct_caches=True,
        )
        assert total.disk_entries == 18  # different caches: sum
        assert total.disk_bytes == 1900
        assert total.memo_entries == 12
        # Ages never add up: the fleet's oldest entry is the oldest anywhere.
        assert total.oldest_age_seconds == 50.0

    def test_run_stats_passthrough(self):
        from repro.runtime import RunStats

        total = RunStats()
        total.cache.disk_entries = 4
        total.merge(
            {"cache": {"disk_entries": 3, "hits": 1}}, distinct_caches=True
        )
        assert total.cache.disk_entries == 7
        assert total.cache.hits == 1

    def test_shared_gauges_max_merge_even_when_distinct(self):
        """Workers mounting one shared tier must not multiply its footprint.

        Every cluster worker snapshots the *same* remote (or shared
        directory) storage; a distinct-cache fleet merge must max those
        gauges, not sum them once per worker — while per-process memo
        entries still sum.
        """
        fleet = CacheStats()
        for _ in range(3):  # three workers reporting one shared tier
            fleet.merge(
                CacheStats(
                    hits=5,
                    disk_entries=10,
                    disk_bytes=1000,
                    memo_entries=4,
                    shared_gauges=True,
                ),
                distinct_caches=True,
            )
        assert fleet.hits == 15  # counters always sum
        assert fleet.disk_entries == 10  # one shared tier, reported thrice
        assert fleet.disk_bytes == 1000
        assert fleet.memo_entries == 12  # memos are genuinely per-process
        assert fleet.shared_gauges is True
        assert fleet.as_dict()["shared_gauges"] is True

    def test_shared_gauges_infects_the_merge_target(self):
        """Once any snapshot is shared, later distinct merges stay max-mode."""
        fleet = CacheStats(disk_entries=10, disk_bytes=1000, shared_gauges=True)
        fleet.merge(
            CacheStats(disk_entries=8, disk_bytes=900), distinct_caches=True
        )
        assert fleet.disk_entries == 10
        assert fleet.disk_bytes == 1000

    def test_snapshot_marks_shared_backends(self, make_backend):
        assert ResultCache(backend=make_backend("shared")).snapshot().shared_gauges
        assert ResultCache(backend=make_backend("remote")).snapshot().shared_gauges
        assert ResultCache(backend=make_backend("tiered")).snapshot().shared_gauges
        assert not ResultCache(
            backend=make_backend("memory")
        ).snapshot().shared_gauges
