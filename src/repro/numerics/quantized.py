"""TensorFlow-style 8-bit linear quantization (Section VI-F of the paper).

The quantization scheme maps real values in an arbitrary per-layer interval
``[min_val, max_val]`` linearly onto the 256 available 8-bit codes.  Unlike the
reduced-precision approach of Stripes the interval does not have to be symmetric
and its limits do not have to be powers of two.  The paper sets the limits to the
minimum and maximum neuron value observed in each layer and uses
round-to-nearest.

Pragmatic operates on the quantized *codes*: the essential bit content of the
8-bit codes determines how many oneffsets must be processed per neuron.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["QuantizationParams", "quantize_layer"]


@dataclass(frozen=True)
class QuantizationParams:
    """Parameters of an asymmetric linear quantizer.

    Attributes
    ----------
    min_val, max_val:
        Real-valued limits of the quantization interval.
    bits:
        Code width; the paper uses 8 bits.
    """

    min_val: float
    max_val: float
    bits: int = 8

    def __post_init__(self) -> None:
        if self.bits < 2:
            raise ValueError(f"bits must be at least 2, got {self.bits}")
        if not np.isfinite(self.min_val) or not np.isfinite(self.max_val):
            raise ValueError("quantization limits must be finite")
        if self.max_val <= self.min_val:
            raise ValueError(
                f"max_val ({self.max_val}) must exceed min_val ({self.min_val})"
            )

    @property
    def levels(self) -> int:
        """Number of available codes."""
        return 1 << self.bits

    @property
    def scale(self) -> float:
        """Real-value step between adjacent codes."""
        return (self.max_val - self.min_val) / (self.levels - 1)

    @property
    def zero_point(self) -> int:
        """Code that represents the real value closest to zero."""
        code = int(round(-self.min_val / self.scale))
        return int(np.clip(code, 0, self.levels - 1))

    @classmethod
    def from_values(cls, values: np.ndarray, bits: int = 8) -> "QuantizationParams":
        """Derive limits from observed ``values`` (the paper's recommended setting)."""
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            raise ValueError("cannot derive quantization limits from an empty array")
        low = float(arr.min())
        high = float(arr.max())
        if high <= low:
            # Degenerate layer (e.g. all zeros): widen the interval minimally so the
            # quantizer stays well defined and maps everything to a single code.
            high = low + 1.0
        return cls(min_val=low, max_val=high, bits=bits)

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Map real ``values`` to integer codes in ``[0, 2**bits - 1]``."""
        arr = np.asarray(values, dtype=np.float64)
        codes = np.round((arr - self.min_val) / self.scale)
        return np.clip(codes, 0, self.levels - 1).astype(np.int64)

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        """Map integer codes back to real values."""
        arr = np.asarray(codes, dtype=np.float64)
        return arr * self.scale + self.min_val


def quantize_layer(values: np.ndarray, bits: int = 8) -> tuple[np.ndarray, QuantizationParams]:
    """Quantize one layer's activations with per-layer min/max limits.

    Returns the integer codes and the parameters used, mirroring how the paper
    derives per-layer quantization for the Figure 3 / Figure 12 studies.
    """
    params = QuantizationParams.from_values(values, bits=bits)
    return params.quantize(values), params
