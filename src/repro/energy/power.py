"""Power model: compose component inventories into chip power (Table III/IV)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import ChipConfig, DEFAULT_CHIP
from repro.core.accelerator import PragmaticConfig
from repro.energy.components import (
    MEMORY_POWER_W,
    POWER_COEFFICIENTS,
    ComponentCounts,
    component_counts_for,
)

__all__ = ["PowerReport", "unit_power", "chip_power", "design_power"]


def unit_power(counts: ComponentCounts) -> float:
    """Power of one tile's datapath in W."""
    return sum(POWER_COEFFICIENTS[name] * value for name, value in counts.as_dict().items())


def chip_power(counts: ComponentCounts, chip: ChipConfig = DEFAULT_CHIP) -> float:
    """Whole-chip power in W: all tiles plus the (folded) memory share."""
    return chip.tiles * unit_power(counts) + MEMORY_POWER_W


@dataclass(frozen=True)
class PowerReport:
    """Chip power of one design with the ratio to the DaDianNao baseline."""

    design: str
    chip_w: float
    chip_ratio: float

    def row(self) -> str:
        return f"{self.design:>14s}  chip {self.chip_w:5.1f} W ({self.chip_ratio:4.2f}x)"


def design_power(
    design: str | PragmaticConfig, chip: ChipConfig = DEFAULT_CHIP
) -> PowerReport:
    """Power report for a design, normalized against DaDianNao."""
    counts = component_counts_for(design, chip)
    baseline = component_counts_for("dadn", chip)
    total = chip_power(counts, chip)
    baseline_total = chip_power(baseline, chip)
    name = design.name if isinstance(design, PragmaticConfig) else design
    return PowerReport(design=name, chip_w=total, chip_ratio=total / baseline_total)
