"""Convolutional layer geometry.

The evaluation of the paper targets the convolutional layers of six image
classification networks.  A layer is fully described by its input dimensions,
filter dimensions, stride and padding; from those, the quantities every
accelerator model needs are derived: output dimensions, number of sliding
windows, multiply-accumulate (MAC) count, and the brick/pallet structure that
DaDianNao-style tiles operate on (Section IV-A of the paper).

Terminology (Section IV-A1):

* **brick** — 16 elements of a neuron or synapse array contiguous along the
  input-channel (``i``) dimension.
* **pallet** — 16 bricks from 16 adjacent windows (stride apart) along ``x``
  or ``y``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["ConvLayerSpec", "BRICK_SIZE", "PALLET_WINDOWS"]

#: Elements per brick along the input-channel dimension (a DaDN design constant).
BRICK_SIZE = 16

#: Windows processed in parallel by one Stripes/Pragmatic tile (pallet width).
PALLET_WINDOWS = 16


@dataclass(frozen=True)
class ConvLayerSpec:
    """Geometry of one convolutional layer.

    Attributes
    ----------
    name:
        Human readable layer name (e.g. ``"conv1"``).
    input_channels, input_height, input_width:
        Input neuron array dimensions (``I``, ``Ny``, ``Nx`` in the paper).
    num_filters:
        Number of filters ``N`` (output channels).
    filter_height, filter_width:
        Filter dimensions ``Fy``, ``Fx``.
    stride:
        Sliding window stride ``S``.
    padding:
        Symmetric zero padding applied to the spatial input dimensions.
    """

    name: str
    input_channels: int
    input_height: int
    input_width: int
    num_filters: int
    filter_height: int
    filter_width: int
    stride: int = 1
    padding: int = 0

    def __post_init__(self) -> None:
        positive_fields = {
            "input_channels": self.input_channels,
            "input_height": self.input_height,
            "input_width": self.input_width,
            "num_filters": self.num_filters,
            "filter_height": self.filter_height,
            "filter_width": self.filter_width,
            "stride": self.stride,
        }
        for field_name, value in positive_fields.items():
            if value < 1:
                raise ValueError(f"{field_name} must be positive, got {value}")
        if self.padding < 0:
            raise ValueError(f"padding must be non-negative, got {self.padding}")
        if self.filter_height > self.padded_height or self.filter_width > self.padded_width:
            raise ValueError(
                f"filter ({self.filter_height}x{self.filter_width}) larger than padded "
                f"input ({self.padded_height}x{self.padded_width}) for layer {self.name!r}"
            )

    # ------------------------------------------------------------------ geometry
    @property
    def padded_height(self) -> int:
        """Input height after padding."""
        return self.input_height + 2 * self.padding

    @property
    def padded_width(self) -> int:
        """Input width after padding."""
        return self.input_width + 2 * self.padding

    @property
    def output_height(self) -> int:
        """Output neuron array height ``Oy``."""
        return (self.padded_height - self.filter_height) // self.stride + 1

    @property
    def output_width(self) -> int:
        """Output neuron array width ``Ox``."""
        return (self.padded_width - self.filter_width) // self.stride + 1

    @property
    def num_windows(self) -> int:
        """Number of sliding window positions (output neurons per filter)."""
        return self.output_height * self.output_width

    @property
    def synapses_per_filter(self) -> int:
        """Synapses in one filter: ``Fx * Fy * I``."""
        return self.filter_height * self.filter_width * self.input_channels

    @property
    def total_synapses(self) -> int:
        """Synapses across all filters."""
        return self.synapses_per_filter * self.num_filters

    @property
    def macs(self) -> int:
        """Multiply-accumulate operations needed for the whole layer."""
        return self.num_windows * self.num_filters * self.synapses_per_filter

    @property
    def input_neurons(self) -> int:
        """Number of input neurons (unpadded)."""
        return self.input_channels * self.input_height * self.input_width

    @property
    def output_neurons(self) -> int:
        """Number of output neurons."""
        return self.num_filters * self.num_windows

    # -------------------------------------------------------------- brick/pallet
    @property
    def channel_bricks(self) -> int:
        """Bricks along the input-channel dimension (``ceil(I / 16)``)."""
        return math.ceil(self.input_channels / BRICK_SIZE)

    @property
    def bricks_per_window(self) -> int:
        """Neuron bricks read to compute one output neuron."""
        return self.filter_height * self.filter_width * self.channel_bricks

    @property
    def window_groups(self) -> int:
        """Window pallets: groups of 16 windows processed together by STR/PRA."""
        return math.ceil(self.num_windows / PALLET_WINDOWS)

    def filter_passes(self, filters_per_pass: int) -> int:
        """Passes over the input needed when the chip holds ``filters_per_pass`` filters."""
        if filters_per_pass < 1:
            raise ValueError("filters_per_pass must be positive")
        return math.ceil(self.num_filters / filters_per_pass)

    def neuron_stream_length(self) -> int:
        """Input-neuron reads performed by the layer (one per MAC, per filter shared).

        DaDN broadcasts each fetched neuron brick to all filter lanes, so the
        *stream* of neurons entering the datapath has one entry per
        (window, synapse-position) pair, independent of the filter count.
        """
        return self.num_windows * self.synapses_per_filter

    def describe(self) -> str:
        """One-line summary used by the reporting helpers."""
        return (
            f"{self.name}: {self.input_channels}x{self.input_height}x{self.input_width} "
            f"-> {self.num_filters} filters {self.filter_height}x{self.filter_width}"
            f"/{self.stride} (pad {self.padding}) -> "
            f"{self.num_filters}x{self.output_height}x{self.output_width}, "
            f"{self.macs / 1e6:.1f} MMACs"
        )
