"""Tests for the serving layer: protocol, queue, service, concurrency.

The serving contract: many concurrent clients share one warm session;
identical in-flight requests coalesce onto one job; per-request ``RunStats``
counters prove exactly how much work each answer cost (a warm-cache answer
reports ``simulated 0 configs``).
"""

import asyncio
import io
import json
from dataclasses import dataclass

import pytest

from repro.serve import (
    ExperimentRequest,
    ExperimentService,
    ProtocolError,
    RunAllRequest,
    ServeClient,
    SimulateRequest,
    parse_request,
)
from repro.serve.cli import main as serve_main
from repro.serve.protocol import decode, encode
from repro.serve.queue import RequestQueue

#: Tiny fast-preset override so served simulations take seconds.
TINY = {"networks": ["alexnet"], "max_pallets": 2, "samples_per_layer": 1500}


def run(coro):
    return asyncio.run(coro)


# --------------------------------------------------------------------- protocol
class TestProtocol:
    def test_parse_run_experiment(self):
        request = parse_request(
            {"op": "run_experiment", "experiment": "fig9", "preset": "smoke", "seed": 3}
        )
        assert isinstance(request, ExperimentRequest)
        assert request.experiment == "fig9"
        assert request.resolved_preset().name == "smoke"

    def test_parse_rejects_unknowns(self):
        with pytest.raises(ProtocolError):
            parse_request({"op": "run_experiment", "experiment": "fig99"})
        with pytest.raises(ProtocolError):
            parse_request({"op": "run_experiment", "experiment": "fig9", "preset": "huge"})
        with pytest.raises(ProtocolError):
            parse_request({"op": "explode"})
        with pytest.raises(ProtocolError):
            parse_request({"op": "simulate"})  # missing network
        with pytest.raises(ProtocolError):
            parse_request(
                {"op": "simulate", "network": "alexnet", "variants": "fig99"}
            )

    def test_overrides_validated_and_canonicalized(self):
        base = {"op": "run_experiment", "experiment": "fig9"}
        with pytest.raises(ProtocolError):
            parse_request({**base, "overrides": {"pallets": 2}})
        with pytest.raises(ProtocolError):
            parse_request({**base, "overrides": {"max_pallets": 0}})
        with pytest.raises(ProtocolError):
            parse_request({**base, "overrides": {"networks": "alexnet"}})
        a = parse_request({**base, "overrides": {"max_pallets": 2, "networks": ["alexnet"]}})
        b = parse_request({**base, "overrides": {"networks": ["alexnet"], "max_pallets": 2}})
        assert a == b  # key order canonicalized
        assert a.resolved_preset().max_pallets == 2
        assert a.resolved_preset().networks == ("alexnet",)

    def test_request_keys_dedup_identical_content(self):
        message = {"op": "run_experiment", "experiment": "fig9", "preset": "fast"}
        assert parse_request(message).key() == parse_request(dict(message)).key()
        assert (
            parse_request(message).key()
            != parse_request({**message, "seed": 1}).key()
        )
        assert (
            parse_request(message).key()
            != parse_request({**message, "experiment": "fig10"}).key()
        )

    def test_run_all_and_simulate_parse(self):
        assert isinstance(parse_request({"op": "run_all", "preset": "smoke"}), RunAllRequest)
        simulate = parse_request({"op": "simulate", "network": "alexnet"})
        assert isinstance(simulate, SimulateRequest)
        assert len(simulate.simulation_request().configs) == 5  # fig9 variants

    def test_simulate_encoding_field(self):
        """The encoding param is validated at the protocol edge and applied
        to every config of the chosen variant group."""
        request = parse_request(
            {"op": "simulate", "network": "alexnet", "encoding": "csd"}
        )
        assert isinstance(request, SimulateRequest)
        assert request.encoding == "csd"
        for _, config in request.simulation_request().configs:
            assert config.encoding == "csd"
        # Unknown encodings and junk values are rejected eagerly, before the
        # request ever reaches the queue.
        with pytest.raises(ProtocolError):
            parse_request(
                {"op": "simulate", "network": "alexnet", "encoding": "gray-code"}
            )
        with pytest.raises(ProtocolError):
            parse_request({"op": "simulate", "network": "alexnet", "encoding": ""})
        with pytest.raises(ProtocolError):
            parse_request({"op": "simulate", "network": "alexnet", "encoding": 7})

    def test_simulate_encodings_variant_group(self):
        """variants=encodings spans the registry; combining it with a pinned
        non-default encoding is contradictory and rejected."""
        from repro.numerics.encodings import encoding_names

        request = parse_request(
            {"op": "simulate", "network": "alexnet", "variants": "encodings"}
        )
        configs = request.simulation_request().configs
        assert tuple(name for name, _ in configs) == encoding_names()
        with pytest.raises(ProtocolError, match="spans every encoding"):
            parse_request(
                {
                    "op": "simulate",
                    "network": "alexnet",
                    "variants": "encodings",
                    "encoding": "csd",
                }
            )

    def test_simulate_keys_differ_per_encoding(self):
        message = {"op": "simulate", "network": "alexnet"}
        assert (
            parse_request(message).key()
            != parse_request({**message, "encoding": "hese"}).key()
        )
        # Explicit positional is the default: same key, same coalescing.
        assert (
            parse_request(message).key()
            == parse_request({**message, "encoding": "positional"}).key()
        )

    def test_encode_decode_round_trip(self):
        message = {"id": "c1", "op": "ping"}
        line = encode(message)
        assert line.endswith(b"\n")
        assert decode(line) == message
        with pytest.raises(ProtocolError):
            decode(b"not json\n")
        with pytest.raises(ProtocolError):
            decode(b"[1, 2]\n")


# ------------------------------------------------------------------------ queue
@dataclass(frozen=True)
class StubRequest:
    """Queue-only request: a fixed key and description."""

    name: str

    def key(self) -> str:
        return f"stub:{self.name}"

    def describe(self) -> str:
        return f"stub {self.name}"


class TestRequestQueue:
    def test_identical_inflight_requests_share_one_job(self):
        async def scenario():
            queue = RequestQueue()
            first = queue.submit(StubRequest("a"))
            second = queue.submit(StubRequest("a"))
            third = queue.submit(StubRequest("b"))
            assert first.job is second.job
            assert not first.coalesced and second.coalesced
            assert third.job is not first.job
            assert queue.depth()["submitted"] == 3
            assert queue.depth()["coalesced"] == 1
            # Only two jobs were actually enqueued.
            assert await queue.next_job() is first.job
            assert await queue.next_job() is third.job

        run(scenario())

    def test_finished_jobs_do_not_coalesce_new_requests(self):
        async def scenario():
            queue = RequestQueue()
            first = queue.submit(StubRequest("a"))
            job = await queue.next_job()
            queue.mark_running(job)
            queue.finish(job, result={"ok": 1}, stats={})
            again = queue.submit(StubRequest("a"))
            assert again.job is not first.job
            assert not again.coalesced

        run(scenario())

    def test_cancelling_the_only_ticket_drops_a_queued_job(self):
        async def scenario():
            queue = RequestQueue()
            ticket = queue.submit(StubRequest("a"))
            survivor = queue.submit(StubRequest("b"))
            changed, state = queue.cancel(ticket.ticket_id)
            assert changed and state == "cancelled"
            assert ticket.job.state == "cancelled"
            # next_job skips the cancelled job entirely.
            assert await queue.next_job() is survivor.job

        run(scenario())

    def test_cancelling_one_of_two_tickets_keeps_the_job(self):
        async def scenario():
            queue = RequestQueue()
            first = queue.submit(StubRequest("a"))
            second = queue.submit(StubRequest("a"))
            queue.cancel(second.ticket_id)
            assert first.job.state == "queued"
            assert second.state == "cancelled"
            job = await queue.next_job()
            queue.mark_running(job)
            queue.finish(job, result={}, stats={})
            assert first.state == "done"
            assert second.state == "cancelled"

        run(scenario())

    def test_unknown_ticket_raises(self):
        queue = RequestQueue()
        with pytest.raises(KeyError):
            queue.cancel("t999")

    def test_stop_abandons_the_backlog_instead_of_draining_it(self):
        async def scenario():
            queue = RequestQueue()
            first = queue.submit(StubRequest("a"))
            second = queue.submit(StubRequest("b"))
            queue.stop_workers(1)
            # Workers get None immediately; the backlog is not executed.
            assert await queue.next_job() is None
            assert queue.abandon_pending() == 2
            for ticket in (first, second):
                assert ticket.state == "failed"
                assert "service stopped" in ticket.job.error
                assert ticket.job.done.is_set()

        run(scenario())

    def test_submit_on_a_stopping_queue_fails_fast(self):
        # Regression: a submission after stop_workers()/abandon_pending() was
        # enqueued behind drained workers and its ticket hung forever.
        async def scenario():
            queue = RequestQueue()
            queue.stop_workers(1)
            queue.abandon_pending()
            events = []
            ticket = queue.submit(
                StubRequest("late"), on_event=lambda t, event: events.append(event)
            )
            assert ticket.state == "failed"
            assert ticket.job.done.is_set()  # waiters resolve immediately
            assert "rejected" in ticket.job.error
            assert events == ["failed"]
            assert queue.depth()["failed"] == 1
            assert queue.depth()["queued"] == 0  # nothing was enqueued
            # Workers woken afterwards still see the stop sentinel.
            assert await queue.next_job() is None

        run(scenario())

    def test_cancelling_last_ticket_of_running_job_cancels_its_token(self):
        async def scenario():
            queue = RequestQueue()
            ticket = queue.submit(StubRequest("a"))
            job = await queue.next_job()
            queue.mark_running(job)
            changed, state = queue.cancel(ticket.ticket_id)
            assert changed and state == "cancelled"
            # The job is doomed but still unwinding on its worker thread —
            # and still counted as running (it occupies real capacity).
            assert job.token.cancelled
            assert job.state == "running"
            assert queue.depth()["running"] == 1
            # An identical request submitted now starts fresh instead of
            # coalescing onto the job that will never produce a result.
            again = queue.submit(StubRequest("a"))
            assert again.job is not job and not again.coalesced
            # The worker observes the checkpoint and reports the interruption.
            queue.finish(job, error="cancelled at a cooperative checkpoint", cancelled=True)
            assert job.state == "cancelled"
            assert job.done.is_set()
            assert queue.depth()["interrupted"] == 1
            assert queue.depth()["running"] == 0  # worker capacity released
            # finish() must not evict the *fresh* job from the in-flight index.
            assert (await queue.next_job()) is again.job

        run(scenario())

    def test_cancelling_one_of_two_running_tickets_detaches_only(self):
        async def scenario():
            queue = RequestQueue()
            first = queue.submit(StubRequest("a"))
            second = queue.submit(StubRequest("a"))
            job = await queue.next_job()
            queue.mark_running(job)
            queue.cancel(second.ticket_id)
            assert not job.token.cancelled  # a live ticket still wants the result
            queue.finish(job, result={}, stats={})
            assert first.state == "done"
            assert second.state == "cancelled"
            assert queue.depth()["interrupted"] == 0

        run(scenario())

    def test_progress_fans_out_to_streaming_live_tickets_only(self):
        async def scenario():
            queue = RequestQueue()
            got = []
            streaming = queue.submit(
                StubRequest("a"), on_progress=lambda t, p: got.append(("s", p))
            )
            queue.submit(StubRequest("a"))  # no on_progress: never notified
            doomed = queue.submit(
                StubRequest("a"), on_progress=lambda t, p: got.append(("d", p))
            )
            job = await queue.next_job()
            queue.mark_running(job)
            queue.cancel(doomed.ticket_id)  # detaches: stops receiving progress
            queue.deliver_progress(job, {"stage": "layer", "index": 0})
            assert got == [("s", {"stage": "layer", "index": 0})]
            queue.finish(job, result={}, stats={})
            queue.deliver_progress(job, {"stage": "layer", "index": 1})
            assert len(got) == 1  # post-terminal events are dropped
            assert streaming.state == "done"

        run(scenario())

    def test_finished_tickets_are_evicted_beyond_the_history_bound(self, monkeypatch):
        # A long-lived server must not retain every result payload forever.
        import repro.serve.queue as queue_module

        monkeypatch.setattr(queue_module, "FINISHED_TICKET_HISTORY", 3)

        async def scenario():
            queue = RequestQueue()
            tickets = []
            for index in range(5):
                ticket = queue.submit(StubRequest(str(index)))
                tickets.append(ticket)
                job = await queue.next_job()
                queue.mark_running(job)
                queue.finish(job, result={"payload": index}, stats={})
            # Only the 3 most recent finished tickets remain resolvable.
            assert queue.get(tickets[0].ticket_id) is None
            assert queue.get(tickets[1].ticket_id) is None
            for ticket in tickets[2:]:
                assert queue.get(ticket.ticket_id) is ticket
            # Held Ticket objects keep working regardless of eviction.
            assert tickets[0].state == "done"

        run(scenario())


# ------------------------------------------------------------------ priorities
class TestRequestQueuePriorities:
    def test_pops_highest_priority_then_fifo(self):
        async def scenario():
            queue = RequestQueue()
            queue.submit(StubRequest("low"))
            queue.submit(StubRequest("high"), priority=5)
            queue.submit(StubRequest("mid-a"), priority=1)
            queue.submit(StubRequest("mid-b"), priority=1)
            order = [(await queue.next_job()).request.name for _ in range(4)]
            assert order == ["high", "mid-a", "mid-b", "low"]

        run(scenario())

    def test_default_priority_preserves_fifo(self):
        async def scenario():
            queue = RequestQueue()
            for name in ("a", "b", "c"):
                queue.submit(StubRequest(name))
            order = [(await queue.next_job()).request.name for _ in range(3)]
            assert order == ["a", "b", "c"]

        run(scenario())

    def test_coalesced_ticket_raises_pending_job_priority(self):
        async def scenario():
            queue = RequestQueue()
            first = queue.submit(StubRequest("a"))
            queue.submit(StubRequest("b"))
            # A second client wants "a" urgently: same job, higher priority.
            boost = queue.submit(StubRequest("a"), priority=10)
            assert boost.coalesced and boost.job is first.job
            assert first.job.priority == 10
            order = [(await queue.next_job()).request.name for _ in range(2)]
            assert order == ["a", "b"]  # "a" jumped the line
            assert queue.coalesced == 1  # coalescing semantics preserved

        run(scenario())

    def test_coalescing_never_lowers_priority(self):
        async def scenario():
            queue = RequestQueue()
            urgent = queue.submit(StubRequest("a"), priority=10)
            lazy = queue.submit(StubRequest("a"), priority=1)
            assert lazy.job is urgent.job
            assert urgent.job.priority == 10

        run(scenario())

    def test_stale_heap_entries_are_skipped(self):
        async def scenario():
            queue = RequestQueue()
            ticket = queue.submit(StubRequest("a"))
            queue.submit(StubRequest("a"), priority=3)
            queue.submit(StubRequest("a"), priority=7)  # two raises → 3 entries
            job = await queue.next_job()
            assert job is ticket.job
            queue.mark_running(job)
            queue.finish(job, result={}, stats={})
            # The two stale entries must not resurface the finished job.
            follow = queue.submit(StubRequest("b"))
            assert (await queue.next_job()) is follow.job

        run(scenario())

    def test_priority_field_validated_on_the_wire(self, tmp_path):
        async def scenario():
            service = ExperimentService(cache_dir=None, workers=1)
            sent = []
            await service.handle_message(
                {"op": "run_experiment", "experiment": "table3", "priority": "high"},
                sent.append,
            )
            assert "priority must be an integer" in sent[-1]["error"]
            await service.stop()

        run(scenario())


# ------------------------------------------------------------------------ auth
class TestServeAuth:
    def test_tcp_requires_token_before_anything(self):
        async def scenario():
            service = ExperimentService(cache_dir=None, workers=1, auth_token="s3cret")
            async with service:
                server = await service.serve_tcp("127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                async with server:
                    # No token: the first non-auth op closes the connection
                    # before it can reach the queue.
                    reader, writer = await asyncio.open_connection("127.0.0.1", port)
                    writer.write(encode({"id": "c1", "op": "ping"}))
                    await writer.drain()
                    line = await reader.readline()
                    assert decode(line)["error"] == "authentication required"
                    assert await reader.readline() == b""  # connection closed
                    writer.close()
                    assert service.queue.submitted == 0
                    # Wrong token: rejected and closed (constant-time compare).
                    with pytest.raises(PermissionError):
                        await ServeClient.connect(
                            "127.0.0.1", port, auth_token="wrong"
                        )
                    # Right token: full service.
                    client = await ServeClient.connect(
                        "127.0.0.1", port, auth_token="s3cret"
                    )
                    try:
                        assert await client.ping()
                        response = await client.run_experiment("table3", preset="smoke")
                        assert response.ok
                    finally:
                        await client.close()

        run(scenario())

    def test_tokenless_service_never_challenges(self):
        async def scenario():
            service = ExperimentService(cache_dir=None, workers=1)
            async with service:
                server = await service.serve_tcp("127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                async with server:
                    client = await ServeClient.connect("127.0.0.1", port)
                    try:
                        assert await client.ping()
                        # Explicit auth against a tokenless server is a no-op.
                        await client.auth("anything")
                    finally:
                        await client.close()

        run(scenario())

    def test_in_process_and_stdio_are_trusted(self):
        async def scenario():
            service = ExperimentService(cache_dir=None, workers=1, auth_token="s3cret")
            sent = []
            # In-process handle_message without a context is the trusted path.
            await service.handle_message({"op": "ping"}, sent.append)
            assert sent[-1]["event"] == "pong"
            await service.stop()

        run(scenario())


# ----------------------------------------------------------------- stats views
class TestStatsViews:
    def test_cache_view_counts_corruption_errors(self, tmp_path):
        from repro.runtime.cache import ResultCache
        from repro.serve.workers import _CacheView

        seed = ResultCache(directory=tmp_path)
        seed.put("deadbeef", {"x": 1})
        (tmp_path / "deadbeef.json.gz").write_text("garbage", encoding="utf-8")
        # Fresh inner cache (no in-process memo) behind a per-request view.
        view = _CacheView(ResultCache(directory=tmp_path))
        assert view.get("deadbeef") is None
        assert view.stats.errors == 1  # corruption recovery is visible per request
        assert view.stats.misses == 1

    def test_trace_view_counts_builds_exactly_once(self):
        from repro.runtime import TraceStore, TraceSpec
        from repro.serve.workers import _TraceView

        store = TraceStore()
        spec = TraceSpec(network="alexnet")
        first, second = _TraceView(store), _TraceView(store)
        first.get(spec)
        second.get(spec)
        assert (first.builds, first.reuses) == (1, 0)
        assert (second.builds, second.reuses) == (0, 1)
        assert (store.builds, store.reuses) == (1, 1)


# ---------------------------------------------------------------------- service
class TestServiceInProcess:
    def test_submit_wait_round_trip(self):
        async def scenario():
            async with ExperimentService(cache_dir=None, workers=1) as service:
                ticket = await service.submit(ExperimentRequest("table3", preset="smoke"))
                response = await service.wait(ticket)
                assert response["event"] == "done"
                assert response["result"]["kind"] == "experiment"
                assert response["result"]["experiment"]["experiment"] == "table3"
                assert "stats" in response
                assert service.queue.depth()["completed"] == 1

        run(scenario())

    def test_failed_jobs_report_the_error(self):
        async def scenario():
            async with ExperimentService(cache_dir=None, workers=1) as service:
                # Parses fine, but the network does not exist: fails at run time.
                ticket = await service.submit(
                    SimulateRequest(network="resnet9000", preset="smoke")
                )
                response = await service.wait(ticket)
                assert response["event"] == "failed"
                assert "resnet9000" in response["error"]
                assert service.queue.depth()["failed"] == 1

        run(scenario())

    def test_stats_and_listing_ops(self):
        async def scenario():
            async with ExperimentService(cache_dir=None, workers=1) as service:
                listing = service.list_experiments()
                names = [entry["name"] for entry in listing["experiments"]]
                assert "fig9" in names and "table1" in names
                ticket = await service.submit(ExperimentRequest("table4", preset="smoke"))
                await service.wait(ticket)
                stats = service.stats()
                assert stats["queue"]["completed"] == 1
                assert stats["workers"] == 1
                # The richer cache section is always present (memory mode here).
                assert stats["cache"]["memo_entries"] >= 0
                assert stats["cache"]["disk_bytes"] == 0
                assert stats["cache"]["directory"] is None

        run(scenario())

    def test_stats_op_reports_manifest_backed_disk_usage(self, tmp_path):
        async def scenario():
            async with ExperimentService(cache_dir=tmp_path, workers=1) as service:
                service.session.cache.put("deadbeef", {"x": 1})
                stats = service.stats()
                assert stats["cache_dir"] == str(tmp_path)
                assert stats["cache_entries"] == 1
                assert stats["cache"]["entries"] == 1
                assert stats["cache"]["disk_bytes"] > 0
                assert stats["cache"]["memo_entries"] == 1
                assert stats["cache"]["oldest_age_seconds"] is not None

        run(scenario())

    def test_gc_op_collects_the_shared_disk_cache(self, tmp_path):
        async def scenario():
            async with ExperimentService(cache_dir=tmp_path, workers=1) as service:
                service.session.cache.put("deadbeef", {"x": 1})
                sent = []
                keep = await service.handle_message({"op": "gc"}, sent.append)
                assert keep and sent[-1]["event"] == "gc"
                assert sent[-1]["removed_entries"] == 0  # no bounds: no-op
                await service.handle_message({"op": "gc", "max_bytes": 0}, sent.append)
                assert sent[-1]["event"] == "gc"
                assert sent[-1]["removed_entries"] == 1
                assert sent[-1]["remaining_bytes"] == 0
                assert len(service.session.cache) == 0
                await service.handle_message({"op": "gc", "max_bytes": -3}, sent.append)
                assert sent[-1]["event"] == "error"

        run(scenario())

    def test_gc_op_without_a_disk_cache_is_an_error(self):
        async def scenario():
            async with ExperimentService(cache_dir=None, workers=1) as service:
                sent = []
                await service.handle_message({"op": "gc", "max_bytes": 0}, sent.append)
                assert sent[-1]["event"] == "error"
                assert "no disk cache" in sent[-1]["error"]

        run(scenario())

    def test_submit_after_stop_fails_fast_instead_of_hanging(self):
        # Regression: ServeService.submit ignored queue.stopping, restarted
        # the pool, and the late ticket hung with no worker to fail it.
        async def scenario():
            service = ExperimentService(cache_dir=None, workers=1)
            await service.start()
            await service.stop()
            ticket = await service.submit(ExperimentRequest("table3", preset="smoke"))
            response = await asyncio.wait_for(service.wait(ticket), timeout=5)
            assert response["event"] == "failed"
            assert "rejected" in response["error"]
            assert not service._started  # the pool was not restarted

        run(scenario())


# ------------------------------------------------------------------ concurrency
class TestConcurrentServing:
    def test_identical_concurrent_requests_coalesce_to_one_execution(self):
        async def scenario():
            async with ExperimentService(cache_dir=None, workers=2) as service:
                server = await service.serve_tcp("127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                async with server:
                    clients = [await ServeClient.connect("127.0.0.1", port) for _ in range(3)]
                    responses = await asyncio.gather(
                        *[
                            client.run_experiment("fig9", preset="fast", overrides=TINY)
                            for client in clients
                        ]
                    )
                    assert all(response.ok for response in responses)
                    assert sorted(r.coalesced for r in responses) == [False, True, True]
                    # One execution: its 5 simulated configs are reported to
                    # every ticket of the coalesced job, and the server-side
                    # totals confirm nothing ran twice.
                    assert {r.stats.sweep.configs_simulated for r in responses} == {5}
                    assert len({r.ticket for r in responses}) == 3  # tickets stay distinct
                    stats = await clients[0].stats()
                    assert stats["queue"]["submitted"] == 3
                    assert stats["queue"]["coalesced"] == 2
                    assert stats["queue"]["completed"] == 1
                    assert stats["stats"]["sweep"]["configs_simulated"] == 5
                    for client in clients:
                        await client.close()

        run(scenario())

    def test_overlapping_design_points_simulate_exactly_once(self):
        async def scenario():
            # workers=1 keeps execution serial so the cache (not luck) carries
            # the overlap between *different* request types.
            async with ExperimentService(cache_dir=None, workers=1) as service:
                server = await service.serve_tcp("127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                async with server:
                    clients = [await ServeClient.connect("127.0.0.1", port) for _ in range(4)]
                    responses = await asyncio.gather(
                        clients[0].run_experiment("fig9", preset="fast", overrides=TINY),
                        clients[1].run_experiment("fig9", preset="fast", overrides=TINY),
                        clients[2].simulate(
                            "alexnet", variants="fig9", preset="fast",
                            overrides={"max_pallets": 2},
                        ),
                        clients[3].simulate(
                            "alexnet", variants="fig9", preset="fast",
                            overrides={"max_pallets": 2},
                        ),
                    )
                    assert all(response.ok for response in responses)
                    # fig9 over alexnet needs 5 design points; the simulate op
                    # requests the same 5 units.  Each identical pair coalesced
                    # onto one job, and whichever unique job ran second found
                    # the first one's entries: across the run, each unique
                    # simulation ran exactly once.
                    executed = [r for r in responses if not r.coalesced]
                    assert len(executed) == 2
                    total = sum(r.stats.sweep.configs_simulated for r in executed)
                    assert total == 5
                    stats = await clients[0].stats()
                    assert stats["stats"]["sweep"]["configs_simulated"] == 5
                    assert stats["queue"]["coalesced"] == 2  # one per identical pair
                    for client in clients:
                        await client.close()

        run(scenario())

    @pytest.mark.slow
    def test_warm_server_answers_concurrent_fig9_fast_without_recompute(self, tmp_path):
        """Acceptance: two concurrent identical ``fig9 --preset fast`` requests
        against a warm-cache server cost exactly one cached, zero-recompute
        simulation pass, proven by the RunStats counters in the responses."""

        async def scenario():
            async with ExperimentService(cache_dir=tmp_path, workers=2) as service:
                server = await service.serve_tcp("127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                async with server:
                    client = await ServeClient.connect("127.0.0.1", port)
                    other = await ServeClient.connect("127.0.0.1", port)
                    # Warm the shared cache through the server itself.
                    cold = await client.run_experiment("fig9", preset="fast")
                    assert cold.ok and cold.stats.sweep.configs_simulated > 0
                    # Two concurrent identical requests: one job, zero recompute.
                    a, b = await asyncio.gather(
                        client.run_experiment("fig9", preset="fast"),
                        other.run_experiment("fig9", preset="fast"),
                    )
                    assert a.ok and b.ok
                    assert sorted((a.coalesced, b.coalesced)) == [False, True]
                    for response in (a, b):
                        assert response.stats.sweep.configs_simulated == 0
                        assert response.stats.cache.misses == 0
                        assert response.stats.cache.hits > 0
                    assert a.result == cold.result == b.result
                    stats = await client.stats()
                    assert stats["queue"]["submitted"] == 3
                    assert stats["queue"]["completed"] == 2  # cold + one warm job
                    await client.close()
                    await other.close()

        run(scenario())


# -------------------------------------------------------- cancellation/streaming
#: Two-network tiny workload for streaming acceptance tests.
TINY2 = {"networks": ["alexnet", "vgg_m"], "max_pallets": 2, "samples_per_layer": 1500}


class TestRunningCancellation:
    def test_cancel_running_sole_ticket_frees_worker_before_completion(self):
        """Acceptance: cancelling the only ticket of a running multi-network
        job frees its worker before the job would have finished — proven by
        event ordering: the interrupted job saw only a fraction of its
        experiments, and a job submitted *after* the cancel completes on the
        single worker."""

        async def scenario():
            async with ExperimentService(cache_dir=None, workers=1) as service:
                events = []
                first_progress = asyncio.Event()

                def on_event(ticket, event):
                    events.append(("slow", event))

                def on_progress(ticket, payload):
                    events.append(("slow", f"progress:{payload['stage']}"))
                    first_progress.set()

                request = parse_request(
                    {"op": "run_all", "preset": "fast", "overrides": TINY2}
                )
                ticket = await service.submit(
                    request, on_event=on_event, on_progress=on_progress
                )
                await asyncio.wait_for(first_progress.wait(), timeout=60)
                response = service.cancel(ticket.ticket_id)
                assert response["event"] == "cancelled" and response["changed"]
                assert ticket.job.token.cancelled
                # The worker observes the next cooperative checkpoint and frees up.
                await asyncio.wait_for(ticket.job.done.wait(), timeout=60)
                assert ticket.job.state == "cancelled"
                assert service.queue.depth()["interrupted"] == 1
                # Far fewer experiments completed than run_all executes in full.
                done_experiments = [
                    e for e in events if e[1] == "progress:experiment_done"
                ]
                from repro.experiments.runner import EXPERIMENTS

                assert len(done_experiments) < len(EXPERIMENTS)
                # The freed worker picks up new work submitted after the cancel.
                quick = await service.submit(
                    ExperimentRequest("table3", preset="smoke"),
                    on_event=lambda t, e: events.append(("quick", e)),
                )
                result = await asyncio.wait_for(service.wait(quick), timeout=60)
                assert result["event"] == "done"
                # Wire-order: the slow job's cancelled strictly precedes the
                # quick job's done.
                assert events.index(("slow", "cancelled")) < events.index(
                    ("quick", "done")
                )
                assert ("slow", "done") not in events

        run(scenario())

    def test_cancel_with_surviving_coalesced_ticket_keeps_job_running(self):
        async def scenario():
            async with ExperimentService(cache_dir=None, workers=1) as service:
                running = asyncio.Event()
                message = {
                    "op": "run_experiment",
                    "experiment": "fig9",
                    "preset": "fast",
                    "overrides": TINY,
                }
                first = await service.submit(
                    parse_request(message),
                    on_event=lambda t, e: running.set() if e == "running" else None,
                )
                second = await service.submit(parse_request(dict(message)))
                assert second.job is first.job and second.coalesced
                await asyncio.wait_for(running.wait(), timeout=30)
                changed, state = service.queue.cancel(second.ticket_id)
                assert changed and state == "cancelled"
                # Detach-only: a live ticket still wants the result.
                assert not first.job.token.cancelled
                response = await asyncio.wait_for(service.wait(first), timeout=60)
                assert response["event"] == "done"
                assert response["stats"]["sweep"]["configs_simulated"] == 5
                assert second.state == "cancelled"
                assert service.queue.depth()["interrupted"] == 0

        run(scenario())

    def test_cancel_then_result_ordering_on_the_wire(self):
        """After the terminal ``cancelled`` event, nothing else arrives for
        that request id — in particular no late ``done`` once the worker
        unwinds."""

        async def scenario():
            async with ExperimentService(cache_dir=None, workers=1) as service:
                server = await service.serve_tcp("127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                async with server:
                    client = await ServeClient.connect("127.0.0.1", port)
                    events = []
                    ticket_id = None
                    async for event in client.stream_run_all(
                        preset="fast", overrides=TINY2
                    ):
                        events.append(event["event"])
                        if event["event"] == "progress" and ticket_id is None:
                            ticket_id = event["ticket"]
                            ack = await client.cancel(ticket_id)
                            assert ack["event"] == "cancelled" and ack["changed"]
                    assert events[-1] == "cancelled"
                    assert "done" not in events and "failed" not in events
                    # Wait out the worker's unwind, then prove no stray event
                    # arrived for the cancelled request: ping round-trips on
                    # the same ordered connection.
                    ticket = service.queue.get(ticket_id)
                    await asyncio.wait_for(ticket.job.done.wait(), timeout=60)
                    assert ticket.job.state == "cancelled"
                    assert await client.ping()
                    await client.close()

        run(scenario())


class TestStreaming:
    def test_stream_run_all_yields_progress_per_network_before_done(self):
        """Acceptance: a ``stream: true`` run_all emits at least one progress
        event per network before the terminal done."""

        async def scenario():
            async with ExperimentService(cache_dir=None, workers=1) as service:
                server = await service.serve_tcp("127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                async with server:
                    client = await ServeClient.connect("127.0.0.1", port)
                    events = []
                    async for event in client.stream_run_all(
                        preset="fast", overrides=TINY2
                    ):
                        events.append(event)
                    assert events[-1]["event"] == "done"
                    progress = [e for e in events if e["event"] == "progress"]
                    assert progress, "no progress events on a streamed run_all"
                    networks = {
                        e["progress"].get("network")
                        for e in progress
                        if e["progress"]["stage"] in ("network", "layer", "statistics")
                    }
                    assert {"alexnet", "vgg_m"} <= networks
                    # Partial results stream per completed experiment.
                    partials = [
                        e["progress"]
                        for e in progress
                        if e["progress"]["stage"] == "experiment_done"
                    ]
                    assert partials and all("result" in p for p in partials)
                    assert events.index(
                        next(e for e in events if e["event"] == "progress")
                    ) < events.index(events[-1])
                    await client.close()

        run(scenario())

    def test_unstreamed_requests_receive_no_progress_events(self):
        async def scenario():
            async with ExperimentService(cache_dir=None, workers=1) as service:
                server = await service.serve_tcp("127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                async with server:
                    client = await ServeClient.connect("127.0.0.1", port)
                    response = await client.run_experiment(
                        "fig9", preset="fast", overrides=TINY
                    )
                    assert response.ok
                    assert "progress" not in response.events
                    await client.close()

        run(scenario())

    def test_stream_events_interleave_cleanly_under_two_clients(self):
        async def scenario():
            async with ExperimentService(cache_dir=None, workers=2) as service:
                server = await service.serve_tcp("127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                async with server:
                    one = await ServeClient.connect("127.0.0.1", port)
                    two = await ServeClient.connect("127.0.0.1", port)

                    async def consume(client, message):
                        events = []
                        async for event in client.stream(message):
                            events.append(event)
                        return events

                    first, second = await asyncio.gather(
                        consume(
                            one,
                            {
                                "op": "run_experiment",
                                "experiment": "fig9",
                                "preset": "fast",
                                "overrides": TINY,
                            },
                        ),
                        consume(
                            two,
                            {
                                "op": "run_experiment",
                                "experiment": "fig10",
                                "preset": "fast",
                                "overrides": TINY,
                            },
                        ),
                    )
                    tickets = set()
                    for events in (first, second):
                        assert events[-1]["event"] == "done"
                        progress = [e for e in events if e["event"] == "progress"]
                        assert progress  # both streams saw incremental events
                        # Every event of one stream belongs to exactly one job.
                        own = {e["ticket"] for e in events if "ticket" in e}
                        assert len(own) == 1
                        tickets |= own
                    assert len(tickets) == 2  # no cross-talk between clients
                    await one.close()
                    await two.close()

        run(scenario())


# ------------------------------------------------------------------ disconnects
class TestDisconnectCleanup:
    def test_disconnect_cancels_sole_ticket_running_job_and_frees_worker(self):
        async def scenario():
            async with ExperimentService(cache_dir=None, workers=1) as service:
                server = await service.serve_tcp("127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                async with server:
                    reader, writer = await asyncio.open_connection("127.0.0.1", port)
                    writer.write(
                        encode(
                            {
                                "id": "c1",
                                "op": "run_all",
                                "preset": "fast",
                                "overrides": TINY2,
                                "stream": True,
                            }
                        )
                    )
                    await writer.drain()
                    ticket_id = None
                    while True:
                        payload = decode(await asyncio.wait_for(reader.readline(), 30))
                        if payload["event"] == "queued":
                            ticket_id = payload["ticket"]
                        if payload["event"] == "progress":
                            break  # the job is demonstrably mid-execution
                    ticket = service.queue.get(ticket_id)
                    writer.close()  # abrupt disconnect, no cancel op sent
                    # The server disowns the connection: callbacks neutralized,
                    # the sole-ticket job cooperatively cancelled, worker freed.
                    await asyncio.wait_for(ticket.job.done.wait(), timeout=60)
                    assert ticket.job.state == "cancelled"
                    assert ticket.on_event is None and ticket.on_progress is None
                    assert service.queue.depth()["interrupted"] == 1
                    follow_up = await service.submit(
                        ExperimentRequest("table3", preset="smoke")
                    )
                    result = await asyncio.wait_for(service.wait(follow_up), timeout=60)
                    assert result["event"] == "done"

        run(scenario())

    def test_connection_ticket_list_drops_finished_tickets(self):
        # Regression: the per-connection disown list must not pin every
        # finished job's result payload for the connection's lifetime.
        async def scenario():
            async with ExperimentService(cache_dir=None, workers=1) as service:
                sent: list = []
                tickets: list = []
                for seed in (0, 1, 2):
                    await service.handle_message(
                        {
                            "op": "run_experiment",
                            "experiment": "table3",
                            "preset": "smoke",
                            "seed": seed,
                        },
                        sent.append,
                        tickets,
                    )
                    await asyncio.wait_for(tickets[-1].job.done.wait(), timeout=30)
                # Each new submission pruned the finished predecessors.
                assert len(tickets) == 1
                assert [e["event"] for e in sent].count("done") == 3

        run(scenario())

    def test_disconnect_detaches_but_keeps_jobs_shared_with_others(self):
        async def scenario():
            async with ExperimentService(cache_dir=None, workers=1) as service:
                running = asyncio.Event()
                message = {
                    "op": "run_experiment",
                    "experiment": "fig9",
                    "preset": "fast",
                    "overrides": TINY,
                }
                survivor = await service.submit(
                    parse_request(message),
                    on_event=lambda t, e: running.set() if e == "running" else None,
                )
                # A second "connection" submits the identical request...
                sent: list = []
                tickets: list = []
                await service.handle_message(
                    {**message, "id": "c9"}, sent.append, tickets
                )
                assert len(tickets) == 1 and tickets[0].job is survivor.job
                await asyncio.wait_for(running.wait(), timeout=30)
                # ... then dies.  Its ticket detaches; the shared job survives.
                service._disown_connection_tickets(tickets)
                assert tickets[0].cancelled
                assert not survivor.job.token.cancelled
                response = await asyncio.wait_for(service.wait(survivor), timeout=60)
                assert response["event"] == "done"

        run(scenario())


# ---------------------------------------------------------------- background GC
class TestBackgroundGC:
    def test_gc_task_collects_the_disk_cache_periodically(self, tmp_path):
        async def scenario():
            service = ExperimentService(
                cache_dir=tmp_path, workers=1, gc_interval=0.05, gc_max_bytes=0
            )
            async with service:
                service.session.cache.put("deadbeef", {"x": 1})
                assert len(service.session.cache) == 1
                for _ in range(100):
                    await asyncio.sleep(0.05)
                    if service.gc_runs and len(service.session.cache) == 0:
                        break
                assert service.gc_runs >= 1
                assert service.gc_removed_entries >= 1
                assert len(service.session.cache) == 0
                stats = service.stats()
                assert stats["background_gc"]["runs"] >= 1
                assert stats["background_gc"]["max_bytes"] == 0
            assert service._gc_task is None  # stop() tears the task down

        run(scenario())

    def test_gc_configuration_is_validated(self, tmp_path):
        with pytest.raises(ValueError):
            ExperimentService(cache_dir=tmp_path, gc_interval=60)  # no bounds
        with pytest.raises(ValueError):
            ExperimentService(cache_dir=tmp_path, gc_interval=0, gc_max_bytes=1)

    def test_gc_task_not_started_without_a_disk_cache(self):
        async def scenario():
            service = ExperimentService(
                cache_dir=None, workers=1, gc_interval=0.05, gc_max_bytes=0
            )
            async with service:
                assert service._gc_task is None  # memory cache: nothing to collect
                stats = service.stats()
                assert stats["background_gc"]["runs"] == 0

        run(scenario())


# ---------------------------------------------------------------------- fronts
class TestFrontEnds:
    def test_stdio_protocol_round_trip(self):
        lines = [
            {"id": "1", "op": "ping"},
            {"id": "2", "op": "run_experiment", "experiment": "table3", "preset": "smoke"},
            {"op": "shutdown"},
        ]
        stdin = io.StringIO("".join(json.dumps(line) + "\n" for line in lines))
        stdout = io.StringIO()

        async def scenario():
            service = ExperimentService(cache_dir=None, workers=1)
            await service.run_stdio(stdin=stdin, stdout=stdout)

        run(scenario())
        events = [json.loads(line) for line in stdout.getvalue().splitlines()]
        by_id = {}
        for event in events:
            by_id.setdefault(event.get("id"), []).append(event["event"])
        assert by_id["1"] == ["pong"]
        assert by_id["2"] == ["queued", "running", "done"]
        assert by_id[None] == ["shutdown"]
        done = [e for e in events if e["event"] == "done"][0]
        assert done["result"]["experiment"]["experiment"] == "table3"

    def test_cli_selftest(self, capsys):
        assert serve_main(["--selftest"]) == 0
        assert "selftest ok" in capsys.readouterr().out

    def test_cli_rejects_bad_arguments(self):
        with pytest.raises(SystemExit):
            serve_main(["--workers", "0", "--selftest"])
        with pytest.raises(SystemExit):
            serve_main(["--tcp", "nonsense"])
        with pytest.raises(SystemExit):
            serve_main(["--gc-interval", "60"])  # needs a GC bound
        with pytest.raises(SystemExit):
            serve_main(["--gc-interval", "0", "--gc-max-bytes", "1"])
        with pytest.raises(SystemExit):
            serve_main(["--gc-interval", "60", "--gc-max-bytes", "1", "--no-cache"])

    def test_shutdown_op_stops_a_tcp_server(self):
        async def scenario():
            async with ExperimentService(cache_dir=None, workers=1) as service:
                server = await service.serve_tcp("127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                async with server:
                    client = await ServeClient.connect("127.0.0.1", port)
                    await client.shutdown()
                    # The front-end's wait returns promptly after the op.
                    await asyncio.wait_for(service.wait_shutdown(), timeout=5)
                    await client.close()

        run(scenario())

    def test_client_waiters_fail_fast_when_the_connection_dies(self):
        async def scenario():
            async with ExperimentService(cache_dir=None, workers=1) as service:
                server = await service.serve_tcp("127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                async with server:
                    # Pin the only worker with a long multi-experiment job so
                    # the client's request is still queued when its connection
                    # dies (single experiments finish too fast to race against).
                    running = asyncio.Event()
                    blocker = await service.submit(
                        parse_request(
                            {"op": "run_all", "preset": "fast", "overrides": TINY2}
                        ),
                        on_event=lambda t, e: running.set() if e == "running" else None,
                    )
                    await asyncio.wait_for(running.wait(), timeout=30)
                    client = await ServeClient.connect("127.0.0.1", port)
                    waiter = asyncio.create_task(
                        client.run_experiment("fig9", preset="fast", overrides=TINY)
                    )
                    await asyncio.sleep(0.1)  # request in flight (queued)
                    server.close()  # kill the transport under the client
                    client._writer.transport.abort()
                    response = await asyncio.wait_for(waiter, timeout=10)
                    assert not response.ok
                    assert response.error == "connection closed"
                    await client.close()
                    service.cancel(blocker.ticket_id)

        run(scenario())
