"""On-the-fly oneffset generation (Section V-C).

Neurons are stored in NM in their positional representation and converted into
the explicit oneffset representation as they are broadcast to the tiles.  The
conversion is a leading-one detector per neuron lane: every cycle it emits the
next outstanding power of two together with an end-of-neuron marker.

This module provides both the batch converter used by the functional models and
a cycle-stepped generator that mirrors the hardware's per-lane behaviour (used
by the dispatcher model and its tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.numerics.oneffsets import OneffsetStream, encode_oneffsets

__all__ = ["OneffsetGenerator", "NeuronLaneState"]


@dataclass
class NeuronLaneState:
    """Per-lane state of the oneffset generator.

    ``pending`` holds the not-yet-emitted oneffsets of the current neuron in
    ascending order; ``sign`` is applied by the PIP's negation input.
    """

    pending: list[int]
    sign: int
    done: bool = False

    def next_offset(self) -> tuple[int, bool, bool]:
        """Emit ``(offset, end_of_neuron, is_null)`` and advance the lane.

        A lane whose neuron is exhausted keeps emitting null terms (the PIP's
        AND gate suppresses their contribution) until the whole group advances.
        """
        if not self.pending:
            self.done = True
            return 0, True, True
        offset = self.pending.pop(0)
        end = not self.pending
        if end:
            self.done = True
        return offset, end, False


class OneffsetGenerator:
    """Converts positional neuron values into oneffset streams.

    Parameters
    ----------
    storage_bits:
        Width of the storage representation; values must fit in it.
    """

    def __init__(self, storage_bits: int = 16) -> None:
        if storage_bits < 1:
            raise ValueError("storage_bits must be positive")
        self.storage_bits = storage_bits

    def convert_value(self, value: int) -> OneffsetStream:
        """Serialize one neuron into its wire-level oneffset stream."""
        return OneffsetStream.from_value(int(value), bits=self.storage_bits)

    def convert_brick(self, values: np.ndarray) -> list[OneffsetStream]:
        """Serialize one 16-neuron brick."""
        return [self.convert_value(int(v)) for v in np.asarray(values).ravel()]

    def lane_states(self, values: np.ndarray) -> list[NeuronLaneState]:
        """Initial per-lane generator state for a brick of neuron values."""
        states = []
        for raw in np.asarray(values, dtype=np.int64).ravel():
            magnitude = int(abs(raw))
            if magnitude >= (1 << self.storage_bits):
                raise ValueError(
                    f"value {int(raw)} does not fit in {self.storage_bits} bits"
                )
            states.append(
                NeuronLaneState(
                    pending=list(encode_oneffsets(magnitude, ascending=True)),
                    sign=-1 if raw < 0 else 1,
                )
            )
        return states

    def oneffset_lists(self, values: np.ndarray) -> list[list[int]]:
        """Ascending oneffset lists for a brick (the scheduler's input format)."""
        return [list(state.pending) for state in self.lane_states(values)]

    def max_stream_length(self, values: np.ndarray) -> int:
        """Cycles the slowest lane of a brick needs (minimum 1)."""
        lists = self.oneffset_lists(values)
        return max(1, max((len(lst) for lst in lists), default=1))
