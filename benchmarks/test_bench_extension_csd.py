"""Benchmark: extension study — canonical signed digit oneffset encoding."""


def test_bench_extension_csd(report):
    result = report("extension_csd")
    # CSD never needs more terms than the positional encoding and should shave a
    # meaningful fraction off the already-small PRA term count.
    assert result.metadata["geomean:PRA-csd"] <= result.metadata["geomean:PRA-fp16"]
    assert 0.05 <= result.metadata["geomean:reduction"] <= 0.6
    assert result.metadata["geomean:PRA-csd"] < result.metadata["geomean:Stripes"]
