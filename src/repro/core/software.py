"""Software guidance: per-layer output trimming (Section V-F).

Pragmatic does not require software support to function, but performance
improves when software communicates, per layer, how many prefix and suffix bits
can be zeroed out of the output neurons (derived from the profiling of Judd et
al.).  The hardware applies the trimming with AND gates and precision-derived
bit masks before writing neurons back to NM, which reduces the essential bit
content the next layer's PIPs must process.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.precision import LayerPrecision
from repro.nn.traces import NetworkTrace
from repro.numerics.fixedpoint import popcount

__all__ = ["SoftwareGuidance"]


@dataclass(frozen=True)
class SoftwareGuidance:
    """Per-layer trimming metadata communicated by software.

    Attributes
    ----------
    precisions:
        Per-layer bit windows; bits outside each window are zeroed before the
        layer's neurons are consumed.
    enabled:
        When False the guidance is ignored, modelling the software-transparent
        PRA-fp16 configuration.
    """

    precisions: tuple[LayerPrecision, ...]
    enabled: bool = True

    @classmethod
    def from_trace(cls, trace: NetworkTrace, enabled: bool = True) -> "SoftwareGuidance":
        """Use the precision windows attached to a trace."""
        return cls(precisions=trace.precisions, enabled=enabled)

    @classmethod
    def disabled(cls, num_layers: int) -> "SoftwareGuidance":
        """Guidance object for a run without software support."""
        return cls(precisions=tuple(LayerPrecision(msb=15) for _ in range(num_layers)), enabled=False)

    def layer_mask(self, layer_index: int) -> int:
        """The AND mask applied to the neurons feeding ``layer_index``."""
        return self.precisions[layer_index].mask

    def apply(self, values: np.ndarray, layer_index: int) -> np.ndarray:
        """Trim neuron values feeding the given layer (no-op when disabled)."""
        if not self.enabled:
            return np.asarray(values, dtype=np.int64)
        return self.precisions[layer_index].trim(values)

    def essential_bit_savings(
        self, values: np.ndarray, layer_index: int, storage_bits: int = 16
    ) -> float:
        """Fraction of essential bits the trimming removes from a value sample."""
        arr = np.asarray(values, dtype=np.int64)
        before = popcount(arr, bits=storage_bits).sum()
        if before == 0:
            return 0.0
        after = popcount(self.apply(arr, layer_index), bits=storage_bits).sum()
        return float(1.0 - after / before)
