"""Client-side cache backends for the network tier (``docs/cachenet.md``).

Two :class:`~repro.runtime.backends.CacheBackend` implementations plug the
cache server of :mod:`repro.cachenet.server` into everything the runtime
already does with a cache — sessions, the planner's probes, serve ``stats``,
cluster fleet merges:

* :class:`RemoteBackend` — a synchronous TCP client (the cache is driven from
  worker threads, so there is nothing to gain from asyncio here).  Transport
  failures are bounded: connect/request timeouts, a bounded retry loop with
  exponential backoff plus jitter, and a circuit breaker that — once
  :data:`BREAKER_THRESHOLD` consecutive requests have failed — stops touching
  the network for :data:`BREAKER_COOLDOWN` seconds.  In every failure mode the
  backend *degrades to a cache miss*: a simulation recomputes instead of
  erroring, and the ``remote_degraded`` counter records that it happened.
* :class:`TieredBackend` — the write-through memory→remote composite selected
  by ``--cache-backend remote://host:port``: a bounded in-process LRU front
  absorbs repeat reads, stores go to both tiers, and *negative-lookup
  suppression* remembers recent remote misses for a short TTL so planning
  probes of absent keys do not hammer the server.

:func:`resolve_backend` maps the ``--cache-backend`` URI scheme
(``remote://host:port``, ``memory://``, or a plain directory path) to a
backend instance; the auth token travels via ``REPRO_CACHE_TOKEN``, never
argv.
"""

from __future__ import annotations

import collections
import os
import random
import socket
import threading
import time
from typing import BinaryIO

from repro.cachenet.protocol import FrameError, read_frame, write_frame
from repro.runtime.backends import (
    CacheBackend,
    CorruptEntry,
    SharedDirectoryBackend,
    InMemoryBackend,
)
from repro.runtime.lifecycle import GCResult

__all__ = [
    "RemoteBackend",
    "RemoteUnavailable",
    "TieredBackend",
    "resolve_backend",
]

#: Consecutive transport failures before the circuit breaker opens.
BREAKER_THRESHOLD = 3
#: Seconds the breaker stays open before allowing one probe request.
BREAKER_COOLDOWN = 5.0
#: Seconds a remote miss suppresses repeat lookups of the same key (tiered).
NEGATIVE_TTL = 30.0


class RemoteUnavailable(OSError):
    """The cache server could not be reached within the retry budget."""


class RemoteBackend(CacheBackend):
    """Synchronous client for one cache server; degrades to miss, never fails.

    One persistent connection (re-established on demand) is shared behind a
    lock — requests are small and the serve worker pool's contention on it is
    negligible next to the simulations it is saving.  The
    ``remote_hits``/``remote_misses``/``remote_degraded`` counters are folded
    into :meth:`usage` so they surface through run summaries, the serve
    ``stats`` op and loadgen reports.
    """

    persistent = True
    shared = True

    def __init__(
        self,
        host: str,
        port: int,
        auth_token: str | None = None,
        connect_timeout: float = 2.0,
        request_timeout: float = 10.0,
        retries: int = 2,
        backoff: float = 0.1,
        breaker_threshold: int = BREAKER_THRESHOLD,
        breaker_cooldown: float = BREAKER_COOLDOWN,
    ) -> None:
        self.host = host
        self.port = port
        self.auth_token = auth_token
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.retries = retries
        self.backoff = backoff
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None
        self._stream: BinaryIO | None = None
        self._failures = 0
        self._breaker_open_until = 0.0
        # Client-side counters (guarded by ``_lock``).
        self.remote_hits = 0
        self.remote_misses = 0
        self.remote_degraded = 0

    # -------------------------------------------------------------- transport
    def _close_locked(self) -> None:
        for closer in (self._stream, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._stream = None
        self._sock = None

    def _connect_locked(self) -> None:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        sock.settimeout(self.request_timeout)
        stream = sock.makefile("rwb")
        self._sock, self._stream = sock, stream
        if self.auth_token is not None:
            write_frame(stream, {"op": "auth", "token": self.auth_token})
            response = read_frame(stream)
            if not (response and response.get("ok")):
                self._close_locked()
                raise ConnectionError("cache server rejected the auth token")

    def _roundtrip_locked(self, message: dict) -> dict:
        if self._stream is None:
            self._connect_locked()
        assert self._stream is not None
        write_frame(self._stream, message)
        response = read_frame(self._stream)
        if response is None:
            raise ConnectionError("cache server closed the connection")
        return response

    def _request(self, message: dict) -> dict:
        """One request/response with retry, backoff+jitter and the breaker."""
        with self._lock:
            now = time.monotonic()
            if now < self._breaker_open_until:
                self.remote_degraded += 1
                raise RemoteUnavailable("circuit breaker open")
            last_error: Exception | None = None
            for attempt in range(self.retries + 1):
                try:
                    response = self._roundtrip_locked(message)
                except (OSError, FrameError, ConnectionError) as error:
                    last_error = error
                    self._close_locked()
                    if attempt < self.retries:
                        delay = self.backoff * (2**attempt)
                        time.sleep(delay * (0.5 + random.random() / 2))
                    continue
                self._failures = 0
                if not response.get("ok"):
                    raise RemoteUnavailable(
                        str(response.get("error") or "cache server error")
                    )
                return response
            self._failures += 1
            if self._failures >= self.breaker_threshold:
                self._breaker_open_until = time.monotonic() + self.breaker_cooldown
                self._failures = 0
            self.remote_degraded += 1
            raise RemoteUnavailable(str(last_error))

    # ---------------------------------------------------------------- backend
    def load(self, key: str, kind: str) -> dict | None:
        try:
            response = self._request({"op": "get", "key": key, "kind": kind})
        except RemoteUnavailable:
            return None  # degrade to miss; already counted
        if response.get("corrupt"):
            raise CorruptEntry(f"remote entry {key} was corrupt (dropped)")
        with self._lock:
            if response.get("hit"):
                self.remote_hits += 1
            else:
                self.remote_misses += 1
        if not response.get("hit"):
            return None
        payload = response.get("payload")
        return payload if isinstance(payload, dict) else None

    def probe(self, key: str, kind: str) -> bool:
        try:
            response = self._request({"op": "probe", "key": key, "kind": kind})
        except RemoteUnavailable:
            return False
        if response.get("corrupt"):
            raise CorruptEntry(f"remote entry {key} was corrupt (dropped)")
        # Probes count toward the hit/miss gauges too: a cluster coordinator
        # only ever probes (plan pruning), and its counters are what loadgen
        # reports as the tier's health.
        with self._lock:
            if response.get("hit"):
                self.remote_hits += 1
            else:
                self.remote_misses += 1
        return bool(response.get("hit"))

    def store(self, key: str, payload: dict, kind: str) -> None:
        # A dropped write must never fail the run: the caller's memo still
        # holds the payload, and ``remote_degraded`` records the loss.
        try:
            self._request({"op": "put", "key": key, "kind": kind, "payload": payload})
        except RemoteUnavailable:
            return

    def touch(self, key: str) -> None:
        try:
            self._request({"op": "touch", "key": key})
        except RemoteUnavailable:
            return

    def usage(self) -> dict:
        try:
            usage = dict(self._request({"op": "usage"}).get("usage") or {})
            usage.setdefault("entries", 0)
            usage.setdefault("disk_bytes", 0)
            reachable = True
        except RemoteUnavailable:
            usage = {
                "entries": 0,
                "disk_bytes": 0,
                "oldest_age_seconds": None,
                "lru_age_seconds": None,
            }
            reachable = False
        with self._lock:
            usage.update(
                remote_endpoint=f"{self.host}:{self.port}",
                remote_reachable=reachable,
                remote_hits=self.remote_hits,
                remote_misses=self.remote_misses,
                remote_degraded=self.remote_degraded,
            )
        return usage

    def gc(self, max_bytes: int | None = None, max_age: float | None = None) -> GCResult:
        try:
            response = self._request(
                {"op": "gc", "max_bytes": max_bytes, "max_age": max_age}
            )
        except RemoteUnavailable:
            return GCResult()
        result = response.get("gc") or {}
        return GCResult(
            removed_entries=result.get("removed_entries", 0),
            removed_bytes=result.get("removed_bytes", 0),
            remaining_entries=result.get("remaining_entries", 0),
            remaining_bytes=result.get("remaining_bytes", 0),
            removed_keys=list(result.get("removed_keys", [])),
        )

    def clear(self) -> int:
        try:
            return int(self._request({"op": "clear"}).get("removed", 0))
        except RemoteUnavailable:
            return 0

    def describe(self) -> str:
        return f"remote:{self.host}:{self.port}"

    def close(self) -> None:
        with self._lock:
            self._close_locked()

    def __len__(self) -> int:
        return int(self.usage().get("entries", 0))


class TieredBackend(CacheBackend):
    """Write-through memory→remote composite with negative-lookup suppression.

    The remote tier is authoritative (``len``/``usage``/GC answer from it);
    the memory tier is a bounded LRU of payloads this process already pulled
    over the wire, and the negative cache remembers keys the remote recently
    missed so repeated planning probes of an absent key cost one lookup per
    :data:`NEGATIVE_TTL` window instead of one round trip each.  A ``store``
    always invalidates the key's negative entry before writing through.
    """

    persistent = True
    shared = True

    def __init__(
        self,
        remote: RemoteBackend,
        memory_entries: int = 512,
        negative_ttl: float = NEGATIVE_TTL,
        negative_entries: int = 4096,
    ) -> None:
        self.remote = remote
        self.memory_entries = memory_entries
        self.negative_ttl = negative_ttl
        self.negative_entries = negative_entries
        self._lock = threading.Lock()
        self._memory: collections.OrderedDict[tuple[str, str], dict] = (
            collections.OrderedDict()
        )
        self._negative: collections.OrderedDict[tuple[str, str], float] = (
            collections.OrderedDict()
        )
        self.suppressed = 0

    # ------------------------------------------------------------ memory tier
    def _memory_get(self, key: str, kind: str) -> dict | None:
        with self._lock:
            payload = self._memory.get((key, kind))
            if payload is not None:
                self._memory.move_to_end((key, kind))
            return payload

    def _memory_put(self, key: str, kind: str, payload: dict) -> None:
        with self._lock:
            self._memory[(key, kind)] = payload
            self._memory.move_to_end((key, kind))
            while len(self._memory) > self.memory_entries:
                self._memory.popitem(last=False)

    def _negative_hit(self, key: str, kind: str) -> bool:
        with self._lock:
            deadline = self._negative.get((key, kind))
            if deadline is None:
                return False
            if time.monotonic() >= deadline:
                del self._negative[(key, kind)]
                return False
            self.suppressed += 1
            return True

    def _negative_put(self, key: str, kind: str) -> None:
        with self._lock:
            self._negative[(key, kind)] = time.monotonic() + self.negative_ttl
            self._negative.move_to_end((key, kind))
            while len(self._negative) > self.negative_entries:
                self._negative.popitem(last=False)

    def _negative_drop(self, key: str, kind: str) -> None:
        with self._lock:
            self._negative.pop((key, kind), None)

    # ---------------------------------------------------------------- backend
    def load(self, key: str, kind: str) -> dict | None:
        payload = self._memory_get(key, kind)
        if payload is not None:
            return payload
        if self._negative_hit(key, kind):
            return None
        payload = self.remote.load(key, kind)
        if payload is None:
            self._negative_put(key, kind)
            return None
        self._memory_put(key, kind, payload)
        return payload

    def probe(self, key: str, kind: str) -> bool:
        if self._memory_get(key, kind) is not None:
            return True
        if self._negative_hit(key, kind):
            return False
        hit = self.remote.probe(key, kind)
        if not hit:
            self._negative_put(key, kind)
        return hit

    def store(self, key: str, payload: dict, kind: str) -> None:
        self._negative_drop(key, kind)
        self._memory_put(key, kind, payload)
        self.remote.store(key, payload, kind)

    def touch(self, key: str) -> None:
        self.remote.touch(key)

    def usage(self) -> dict:
        usage = self.remote.usage()
        with self._lock:
            usage.update(
                memory_entries=len(self._memory),
                negative_entries=len(self._negative),
                suppressed_lookups=self.suppressed,
            )
        return usage

    def gc(self, max_bytes: int | None = None, max_age: float | None = None) -> GCResult:
        result = self.remote.gc(max_bytes=max_bytes, max_age=max_age)
        if result.removed_keys:
            removed = set(result.removed_keys)
            with self._lock:
                for memo_key in [mk for mk in self._memory if mk[0] in removed]:
                    del self._memory[memo_key]
        return result

    def clear(self) -> int:
        with self._lock:
            self._memory.clear()
            self._negative.clear()
        return self.remote.clear()

    def describe(self) -> str:
        return f"tiered:memory+{self.remote.describe()}"

    def close(self) -> None:
        self.remote.close()

    def __len__(self) -> int:
        return len(self.remote)


def _parse_endpoint(netloc: str) -> tuple[str, int]:
    host, separator, port = netloc.rpartition(":")
    if not separator or not host or not port.isdigit():
        raise ValueError(f"expected host:port, got {netloc!r}")
    return host, int(port)


def resolve_backend(spec: "str | CacheBackend") -> CacheBackend:
    """A backend for a ``--cache-backend`` spec (instances pass through).

    * ``remote://host:port`` — a :class:`TieredBackend` over a
      :class:`RemoteBackend`; auth token from ``REPRO_CACHE_TOKEN``.
    * ``memory://`` — a per-process :class:`InMemoryBackend`.
    * anything else — a directory path served by the multi-process-safe
      :class:`~repro.runtime.backends.SharedDirectoryBackend`.
    """
    if isinstance(spec, CacheBackend):
        return spec
    if spec.startswith("remote://"):
        host, port = _parse_endpoint(spec[len("remote://") :].rstrip("/"))
        token = os.environ.get("REPRO_CACHE_TOKEN") or None
        return TieredBackend(RemoteBackend(host, port, auth_token=token))
    if spec.startswith("memory://"):
        return InMemoryBackend()
    if "://" in spec:
        raise ValueError(f"unknown cache backend scheme: {spec!r}")
    return SharedDirectoryBackend(spec)
