"""repro.cluster — sharded multi-process execution behind the serve protocol.

A cluster is N worker processes (``python -m repro serve --worker``) sharing
one cache backend, fronted by a coordinator (``python -m repro cluster``)
that speaks the *unchanged* public serve protocol to clients.  The
coordinator plans each request with the runtime's existing job graph, routes
every planned job to a worker by rendezvous hash of its content key,
coalesces identical in-flight jobs cluster-wide, merges per-worker
``RunStats`` (distinct-cache gauge rule), streams progress and forwards
cancellation end to end, and requeues a dead worker's jobs onto survivors.

Layering::

    hashing       rendezvous (highest-random-weight) shard routing
    plan          wire codec for planned jobs + internal sim_job/stat_job ops
    worker        WorkerService: registration handshake + internal-op executor
    coordinator   ClusterService: flights, routing, failover, stat merging
    cli           python -m repro cluster (incl. --selftest and batch mode)

``docs/cluster.md`` documents the topology, the shard-routing rules and the
failure semantics.
"""

from repro.cluster.coordinator import ClusterError, ClusterService, WorkerDied, WorkerLink
from repro.cluster.hashing import rendezvous_owner, rendezvous_rank
from repro.cluster.plan import (
    INTERNAL_JOB_OPS,
    SimulationJobRequest,
    StatisticsJobRequest,
    parse_internal_request,
)
from repro.cluster.worker import WorkerService, execute_worker_request, worker_session

__all__ = [
    "ClusterError",
    "ClusterService",
    "INTERNAL_JOB_OPS",
    "SimulationJobRequest",
    "StatisticsJobRequest",
    "WorkerDied",
    "WorkerLink",
    "WorkerService",
    "execute_worker_request",
    "parse_internal_request",
    "rendezvous_owner",
    "rendezvous_rank",
    "worker_session",
]
