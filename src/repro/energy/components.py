"""Component inventory and calibrated area/power coefficients.

The paper obtains area and power by synthesizing each design with the Synopsys
Design Compiler for a TSMC 65 nm library (plus CACTI/Destiny for the SRAM and
eDRAM blocks).  Synthesis cannot be reproduced in Python, so this module takes
the approach documented in DESIGN.md §4: each design's datapath is described as
an explicit inventory of components (multipliers, adder-tree bits, shifters,
registers, oneffset encoders, synapse set registers), and a single set of
per-component coefficients — calibrated once against the paper's published
DaDianNao/Stripes/Pragmatic totals with a non-negative least-squares fit — turns
an inventory into mm² and W.  Because every design is composed from the same
coefficients, the *relative* area and power relationships the paper's
conclusions rest on are preserved, and the composed absolute totals stay within
a few percent of Tables III and IV (asserted by the test suite).

Coefficients that the fit drives to zero (AND gates, pipeline registers and the
oneffset encoders on the area side) are not free: their contribution is small
and strongly correlated with the adder-tree and shifter terms, so the fit folds
it into those coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.arch.config import ChipConfig, DEFAULT_CHIP
from repro.core.accelerator import PragmaticConfig

__all__ = [
    "ComponentCounts",
    "AREA_COEFFICIENTS",
    "POWER_COEFFICIENTS",
    "MEMORY_AREA_MM2",
    "MEMORY_POWER_W",
    "dadn_unit_counts",
    "stripes_unit_counts",
    "pragmatic_unit_counts",
    "component_counts_for",
]


@dataclass(frozen=True)
class ComponentCounts:
    """Datapath component inventory of one tile (unit).

    Attributes
    ----------
    multipliers:
        16×16-bit bit-parallel multipliers.
    adder_bits:
        Total bits of adder-tree and accumulator adders.
    and_gates:
        Term-gating AND gates (16-bit rows).
    shifter_bits:
        Shifter cost in input-bit × control-bit units (barrel shifter stages).
    register_bits:
        Pipeline, accumulator and synapse register bits.
    encoders:
        16-bit oneffset (leading-one) encoders attributed to the tile.
    ssr_bits:
        Synapse set register bits (per-column synchronization only).
    """

    multipliers: int = 0
    adder_bits: int = 0
    and_gates: int = 0
    shifter_bits: int = 0
    register_bits: int = 0
    encoders: int = 0
    ssr_bits: int = 0

    def __add__(self, other: "ComponentCounts") -> "ComponentCounts":
        return ComponentCounts(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def scaled(self, factor: int) -> "ComponentCounts":
        """Inventory of ``factor`` copies of this component set."""
        return ComponentCounts(
            **{f.name: getattr(self, f.name) * factor for f in fields(self)}
        )

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


#: Calibrated area coefficients, mm² per component count (65 nm effective values).
AREA_COEFFICIENTS: dict[str, float] = {
    "multipliers": 4.7487e-03,
    "adder_bits": 4.3533e-05,
    "and_gates": 0.0,
    "shifter_bits": 5.4913e-07,
    "register_bits": 0.0,
    "encoders": 0.0,
    "ssr_bits": 1.0560e-05,
}

#: Calibrated power coefficients, W per component count per tile (chip power sums
#: the 16 tiles).
POWER_COEFFICIENTS: dict[str, float] = {
    "multipliers": 4.1801e-03,
    "adder_bits": 1.3578e-05,
    "and_gates": 2.2441e-04,
    "shifter_bits": 1.9814e-06,
    "register_bits": 8.0657e-07,
    "encoders": 0.0,
    "ssr_bits": 1.0373e-05,
}

#: Area of the memory system (SB eDRAM, NM eDRAM, NBin/NBout SRAM and
#: interconnect).  The paper's chip totals minus 16× its unit totals give
#: 65.2 mm² consistently across designs, confirming the memory system is shared
#: unchanged.
MEMORY_AREA_MM2 = 65.2

#: Memory-system power attributed separately.  The paper schedules all designs
#: to perform identical SB/NM accesses; the calibration folds that constant
#: share into the per-component coefficients, so the explicit term is zero.
MEMORY_POWER_W = 0.0

#: Storage width (bits) of accumulator registers in every design.
_ACCUMULATOR_BITS = 32


def dadn_unit_counts(chip: ChipConfig = DEFAULT_CHIP) -> ComponentCounts:
    """Component inventory of one DaDianNao tile (Figure 5a)."""
    lanes = chip.filters_per_tile * chip.synapses_per_filter_lane
    return ComponentCounts(
        multipliers=lanes,
        adder_bits=chip.filters_per_tile
        * (chip.synapses_per_filter_lane - 1)
        * _ACCUMULATOR_BITS,
        register_bits=chip.filters_per_tile * 48,
    )


def stripes_unit_counts(chip: ChipConfig = DEFAULT_CHIP) -> ComponentCounts:
    """Component inventory of one Stripes tile (serial inner product units)."""
    sips = chip.filters_per_tile * chip.pallet_windows
    per_sip = ComponentCounts(
        adder_bits=(chip.synapses_per_filter_lane - 1) * chip.storage_bits
        + _ACCUMULATOR_BITS,
        and_gates=chip.synapses_per_filter_lane,
        shifter_bits=_ACCUMULATOR_BITS,
        register_bits=_ACCUMULATOR_BITS,
    )
    return per_sip.scaled(sips) + ComponentCounts(encoders=chip.pallet_windows)


def pragmatic_unit_counts(
    config: PragmaticConfig, chip: ChipConfig | None = None
) -> ComponentCounts:
    """Component inventory of one Pragmatic tile (Figures 5b, 6 and 7).

    The first-stage shifters grow with the control width ``L`` and the adder
    tree with the term width ``16 + 2**L - 1``; column-synchronized variants add
    one synapse set register (16 synapse bricks) per SSR.
    """
    chip = chip or config.chip
    pips = chip.filters_per_tile * chip.pallet_windows
    term_width = chip.storage_bits + (1 << config.first_stage_bits) - 1
    first_stage = (
        chip.synapses_per_filter_lane * chip.storage_bits * config.first_stage_bits
    )
    second_stage = (term_width + 4) * 4 if config.first_stage_bits < 4 else 0
    synapse_register_bits = chip.synapses_per_filter_lane * chip.storage_bits
    per_pip = ComponentCounts(
        adder_bits=(chip.synapses_per_filter_lane - 1) * term_width + _ACCUMULATOR_BITS,
        and_gates=chip.synapses_per_filter_lane,
        shifter_bits=first_stage + second_stage,
        register_bits=_ACCUMULATOR_BITS + synapse_register_bits,
    )
    counts = per_pip.scaled(pips) + ComponentCounts(encoders=chip.pallet_windows)
    if config.synchronization == "column":
        ssr_count = 16 if config.ssr_count is None else config.ssr_count
        ssr_bits = (
            ssr_count
            * chip.filters_per_tile
            * chip.synapses_per_filter_lane
            * chip.storage_bits
        )
        counts = counts + ComponentCounts(ssr_bits=ssr_bits)
    return counts


def component_counts_for(
    design: str | PragmaticConfig, chip: ChipConfig = DEFAULT_CHIP
) -> ComponentCounts:
    """Inventory for a named baseline (``"dadn"``/``"stripes"``) or a PRA config."""
    if isinstance(design, PragmaticConfig):
        return pragmatic_unit_counts(design, chip)
    key = design.lower()
    if key in ("dadn", "dadiannao", "baseline"):
        return dadn_unit_counts(chip)
    if key in ("stripes", "str"):
        return stripes_unit_counts(chip)
    raise ValueError(f"unknown design {design!r}; expected 'dadn', 'stripes' or a PragmaticConfig")
