"""Experiment harness: one module per table and figure of the paper's evaluation."""

from repro.experiments.base import PRESETS, ExperimentResult, Preset, get_preset

__all__ = ["ExperimentResult", "Preset", "PRESETS", "get_preset"]
