"""Named Pragmatic design points used throughout the paper's evaluation.

The evaluation sweeps two axes: the first-stage shifter width ``L`` (Figure 9,
Table III) and the per-column synchronization SSR count (Figure 10, Table IV).
This module gives those design points stable names and groups them the way the
figures do, so experiments, benchmarks and examples all agree on labels.
"""

from __future__ import annotations

from repro.core.accelerator import PragmaticConfig
from repro.numerics.encodings import encoding_names

__all__ = [
    "pallet_variant",
    "column_variant",
    "single_stage_variant",
    "encoding_variant",
    "FIG9_FIRST_STAGE_BITS",
    "FIG10_SSR_COUNTS",
    "fig9_variants",
    "fig10_variants",
    "fig12_variants",
    "encoding_variants",
    "paper_variants",
]

#: First-stage shifter widths swept in Figure 9 / Table III.
FIG9_FIRST_STAGE_BITS: tuple[int, ...] = (0, 1, 2, 3, 4)

#: SSR counts swept in Figure 10 / Table IV (None = ideal).
FIG10_SSR_COUNTS: tuple[int | None, ...] = (1, 4, 16, None)


def pallet_variant(first_stage_bits: int, software_trimming: bool = True) -> PragmaticConfig:
    """Per-pallet synchronization variant with ``L`` first-stage bits (``PRA-Lb``)."""
    return PragmaticConfig(
        first_stage_bits=first_stage_bits,
        synchronization="pallet",
        software_trimming=software_trimming,
        label=f"PRA-{first_stage_bits}b",
    )


def single_stage_variant(software_trimming: bool = True) -> PragmaticConfig:
    """The single-stage design PRAsingle (full-reach shifters, ``L = 4``)."""
    config = pallet_variant(4, software_trimming=software_trimming)
    return PragmaticConfig(
        first_stage_bits=config.first_stage_bits,
        synchronization=config.synchronization,
        ssr_count=config.ssr_count,
        software_trimming=config.software_trimming,
        chip=config.chip,
        label="PRA-single",
    )


def column_variant(
    ssr_count: int | None,
    first_stage_bits: int = 2,
    software_trimming: bool = True,
) -> PragmaticConfig:
    """Per-column synchronization variant (``PRA-2b-xR`` in the paper)."""
    suffix = "idealR" if ssr_count is None else f"{ssr_count}R"
    return PragmaticConfig(
        first_stage_bits=first_stage_bits,
        synchronization="column",
        ssr_count=ssr_count,
        software_trimming=software_trimming,
        label=f"PRA-{first_stage_bits}b-{suffix}",
    )


def encoding_variant(
    encoding: str,
    first_stage_bits: int = 2,
    software_trimming: bool = True,
) -> PragmaticConfig:
    """The baseline PRA design point streaming a registered encoding.

    PRA-2b with per-pallet synchronization — the paper's headline
    configuration — so encoding comparisons isolate the representation, not
    the synchronization scheme.
    """
    return PragmaticConfig(
        first_stage_bits=first_stage_bits,
        synchronization="pallet",
        software_trimming=software_trimming,
        encoding=encoding,
        label=f"PRA-{first_stage_bits}b-{encoding}",
    )


def fig9_variants() -> dict[str, PragmaticConfig]:
    """The Pragmatic bars of Figure 9: 0-bit … 4-bit first-stage shifters."""
    return {f"{bits}-bit": pallet_variant(bits) for bits in FIG9_FIRST_STAGE_BITS}


def fig10_variants() -> dict[str, PragmaticConfig]:
    """The Pragmatic bars of Figure 10: PRA-2b with 1/4/16/ideal SSRs."""
    labels = {1: "1-reg", 4: "4-regs", 16: "16-regs", None: "perCol-ideal"}
    return {labels[count]: column_variant(count) for count in FIG10_SSR_COUNTS}


def fig12_variants() -> dict[str, PragmaticConfig]:
    """The Pragmatic bars of Figure 12 (8-bit quantized representation).

    Software trimming does not apply to the per-layer min/max quantized codes,
    so the quantized variants run software-transparent.
    """
    return {
        "perPall": pallet_variant(4, software_trimming=False),
        "perPall-2bit": pallet_variant(2, software_trimming=False),
        "perCol-1reg-2bit": column_variant(1, software_trimming=False),
        "perCol-ideal-2bit": column_variant(None, software_trimming=False),
    }


def encoding_variants(first_stage_bits: int = 2) -> dict[str, PragmaticConfig]:
    """One PRA design point per registered encoding, keyed by encoding name.

    The groups of the ``encodings`` comparison experiment; ``positional`` is
    numerically identical to the plain ``PRA-2b`` point of Figure 9.
    """
    return {
        name: encoding_variant(name, first_stage_bits=first_stage_bits)
        for name in encoding_names()
    }


def paper_variants() -> dict[str, PragmaticConfig]:
    """Every named configuration the paper evaluates, keyed by its label."""
    variants: dict[str, PragmaticConfig] = {}
    for bits in FIG9_FIRST_STAGE_BITS:
        config = pallet_variant(bits)
        variants[config.name] = config
    for count in FIG10_SSR_COUNTS:
        config = column_variant(count)
        variants[config.name] = config
    single = single_stage_variant()
    variants[single.name] = single
    return variants
