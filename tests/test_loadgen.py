"""Tests for the load harness: mixes, metrics, trajectory, gate, swarm.

The loadgen contract: a mix spec compiles into a byte-identical schedule for
the same seed (two PRs replay the same traffic), percentiles come back within
the histogram's configured relative error, the perf trajectory only ever
appends (one record per git sha), and the regression gate fails on a >20%
slowdown of any comparable metric while refusing to compare noise or
different workloads.
"""

import asyncio
import hashlib
import json
import math
import pathlib
import random

import pytest

from repro.loadgen import (
    LatencyHistogram,
    LoadSwarm,
    MixError,
    MixSpec,
    check_gate,
    load_trajectory,
    save_trajectory,
    upsert_record,
    validate_report,
)
from repro.loadgen.gate import check_gate_file
from repro.loadgen.trajectory import (
    TRAJECTORY_SCHEMA,
    append_experiment_measurement,
    append_loadgen_section,
)
from repro.serve import ExperimentService, ServeClient


def run(coro):
    return asyncio.run(coro)


# ------------------------------------------------------------------- mix specs
class TestMixSpec:
    def test_defaults_round_trip(self):
        mix = MixSpec.from_dict(MixSpec().to_dict())
        assert mix == MixSpec()

    def test_rejects_unknown_fields(self):
        with pytest.raises(MixError, match="unknown mix field"):
            MixSpec.from_dict({"requets": 10})

    def test_rejects_unknown_experiment(self):
        with pytest.raises(MixError, match="unknown experiment"):
            MixSpec.from_dict({"experiments": {"not_an_experiment": 1}})

    def test_rejects_unknown_preset(self):
        with pytest.raises(MixError, match="unknown preset"):
            MixSpec.from_dict({"presets": {"turbo": 1}})

    def test_rejects_out_of_range_ratio(self):
        with pytest.raises(MixError, match="hot_ratio"):
            MixSpec.from_dict({"hot_ratio": 1.5})

    def test_rejects_non_positive_weight(self):
        with pytest.raises(MixError, match="weight"):
            MixSpec.from_dict({"experiments": {"table1": 0}})

    def test_rejects_bool_masquerading_as_number(self):
        with pytest.raises(MixError):
            MixSpec.from_dict({"requests": True})

    def test_rejects_bad_overrides(self):
        with pytest.raises(MixError, match="overrides"):
            MixSpec.from_dict({"overrides": ["networks"]})

    def test_rejects_unknown_network(self):
        with pytest.raises(MixError, match="unknown network"):
            MixSpec.from_dict({"networks": {"resnet50": 1}})

    def test_rejects_unknown_variants_group(self):
        with pytest.raises(MixError, match="unknown variants group"):
            MixSpec.from_dict({"variants": "fig99"})

    def test_rejects_unknown_encoding(self):
        with pytest.raises(MixError, match="unknown encoding"):
            MixSpec.from_dict({"encodings": {"gray-code": 1}})

    def test_rejects_encodings_group_with_pinned_encodings(self):
        """variants=encodings already spans the registry; weighting other
        encodings on top of it is contradictory."""
        with pytest.raises(MixError, match="spans every encoding"):
            MixSpec.from_dict({"variants": "encodings", "encodings": {"csd": 1}})
        # Positional-only (the default) and an explicit default are fine.
        MixSpec.from_dict({"variants": "encodings"})
        MixSpec.from_dict({"variants": "encodings", "encodings": {"positional": 1}})

    def test_simulate_fields_round_trip(self):
        spec = {
            "simulate_ratio": 0.5,
            "networks": {"alexnet": 2, "vgg_m": 1},
            "variants": "fig10",
            "encodings": {"csd": 1, "hese": 2},
        }
        mix = MixSpec.from_dict(spec)
        assert mix.simulate_ratio == 0.5
        assert dict(mix.networks) == {"alexnet": 2.0, "vgg_m": 1.0}
        assert mix.variants == "fig10"
        assert dict(mix.encodings) == {"csd": 1.0, "hese": 2.0}
        assert MixSpec.from_dict(mix.to_dict()) == mix

    def test_from_file(self, tmp_path):
        path = tmp_path / "mix.json"
        path.write_text(json.dumps({"requests": 5, "seed": 42, "hot_ratio": 1.0}))
        mix = MixSpec.from_file(path)
        assert (mix.requests, mix.seed, mix.hot_ratio) == (5, 42, 1.0)

    def test_from_file_missing(self, tmp_path):
        with pytest.raises(MixError, match="cannot read"):
            MixSpec.from_file(tmp_path / "absent.json")


class TestCommittedMixes:
    """Every mix spec checked into benchmarks/mixes must stay loadable."""

    def mix_files(self):
        mixes = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "mixes"
        files = sorted(mixes.glob("*.json"))
        assert files, "benchmarks/mixes must contain at least the soak mix"
        return files

    def test_all_committed_mixes_load_and_schedule(self):
        for path in self.mix_files():
            mix = MixSpec.from_file(path)
            schedule = mix.schedule()
            assert len(schedule) == mix.requests
            assert schedule == MixSpec.from_file(path).schedule()

    def test_sweep_soak_schedule_unchanged_by_simulate_fields(self):
        """The simulate/encoding mix fields added no RNG draws to specs that
        leave them defaulted: the committed soak's compiled schedule is still
        byte-identical to the pre-encoding format (pinned by hash)."""
        path = next(p for p in self.mix_files() if p.name == "sweep_soak.json")
        schedule = MixSpec.from_file(path).schedule()
        payload = json.dumps(
            [planned.__dict__ for planned in schedule], sort_keys=True, default=str
        )
        digest = hashlib.sha256(payload.encode()).hexdigest()
        assert digest == (
            "b6e6f4f8492a6acc2e8d84ef1b6ba88aaa8cb12a856f66d82060748d647cec03"
        )

    def test_encoding_mix_reaches_every_encoding(self):
        """The committed mixed-encoding mix schedules simulate traffic under
        all four registered encodings, deterministically."""
        from repro.numerics.encodings import encoding_names

        path = next(p for p in self.mix_files() if p.name == "encoding_mix.json")
        mix = MixSpec.from_file(path)
        assert set(dict(mix.encodings)) == set(encoding_names())
        schedule = mix.schedule()
        simulate = [p for p in schedule if p.message["op"] == "simulate"]
        assert simulate, "the encoding mix must carry simulate traffic"
        seen = {p.message.get("encoding", "positional") for p in simulate}
        assert seen == set(encoding_names())
        # positional ops omit the field entirely (wire compat with servers
        # that predate it).
        assert all("encoding" not in p.message or
                   p.message["encoding"] != "positional" for p in simulate)
        assert schedule == MixSpec.from_file(path).schedule()

    def test_sweep_soak_targets_the_sweep_engine(self):
        path = next(p for p in self.mix_files() if p.name == "sweep_soak.json")
        mix = MixSpec.from_file(path)
        weights = dict(mix.experiments)
        # The soak exists to hold the batched drain kernel under sustained
        # sweep traffic: the sweep-heavy figures must dominate the mix.
        sweep_heavy = weights.get("fig9", 0) + weights.get("fig10", 0) + \
            weights.get("fig11", 0) + weights.get("table5", 0)
        assert sweep_heavy > sum(weights.values()) / 2
        assert dict(mix.presets) == {"fast": 1.0}
        assert mix.requests >= 1000


class TestSchedule:
    def test_same_seed_identical_schedule(self):
        mix = MixSpec(requests=40, seed=3)
        assert mix.schedule() == mix.schedule()

    def test_different_seed_differs(self):
        base = MixSpec(requests=40, seed=3).schedule()
        other = MixSpec(requests=40, seed=4).schedule()
        assert base != other

    def test_hot_requests_draw_from_small_pool(self):
        mix = MixSpec(requests=60, hot_ratio=1.0, hot_pool=3, seed=0)
        schedule = mix.schedule()
        assert all(planned.hot for planned in schedule)
        shapes = {json.dumps(planned.message, sort_keys=True) for planned in schedule}
        assert len(shapes) <= 3
        assert all(planned.message["seed"] < 3 for planned in schedule)

    def test_cold_requests_never_collide(self):
        mix = MixSpec(requests=60, hot_ratio=0.0, seed=0)
        schedule = mix.schedule()
        assert not any(planned.hot for planned in schedule)
        seeds = [planned.message["seed"] for planned in schedule]
        assert len(set(seeds)) == len(seeds)
        assert min(seeds) >= 1000  # disjoint from the hot pool's small seeds

    def test_clients_assigned_round_robin(self):
        schedule = MixSpec(requests=10, clients=3).schedule()
        assert [planned.client for planned in schedule] == [
            index % 3 for index in range(10)
        ]

    def test_simulate_free_specs_ignore_simulate_field_values(self):
        """With simulate_ratio left at 0, the simulate-only fields never touch
        the RNG: schedules are identical whatever they hold."""
        base = MixSpec(requests=40, seed=3).schedule()
        redecorated = MixSpec(
            requests=40,
            seed=3,
            networks=(("vgg_m", 1.0),),
            variants="fig12",
            encodings=(("hese", 1.0),),
        ).schedule()
        assert base == redecorated
        assert not any(p.message["op"] == "simulate" for p in base)

    def test_simulate_ratio_emits_cold_simulate_ops(self):
        mix = MixSpec(
            requests=60,
            hot_ratio=0.0,
            simulate_ratio=1.0,
            seed=2,
            encodings=(("csd", 1.0), ("positional", 1.0)),
        )
        schedule = mix.schedule()
        assert all(p.message["op"] == "simulate" for p in schedule)
        assert all(p.message["variants"] == "fig9" for p in schedule)
        seeds = [p.message["seed"] for p in schedule]
        assert len(set(seeds)) == len(seeds)
        assert {p.message.get("encoding", "positional") for p in schedule} == {
            "csd",
            "positional",
        }
        assert schedule == mix.schedule()

    def test_think_times_deterministic_and_nonnegative(self):
        mix = MixSpec(requests=20, think_seconds=0.05, seed=9)
        first = [planned.think_seconds for planned in mix.schedule()]
        second = [planned.think_seconds for planned in mix.schedule()]
        assert first == second
        assert all(think >= 0 for think in first)
        assert any(think > 0 for think in first)


# ----------------------------------------------------------------- percentiles
class TestLatencyHistogram:
    def test_percentiles_within_configured_precision(self):
        histogram = LatencyHistogram(precision=0.02)
        rng = random.Random(0)
        samples = [rng.uniform(0.001, 2.0) for _ in range(5000)]
        for sample in samples:
            histogram.record(sample)
        samples.sort()
        for p in (50, 95, 99):
            exact = samples[max(0, math.ceil(len(samples) * p / 100.0) - 1)]
            got = histogram.percentile(p)
            assert abs(got - exact) / exact <= 0.02 + 1e-9

    def test_known_small_sample(self):
        histogram = LatencyHistogram()
        for sample in (0.010, 0.020, 0.030, 0.040, 1.0):
            histogram.record(sample)
        assert histogram.count == 5
        assert histogram.min == pytest.approx(0.010)
        assert histogram.max == pytest.approx(1.0)
        assert histogram.percentile(50) == pytest.approx(0.030, rel=0.03)
        assert histogram.percentile(100) == pytest.approx(1.0)
        assert histogram.mean == pytest.approx(0.220, rel=1e-6)

    def test_empty_summary(self):
        summary = LatencyHistogram().summary()
        assert summary["count"] == 0
        assert summary["p95_seconds"] is None

    def test_merge_equals_union(self):
        left, right, union = LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
        for index, sample in enumerate(x / 100 for x in range(1, 101)):
            (left if index % 2 else right).record(sample)
            union.record(sample)
        left.merge(right)
        assert left.summary() == union.summary()

    def test_merge_rejects_mismatched_precision(self):
        with pytest.raises(ValueError, match="precision"):
            LatencyHistogram(0.02).merge(LatencyHistogram(0.05))

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            LatencyHistogram().record(float("nan"))


# ------------------------------------------------------------------ trajectory
class TestTrajectory:
    def test_migrates_schema1_snapshot_as_record_zero(self, tmp_path):
        path = tmp_path / "bench_summary.json"
        path.write_text(json.dumps({
            "schema": 1,
            "experiments": {"fig9": {"preset": "fast", "wall_seconds": 34.7}},
        }))
        trajectory = load_trajectory(path)
        assert trajectory["schema"] == TRAJECTORY_SCHEMA
        record = trajectory["records"][0]
        assert record["index"] == 0
        assert record["git_sha"] is None
        assert record["experiments"]["fig9"]["wall_seconds"] == 34.7

    def test_missing_or_corrupt_restarts_empty(self, tmp_path):
        assert load_trajectory(tmp_path / "absent.json")["records"] == []
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert load_trajectory(bad)["records"] == []

    def test_round_trip(self, tmp_path):
        path = tmp_path / "trajectory.json"
        trajectory = load_trajectory(path)
        upsert_record(trajectory, "sha-a", label="PR 1")
        save_trajectory(path, trajectory)
        assert load_trajectory(path) == trajectory

    def test_upsert_reuses_head_only_for_same_sha(self):
        trajectory = {"schema": TRAJECTORY_SCHEMA, "records": []}
        first = upsert_record(trajectory, "sha-a", label="PR 1")
        again = upsert_record(trajectory, "sha-a")
        assert again is first and len(trajectory["records"]) == 1
        assert first["label"] == "PR 1"  # label survives a label-less upsert
        second = upsert_record(trajectory, "sha-b", label="PR 2")
        assert second is not first
        assert [record["index"] for record in trajectory["records"]] == [0, 1]

    def test_append_only_older_records_untouched(self, tmp_path):
        path = tmp_path / "trajectory.json"
        append_experiment_measurement(path, "fig9", "fast", 30.0, git_sha="sha-a")
        frozen = json.loads(json.dumps(load_trajectory(path)["records"][0]))
        append_experiment_measurement(path, "fig9", "fast", 99.0, git_sha="sha-b")
        records = load_trajectory(path)["records"]
        assert len(records) == 2
        assert records[0] == frozen  # strictly append-only
        assert records[1]["experiments"]["fig9"]["wall_seconds"] == 99.0

    def test_benchmark_and_loadgen_share_one_record_per_sha(self, tmp_path):
        path = tmp_path / "trajectory.json"
        append_experiment_measurement(path, "fig9", "fast", 30.0, git_sha="sha-a")
        append_loadgen_section(
            path, "serve", {"p95_seconds": 0.4}, git_sha="sha-a", label="PR 6"
        )
        records = load_trajectory(path)["records"]
        assert len(records) == 1
        assert records[0]["experiments"]["fig9"]["wall_seconds"] == 30.0
        assert records[0]["loadgen"]["serve"]["p95_seconds"] == 0.4


# ------------------------------------------------------------------------ gate
def _trajectory(*records):
    return {"schema": TRAJECTORY_SCHEMA, "records": list(records)}


def _record(index, experiments=None, loadgen=None):
    record = {"index": index, "git_sha": f"sha-{index}"}
    if experiments is not None:
        record["experiments"] = experiments
    if loadgen is not None:
        record["loadgen"] = loadgen
    return record


class TestGate:
    def test_no_baseline_passes_explicitly(self):
        result = check_gate(_trajectory(_record(0)))
        assert result.status == "no-baseline" and result.ok
        assert "no baseline" in result.describe()

    def test_within_threshold_passes(self):
        result = check_gate(_trajectory(
            _record(0, experiments={"fig9": {"preset": "fast", "wall_seconds": 30.0}}),
            _record(1, experiments={"fig9": {"preset": "fast", "wall_seconds": 35.0}}),
        ))
        assert result.status == "pass" and result.ok
        assert not result.regressions

    def test_synthetic_regression_fails(self):
        """The acceptance check: a >20% slowdown must fail the gate."""
        result = check_gate(_trajectory(
            _record(0, experiments={"fig9": {"preset": "fast", "wall_seconds": 30.0}}),
            _record(1, experiments={"fig9": {"preset": "fast", "wall_seconds": 36.1}}),
        ))
        assert result.status == "fail" and not result.ok
        assert [finding.metric for finding in result.regressions] == ["experiment:fig9"]
        assert "FAIL" in result.describe()

    def test_loadgen_p95_regression_fails(self):
        result = check_gate(_trajectory(
            _record(0, loadgen={"serve": {"p95_seconds": 0.5}}),
            _record(1, loadgen={"serve": {"p95_seconds": 0.9}}),
        ))
        assert result.status == "fail"
        assert result.regressions[0].metric == "loadgen:serve:p95"

    def test_noise_floor_skips_sub_100ms_baselines(self):
        result = check_gate(_trajectory(
            _record(0, experiments={"table3": {"preset": "fast", "wall_seconds": 0.0}}),
            _record(1, experiments={"table3": {"preset": "fast", "wall_seconds": 0.09}}),
        ))
        assert result.status == "pass"
        assert result.findings[0].skipped
        assert "SKIP" in result.describe()

    def test_preset_change_is_not_compared(self):
        result = check_gate(_trajectory(
            _record(0, experiments={"fig9": {"preset": "smoke", "wall_seconds": 1.0}}),
            _record(1, experiments={"fig9": {"preset": "full", "wall_seconds": 90.0}}),
        ))
        assert result.status == "pass" and not result.findings

    def test_metric_in_only_one_record_skipped(self):
        result = check_gate(_trajectory(
            _record(0, experiments={"fig9": {"preset": "fast", "wall_seconds": 30.0}}),
            _record(1, loadgen={"serve": {"p95_seconds": 0.4}}),
        ))
        assert result.status == "pass" and not result.findings

    def test_gate_file_entry_point(self, tmp_path):
        path = tmp_path / "trajectory.json"
        save_trajectory(path, _trajectory(
            _record(0, experiments={"fig9": {"preset": "fast", "wall_seconds": 30.0}}),
            _record(1, experiments={"fig9": {"preset": "fast", "wall_seconds": 90.0}}),
        ))
        assert not check_gate_file(path).ok
        assert check_gate_file(tmp_path / "absent.json").status == "no-baseline"

    def test_rejects_non_positive_threshold(self):
        with pytest.raises(ValueError):
            check_gate(_trajectory(), threshold=0.0)


# ------------------------------------------------------- serve timings satellite
class TestServeTimings:
    def test_response_carries_wall_clock_breakdown(self):
        async def scenario():
            async with ExperimentService(cache_dir=None, workers=1) as service:
                server = await service.serve_tcp("127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                async with server:
                    async with await ServeClient.connect("127.0.0.1", port) as client:
                        response = await client.run_experiment("table1", preset="smoke")
                        assert response.ok
                        timings = response.timings
                        assert timings is not None
                        for key in ("queue_wait_seconds", "execution_seconds", "total_seconds"):
                            assert timings[key] >= 0.0
                        assert timings["total_seconds"] >= timings["execution_seconds"]
                        assert timings["total_seconds"] == pytest.approx(
                            timings["queue_wait_seconds"] + timings["execution_seconds"],
                            abs=0.05,
                        )

        run(scenario())

    def test_stats_exposes_coalescing_effectiveness(self):
        async def scenario():
            async with ExperimentService(cache_dir=None, workers=1) as service:
                server = await service.serve_tcp("127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                async with server:
                    async with await ServeClient.connect("127.0.0.1", port) as client:
                        await client.run_experiment("table1", preset="smoke")
                        stats = await client.stats()
                        coalescing = stats["coalescing"]
                        assert coalescing["tickets_attached"] == 1
                        assert coalescing["tickets_coalesced"] == 0
                        assert coalescing["jobs_executed"] == 1
                        assert coalescing["hit_rate"] == 0.0

        run(scenario())


# ----------------------------------------------------------------- swarm e2e
class TestLoadSwarm:
    def test_seeded_mixed_run_against_in_process_serve(self):
        """End to end: hot+cold, stream+batch, cancels, report well-formed."""

        async def scenario():
            async with ExperimentService(cache_dir=None, workers=2) as service:
                server = await service.serve_tcp("127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                async with server:
                    mix = MixSpec(
                        requests=12, clients=3, seed=6,
                        hot_ratio=0.5, stream_ratio=0.3, cancel_rate=0.2,
                    )
                    swarm = LoadSwarm(mix, "127.0.0.1", port, target="serve")
                    return mix, await swarm.run()

        mix, report = run(scenario())
        schedule = mix.schedule()
        assert report.issued == 12
        assert report.done + report.failed + report.cancelled == 12
        assert report.failed == 0, report.errors
        assert report.done > 0
        assert report.hot_issued == sum(1 for planned in schedule if planned.hot)
        assert report.streamed == sum(
            1 for planned in schedule if planned.stream or planned.cancel
        )
        assert report.latency.count == report.done
        assert report.server_coalescing["tickets_attached"] == 12
        payload = report.to_dict()
        validate_report(payload)  # the smoke-step assertion, exercised here
        assert payload["latency"]["p95_seconds"] is not None
        assert payload["throughput_rps"] > 0
        section = report.trajectory_section()
        assert section["mix_seed"] == 6
        assert section["p99_seconds"] >= section["p50_seconds"]


# ----------------------------------------------------------------- report schema
class TestValidateReport:
    def _good(self):
        from repro.loadgen.report import LoadReport

        load = LoadReport(
            target="serve", mix=MixSpec().to_dict(), duration_seconds=1.0,
            latency=LatencyHistogram(), queue_wait=LatencyHistogram(),
            execution=LatencyHistogram(),
        )
        load.issued = load.done = 1
        load.latency.record(0.1)
        return load.to_dict()

    def test_good_report_passes(self):
        validate_report(self._good())

    def test_wrong_schema_rejected(self):
        payload = self._good()
        payload["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            validate_report(payload)

    def test_missing_percentiles_rejected(self):
        payload = self._good()
        del payload["latency"]["p95_seconds"]
        with pytest.raises(ValueError, match="p95"):
            validate_report(payload)

    def test_unaccounted_outcomes_rejected(self):
        payload = self._good()
        payload["requests"]["issued"] = 5
        with pytest.raises(ValueError, match="accounts for"):
            validate_report(payload)
