"""Analysis passes: essential-bit statistics, term-count potential, speedup aggregation."""

from repro.analysis.essential_bits import NetworkBitContent, essential_bit_table, measure_trace
from repro.analysis.potential import (
    FIG2_ENGINES,
    FIG3_ENGINES,
    TermCounts,
    count_terms_fixed16,
    count_terms_quant8,
    fig2_table,
    fig3_table,
)
from repro.analysis.speedup import dadn_result, geometric_mean, speedup_summary, stripes_result
from repro.analysis.tables import format_percent, format_ratio, format_table

__all__ = [
    "NetworkBitContent",
    "essential_bit_table",
    "measure_trace",
    "TermCounts",
    "FIG2_ENGINES",
    "FIG3_ENGINES",
    "count_terms_fixed16",
    "count_terms_quant8",
    "fig2_table",
    "fig3_table",
    "geometric_mean",
    "dadn_result",
    "stripes_result",
    "speedup_summary",
    "format_table",
    "format_percent",
    "format_ratio",
]
