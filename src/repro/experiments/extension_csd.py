"""Extension (beyond the paper): canonical signed digit oneffset encoding.

The paper's conclusion points out that Pragmatic's approach applies to any
explicit power-of-two representation of the neurons.  This experiment
quantifies the headroom of switching the oneffset generator from the positional
non-zero bits to the canonical signed digit (NAF) encoding, which minimizes the
number of (signed) power-of-two terms per value: it reports the relative term
counts of PRA with both encodings, next to Stripes, in the style of Figure 2.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.speedup import geometric_mean
from repro.analysis.tables import format_percent
from repro.experiments.base import ExperimentResult, Preset, get_preset
from repro.nn.networks import get_network
from repro.numerics.encodings import get_encoding
from repro.runtime import TraceSpec, current_session

__all__ = ["run"]

_ENGINES = ("Stripes", "PRA-fp16", "PRA-csd")

#: Term counting now rides the encoding registry; the registry entries
#: reproduce the popcount / csd_term_counts numbers exactly (pinned by
#: tests/test_experiments.py).
_ENGINE_ENCODINGS = {"PRA-fp16": "positional", "PRA-csd": "csd"}


def run(preset: str | Preset = "fast", seed: int = 0) -> ExperimentResult:
    """Relative term counts of positional vs CSD oneffset encodings."""
    config = get_preset(preset)
    headers = ["network", *_ENGINES, "CSD term reduction"]
    rows: list[list[object]] = []
    metadata: dict[str, float] = {}
    per_engine: dict[str, list[float]] = {engine: [] for engine in _ENGINES}

    for name in config.networks:
        network = get_network(name)
        trace = current_session().trace(TraceSpec(network=name, seed=seed))
        totals = {engine: 0.0 for engine in _ENGINES}
        baseline = 0.0
        for index, layer in enumerate(network.layers):
            values = trace.sample_layer_values(index, config.samples_per_layer)
            precision = trace.layer_precision(index)
            baseline += layer.macs * 16.0
            totals["Stripes"] += layer.macs * float(min(precision.width, 16))
            for engine, encoding in _ENGINE_ENCODINGS.items():
                counts = get_encoding(encoding).term_counts(values, bits=16)
                totals[engine] += layer.macs * float(counts.mean())
        relative = {engine: totals[engine] / baseline for engine in _ENGINES}
        reduction = 1.0 - relative["PRA-csd"] / relative["PRA-fp16"]
        rows.append(
            [network.name]
            + [format_percent(relative[engine]) for engine in _ENGINES]
            + [format_percent(reduction)]
        )
        for engine in _ENGINES:
            per_engine[engine].append(relative[engine])
            metadata[f"{network.name}:{engine}"] = relative[engine]
        metadata[f"{network.name}:reduction"] = reduction

    geomeans = {engine: geometric_mean(values) for engine, values in per_engine.items()}
    reduction = 1.0 - geomeans["PRA-csd"] / geomeans["PRA-fp16"]
    rows.append(
        ["geomean"]
        + [format_percent(geomeans[engine]) for engine in _ENGINES]
        + [format_percent(reduction)]
    )
    for engine, value in geomeans.items():
        metadata[f"geomean:{engine}"] = value
    metadata["geomean:reduction"] = reduction
    notes = (
        "Extension beyond the paper: the canonical signed digit (non-adjacent form)\n"
        "encoding needs the fewest signed power-of-two terms per neuron; the PIP's\n"
        "existing negation input makes it a drop-in change to the oneffset generator.\n"
        "Values are relative term counts vs the bit-parallel DaDN baseline (no software\n"
        "trimming), so PRA-fp16 matches the Figure 2 column of the same name."
    )
    return ExperimentResult(
        experiment="extension_csd",
        title="Extension: positional vs canonical-signed-digit oneffset encoding",
        headers=headers,
        rows=rows,
        notes=notes,
        metadata=metadata,
    )


def _unused(values: np.ndarray) -> np.ndarray:
    return np.asarray(values)
