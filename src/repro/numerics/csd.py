"""Canonical signed digit (CSD) encoding — the "improved encoding" extension.

The Pragmatic paper processes the *non-zero bits* of the conventional positional
representation.  Its conclusion notes that the approach generalizes to any
explicit power-of-two representation; the natural next step (adopted by the
follow-up bit-serial accelerators) is to allow negative powers of two and
re-encode each value in canonical signed digit form (the non-adjacent form,
NAF), which is guaranteed to use the minimum number of signed power-of-two
terms and never more than half the bit positions plus one.

For example ``0b0111_1110 = 126`` needs six positional oneffsets but only two
CSD terms (``+2^7 − 2^1``).  Because the PIP already carries a negation input
per lane (for negative neurons), supporting signed terms costs no extra
datapath — only the oneffset generator changes — so the encoding is a
drop-in reduction of the serial work.

This module provides the encoder/decoder, vectorized term counting and the
position planes the drain scheduler consumes, and is exercised by the
``extension_csd`` experiment.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "encode_csd",
    "decode_csd",
    "csd_term_counts",
    "csd_position_matrix",
    "csd_term_fraction",
]


def encode_csd(value: int, bits: int = 16) -> tuple[tuple[int, int], ...]:
    """Encode ``|value|`` in canonical signed digit (non-adjacent) form.

    Returns a tuple of ``(sign, position)`` pairs with ``sign`` in ``{+1, -1}``,
    ordered from the least significant position upward.  The encoding is the
    standard NAF construction: no two adjacent positions are used, and the term
    count is minimal among all signed power-of-two representations.
    """
    magnitude = abs(int(value))
    if magnitude >= (1 << (bits + 1)):
        raise ValueError(f"value {value} does not fit in {bits} bits")
    terms: list[tuple[int, int]] = []
    position = 0
    while magnitude:
        if magnitude & 1:
            remainder = 2 - (magnitude % 4)  # +1 if ...01, -1 if ...11
            terms.append((remainder, position))
            magnitude -= remainder
        magnitude >>= 1
        position += 1
    return tuple(terms)


def decode_csd(terms: tuple[tuple[int, int], ...] | list[tuple[int, int]]) -> int:
    """Reconstruct the magnitude from ``(sign, position)`` CSD terms."""
    value = 0
    seen: set[int] = set()
    for sign, position in terms:
        if sign not in (-1, 1):
            raise ValueError(f"CSD term signs must be +1 or -1, got {sign}")
        if position < 0:
            raise ValueError(f"CSD positions must be non-negative, got {position}")
        if position in seen:
            raise ValueError(f"duplicate CSD position {position}")
        seen.add(position)
        value += sign * (1 << position)
    return value


def csd_term_counts(values: np.ndarray, bits: int = 16) -> np.ndarray:
    """Number of CSD terms of each magnitude (vectorized NAF term count).

    Uses the identity that the NAF of ``n`` has one term per set bit of
    ``(3n) XOR n`` divided between two positions — i.e. the popcount of
    ``(n XOR 3n)`` equals twice... rather than rely on bit tricks, the count is
    computed with the same digit recurrence as :func:`encode_csd`, expressed on
    whole arrays.
    """
    magnitudes = np.abs(np.asarray(values, dtype=np.int64)).copy()
    if magnitudes.size and int(magnitudes.max()) >= (1 << (bits + 1)):
        raise ValueError(f"values do not fit in {bits} bits")
    counts = np.zeros_like(magnitudes)
    # At most bits + 1 iterations: each iteration retires the lowest digit.
    for _ in range(bits + 2):
        odd = (magnitudes & 1).astype(bool)
        if not magnitudes.any():
            break
        remainder = np.where(magnitudes % 4 == 1, 1, -1)
        counts = counts + np.where(odd, 1, 0)
        magnitudes = np.where(odd, magnitudes - remainder, magnitudes) >> 1
    return counts


def csd_position_matrix(values: np.ndarray, bits: int = 16) -> np.ndarray:
    """Boolean matrix of CSD term positions, shaped ``values.shape + (bits + 1,)``.

    The sign of each term does not affect timing (the PIP negates for free), so
    the drain scheduler only needs the occupied positions.  CSD may use position
    ``bits`` (one above the storage width), hence the extra plane.
    """
    flat = np.abs(np.asarray(values, dtype=np.int64)).ravel()
    planes = np.zeros((flat.size, bits + 1), dtype=bool)
    for index, value in enumerate(flat):
        for _, position in encode_csd(int(value), bits=bits):
            planes[index, position] = True
    return planes.reshape(np.asarray(values).shape + (bits + 1,))


def csd_term_fraction(values: np.ndarray, bits: int = 16) -> float:
    """Average CSD terms per neuron as a fraction of the storage width."""
    arr = np.asarray(values)
    if arr.size == 0:
        raise ValueError("cannot compute the CSD term fraction of an empty array")
    return float(csd_term_counts(arr, bits=bits).mean() / bits)
