"""Unit tests for repro.numerics.fixedpoint."""

import numpy as np
import pytest

from repro.numerics.fixedpoint import (
    FIXED16,
    FixedPointFormat,
    bit_matrix,
    leading_bit_position,
    popcount,
    trailing_bit_position,
)


class TestFixedPointFormat:
    def test_default_is_16_bit_signed_integer(self):
        assert FIXED16.total_bits == 16
        assert FIXED16.signed
        assert FIXED16.frac_bits == 0
        assert FIXED16.scale == 1.0

    def test_magnitude_bits_excludes_sign(self):
        assert FIXED16.magnitude_bits == 15
        assert FixedPointFormat(total_bits=8, signed=False).magnitude_bits == 8

    def test_range(self):
        fmt = FixedPointFormat(total_bits=8, frac_bits=0, signed=True)
        assert fmt.max_int == 127
        assert fmt.min_int == -128
        assert fmt.max_value == 127.0

    def test_unsigned_range(self):
        fmt = FixedPointFormat(total_bits=8, frac_bits=0, signed=False)
        assert fmt.min_int == 0
        assert fmt.max_int == 255

    def test_fractional_scale(self):
        fmt = FixedPointFormat(total_bits=16, frac_bits=8)
        assert fmt.scale == pytest.approx(1 / 256)
        assert fmt.quantize(1.0) == 256

    def test_quantize_rounds_to_nearest(self):
        fmt = FixedPointFormat(total_bits=16, frac_bits=4)
        assert fmt.quantize(1.03) == pytest.approx(round(1.03 * 16))

    def test_quantize_saturates(self):
        fmt = FixedPointFormat(total_bits=8, frac_bits=0)
        assert fmt.quantize(1e6) == fmt.max_int
        assert fmt.quantize(-1e6) == fmt.min_int

    def test_dequantize_inverts_scale(self):
        fmt = FixedPointFormat(total_bits=16, frac_bits=3)
        values = np.array([1, -4, 9])
        np.testing.assert_allclose(fmt.dequantize(values), values / 8)

    def test_roundtrip_within_half_lsb(self):
        fmt = FixedPointFormat(total_bits=16, frac_bits=6)
        values = np.linspace(-10, 10, 101)
        recovered = fmt.dequantize(fmt.quantize(values))
        assert np.max(np.abs(recovered - values)) <= fmt.scale / 2 + 1e-12

    def test_clamp_int(self):
        fmt = FixedPointFormat(total_bits=8)
        np.testing.assert_array_equal(
            fmt.clamp_int(np.array([-1000, 0, 1000])), [-128, 0, 127]
        )

    def test_is_representable(self):
        fmt = FixedPointFormat(total_bits=8)
        np.testing.assert_array_equal(
            fmt.is_representable(np.array([-129, -128, 127, 128])),
            [False, True, True, False],
        )

    def test_invalid_total_bits_rejected(self):
        with pytest.raises(ValueError):
            FixedPointFormat(total_bits=0)

    def test_invalid_frac_bits_rejected(self):
        with pytest.raises(ValueError):
            FixedPointFormat(total_bits=16, frac_bits=-1)


class TestBitHelpers:
    def test_bit_matrix_matches_binary_expansion(self):
        values = np.array([0, 1, 5, 0b1010_1010])
        mat = bit_matrix(values, bits=8)
        assert mat.shape == (4, 8)
        for i, value in enumerate(values):
            expected = [(value >> b) & 1 for b in range(8)]
            np.testing.assert_array_equal(mat[i].astype(int), expected)

    def test_bit_matrix_uses_magnitude_of_negatives(self):
        np.testing.assert_array_equal(bit_matrix(np.array([-5]), 4), bit_matrix(np.array([5]), 4))

    def test_bit_matrix_rejects_too_wide_values(self):
        with pytest.raises(ValueError):
            bit_matrix(np.array([256]), bits=8)

    def test_popcount_known_values(self):
        np.testing.assert_array_equal(popcount(np.array([0, 1, 3, 255]), 8), [0, 1, 2, 8])

    def test_popcount_matches_python_bin(self, rng):
        values = rng.integers(0, 2**16, size=200)
        expected = [bin(int(v)).count("1") for v in values]
        np.testing.assert_array_equal(popcount(values, 16), expected)

    def test_popcount_preserves_shape(self):
        values = np.arange(12).reshape(3, 4)
        assert popcount(values, 8).shape == (3, 4)

    def test_leading_bit_position(self):
        np.testing.assert_array_equal(
            leading_bit_position(np.array([0, 1, 2, 5, 0x8000]), 16), [-1, 0, 1, 2, 15]
        )

    def test_trailing_bit_position(self):
        np.testing.assert_array_equal(
            trailing_bit_position(np.array([0, 1, 2, 12]), 16), [16, 0, 1, 2]
        )
