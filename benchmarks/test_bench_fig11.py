"""Benchmark: regenerate Figure 11 (energy efficiency relative to DaDN)."""


def test_bench_fig11(report):
    result = report("fig11")
    geo = {key.split(":")[1]: value for key, value in result.metadata.items() if key.startswith("geomean:")}
    # Paper: PRA-4b's power overhead cancels its speedup (~0.95x); PRA-2b is ~1.28x
    # and the column-synchronized PRA-2b-1R is the most efficient (~1.48x).
    assert geo["PRA-4b"] < geo["PRA-2b"] < geo["PRA-2b-1R"]
    assert 0.7 <= geo["PRA-4b"] <= 1.2
    assert 1.0 <= geo["PRA-2b"] <= 1.7
    assert 1.1 <= geo["PRA-2b-1R"] <= 2.0
    assert geo["Stripes"] > 1.0
