"""Unit tests for the reference convolution."""

import numpy as np
import pytest

from repro.nn.layers import ConvLayerSpec
from repro.nn.reference import check_shapes, conv2d_reference, pad_input, relu


def test_pad_input_adds_zero_border():
    neurons = np.ones((2, 3, 3), dtype=np.int64)
    padded = pad_input(neurons, 1)
    assert padded.shape == (2, 5, 5)
    assert padded[:, 0, :].sum() == 0
    assert padded[:, 1:-1, 1:-1].sum() == neurons.sum()


def test_pad_input_zero_padding_is_identity():
    neurons = np.arange(8).reshape(2, 2, 2)
    assert pad_input(neurons, 0) is neurons


def test_pad_input_rejects_negative():
    with pytest.raises(ValueError):
        pad_input(np.zeros((1, 2, 2)), -1)


def test_relu_clamps_negatives():
    np.testing.assert_array_equal(relu(np.array([-2, 0, 3])), [0, 0, 3])


def test_check_shapes_rejects_mismatches(tiny_layer, rng):
    neurons = rng.integers(0, 4, size=(tiny_layer.input_channels, 5, 5))
    synapses = rng.integers(-2, 2, size=(tiny_layer.num_filters, tiny_layer.input_channels, 3, 3))
    with pytest.raises(ValueError):
        check_shapes(tiny_layer, neurons, synapses)


def test_single_pixel_identity_convolution():
    layer = ConvLayerSpec("one", 1, 1, 1, 1, 1, 1)
    neurons = np.array([[[7]]], dtype=np.int64)
    synapses = np.array([[[[3]]]], dtype=np.int64)
    out = conv2d_reference(layer, neurons, synapses)
    assert out.shape == (1, 1, 1)
    assert out[0, 0, 0] == 21


def test_known_3x3_convolution():
    layer = ConvLayerSpec("k", 1, 3, 3, 1, 3, 3)
    neurons = np.arange(9, dtype=np.int64).reshape(1, 3, 3)
    synapses = np.ones((1, 1, 3, 3), dtype=np.int64)
    out = conv2d_reference(layer, neurons, synapses)
    assert out[0, 0, 0] == neurons.sum()


def test_stride_reduces_output_positions():
    layer = ConvLayerSpec("s", 1, 5, 5, 1, 3, 3, stride=2)
    neurons = np.ones((1, 5, 5), dtype=np.int64)
    synapses = np.ones((1, 1, 3, 3), dtype=np.int64)
    out = conv2d_reference(layer, neurons, synapses)
    assert out.shape == (1, 2, 2)
    np.testing.assert_array_equal(out, 9)


def test_matches_scipy_correlate(tiny_layer, rng):
    from scipy import signal

    neurons = rng.integers(0, 8, size=(tiny_layer.input_channels, 6, 6)).astype(np.int64)
    synapses = rng.integers(-4, 4, size=(tiny_layer.num_filters, tiny_layer.input_channels, 3, 3)).astype(np.int64)
    ours = conv2d_reference(tiny_layer, neurons, synapses)
    padded = pad_input(neurons, tiny_layer.padding)
    for f in range(tiny_layer.num_filters):
        expected = np.zeros((tiny_layer.output_height, tiny_layer.output_width))
        for c in range(tiny_layer.input_channels):
            expected += signal.correlate2d(padded[c], synapses[f, c], mode="valid")
        np.testing.assert_array_equal(ours[f], expected)


def test_output_dtype_is_int64(tiny_layer, rng):
    neurons = rng.integers(0, 4, size=(tiny_layer.input_channels, 6, 6))
    synapses = rng.integers(-2, 2, size=(tiny_layer.num_filters, tiny_layer.input_channels, 3, 3))
    assert conv2d_reference(tiny_layer, neurons, synapses).dtype == np.int64
