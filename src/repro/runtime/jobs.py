"""The job model: how an experiment run decomposes into schedulable units.

A run of ``N`` experiments becomes a two-level dependency graph:

* **simulation jobs** — one per distinct ``(network trace spec, sampling,
  config-group)`` the run needs, *deduplicated across experiments* and pruned
  against the cache.  Each simulation job populates the shared cache.
* **statistics jobs** — one per distinct ``(statistic, trace spec, samples)``
  pass a motivation experiment (Table I, Figures 2/3) needs, deduplicated and
  cache-pruned the same way.
* **experiment jobs** — one per experiment, depending on the simulation and
  statistics jobs that produce its inputs.  When an experiment job runs, its
  inputs are warm cache hits, so the job itself is cheap presentation logic.

Experiments declare their input needs through an optional module-level
``plan(preset, seed) -> list[SimulationRequest | StatisticsRequest]`` hook;
experiments without one (the analytic tables) simply have no dependencies and
parallelize at the experiment level.  ``docs/runtime.md`` documents the job
model and its cache-key scheme.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

from repro.experiments.base import Preset, get_preset
from repro.runtime.engine import SimulationRequest, StatisticsRequest
from repro.runtime.fingerprint import fingerprint, simulation_key
from repro.runtime.session import RuntimeSession

__all__ = [
    "SimulationJob",
    "StatisticsJob",
    "ExperimentJob",
    "RunPlan",
    "experiment_plan",
    "build_plan",
]


@dataclass(frozen=True)
class SimulationJob:
    """One schedulable config-group simulation (no dependencies)."""

    job_id: str
    request: SimulationRequest
    deps: tuple[str, ...] = ()


@dataclass(frozen=True)
class StatisticsJob:
    """One schedulable per-network statistics pass (no dependencies)."""

    job_id: str
    request: StatisticsRequest
    deps: tuple[str, ...] = ()


@dataclass(frozen=True)
class ExperimentJob:
    """One schedulable experiment, gated on its simulation jobs."""

    job_id: str
    experiment: str
    preset: Preset
    seed: int
    deps: tuple[str, ...] = ()


@dataclass
class RunPlan:
    """The dependency graph of one run."""

    simulations: list[SimulationJob] = field(default_factory=list)
    statistics: list[StatisticsJob] = field(default_factory=list)
    experiments: list[ExperimentJob] = field(default_factory=list)
    #: Simulation/statistics units satisfied by the cache at planning time.
    planned_hits: int = 0

    def jobs(self) -> list[SimulationJob | StatisticsJob | ExperimentJob]:
        """All jobs, dependencies before dependents."""
        return [*self.simulations, *self.statistics, *self.experiments]


def experiment_plan(
    name: str, preset: Preset, seed: int
) -> list[SimulationRequest | StatisticsRequest]:
    """The simulation/statistics requests experiment ``name`` declares, if any."""
    from repro.experiments.runner import EXPERIMENTS

    run = EXPERIMENTS[name]
    module = sys.modules[run.__module__]
    plan = getattr(module, "plan", None)
    if plan is None:
        return []
    return list(plan(preset=preset, seed=seed))


def build_plan(
    names: list[str],
    preset: str | Preset,
    seed: int,
    session: RuntimeSession,
) -> RunPlan:
    """Decompose a run into deduplicated simulation jobs plus experiment jobs.

    Config-groups requested by several experiments are merged per
    ``(trace spec, sampling)`` so shared drain tensors are computed once, and
    individual units already present in ``session.cache`` are pruned (they
    will be cache hits when the experiments run).
    """
    preset = get_preset(preset)
    plan = RunPlan()
    # (trace, sampling) fingerprint -> merged request state.
    groups: dict[str, dict] = {}
    # statistics job id -> StatisticsJob (deduplicated across experiments).
    stat_jobs: dict[str, StatisticsJob] = {}

    for name in names:
        deps: list[str] = []
        for request in experiment_plan(name, preset, seed):
            if isinstance(request, StatisticsRequest):
                stat_key = request.key()
                if session.cache.contains(stat_key, kind="statistics"):
                    plan.planned_hits += 1
                    continue
                job_id = f"stat:{stat_key}"
                stat_jobs.setdefault(job_id, StatisticsJob(job_id=job_id, request=request))
                deps.append(job_id)
                continue
            group_key = fingerprint({"trace": request.trace, "sampling": request.sampling})
            group = groups.setdefault(
                group_key,
                {"trace": request.trace, "sampling": request.sampling, "configs": {}},
            )
            needs_group = False
            for label, config in request.configs:
                unit_key = simulation_key(request.trace, request.sampling, config)
                if unit_key in group["configs"]:
                    needs_group = True  # another experiment already scheduled it
                    continue
                if session.cache.contains(unit_key):
                    plan.planned_hits += 1
                    continue
                # Label the merged unit by its content key: experiment-local
                # display labels are not unique across experiments, and the
                # sim job's results reach consumers through the cache anyway.
                group["configs"][unit_key] = (unit_key, config)
                needs_group = True
            if needs_group:
                deps.append(f"sim:{group_key}")
        plan.experiments.append(
            ExperimentJob(
                job_id=f"exp:{name}",
                experiment=name,
                preset=preset,
                seed=seed,
                deps=tuple(dict.fromkeys(deps)),
            )
        )

    plan.statistics = list(stat_jobs.values())
    for group_key, group in groups.items():
        if not group["configs"]:
            continue
        configs = tuple(group["configs"].values())
        plan.simulations.append(
            SimulationJob(
                job_id=f"sim:{group_key}",
                request=SimulationRequest(
                    trace=group["trace"], configs=configs, sampling=group["sampling"]
                ),
            )
        )
    return plan
