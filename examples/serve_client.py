#!/usr/bin/env python3
"""Serving demo: concurrent clients sharing one warm experiment server.

This example walks the serving layer (``docs/serving.md``) end to end:

1. start an ``ExperimentService`` and a TCP endpoint in-process,
2. connect two independent async clients,
3. submit a cold request and watch its lifecycle events,
4. submit **concurrent identical** requests from both clients and show they
   coalesce onto one job (``coalesced`` flags), and
5. show via the per-request ``RunStats`` counters that the warm-cache answers
   recompute nothing (``simulated 0 configs``).

Run it with::

    python examples/serve_client.py

It uses a tiny workload (AlexNet only, two pallets per layer) so the cold
pass takes seconds; drop the ``overrides`` for a full ``fast``-preset run.
"""

from __future__ import annotations

import asyncio

from repro.serve import ExperimentService, ServeClient

#: Shrink the fast preset so the demo's cold pass takes seconds.
OVERRIDES = {"networks": ["alexnet"], "max_pallets": 2, "samples_per_layer": 1500}


async def main() -> None:
    service = ExperimentService(cache_dir=None, workers=2)
    async with service:
        server = await service.serve_tcp("127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        print(f"server listening on 127.0.0.1:{port}")
        async with server:
            alice = await ServeClient.connect("127.0.0.1", port)
            bob = await ServeClient.connect("127.0.0.1", port)

            # --- cold request: pays the full simulation cost -----------------
            events: list[str] = []
            cold = await alice.run_experiment(
                "fig9",
                preset="fast",
                overrides=OVERRIDES,
                on_event=lambda payload: events.append(payload["event"]),
            )
            print(f"\ncold request:   events={events}")
            print(f"                {cold.stats.summary()}")

            # --- concurrent identical requests: coalesce onto one job -------
            warm_a, warm_b = await asyncio.gather(
                alice.run_experiment("fig9", preset="fast", overrides=OVERRIDES),
                bob.run_experiment("fig9", preset="fast", overrides=OVERRIDES),
            )
            print("\nconcurrent identical requests:")
            for name, response in (("alice", warm_a), ("bob", warm_b)):
                print(
                    f"  {name}: ticket={response.ticket} "
                    f"coalesced={response.coalesced} "
                    f"simulated={response.stats.sweep.configs_simulated} configs, "
                    f"cache {response.stats.cache.hits} hits / "
                    f"{response.stats.cache.misses} misses"
                )
            assert {warm_a.coalesced, warm_b.coalesced} == {True, False}
            assert warm_a.stats.sweep.configs_simulated == 0
            assert warm_b.stats.sweep.configs_simulated == 0

            # --- the cache also serves *different* overlapping requests -----
            sim = await bob.simulate(
                "alexnet", variants="fig9", preset="fast", overrides={"max_pallets": 2}
            )
            print(
                f"\nsimulate op (same design points): "
                f"cache {sim.stats.cache.hits} hits / {sim.stats.cache.misses} misses, "
                f"simulated {sim.stats.sweep.configs_simulated} configs"
            )

            # --- server-side totals ------------------------------------------
            stats = await alice.stats()
            queue = stats["queue"]
            print(
                f"\nserver: {queue['submitted']} submitted, "
                f"{queue['coalesced']} coalesced, {queue['completed']} executed; "
                f"session totals: {stats['stats']['sweep']['configs_simulated']} "
                f"configs simulated in {stats['cache_entries']} cache entries"
            )

            await alice.close()
            await bob.close()


if __name__ == "__main__":
    asyncio.run(main())
