"""repro — reproduction of "Bit-Pragmatic Deep Neural Network Computing" (MICRO 2017).

The package implements the Pragmatic (PRA) accelerator, the DaDianNao (DaDN) and
Stripes (STR) baselines it is evaluated against, the convolutional-layer and
activation-trace substrate the evaluation runs on, a component-level area/power
model, and an experiment harness that regenerates every table and figure of the
paper's evaluation section.

Quick start::

    from repro.experiments import runner
    report = runner.run_experiment("fig9", preset="fast")
    print(report.to_text())

See ``examples/quickstart.py`` and the README for more.
"""

from repro._version import __version__

__all__ = ["__version__"]
