"""The Pragmatic accelerator cycle simulator.

:class:`PragmaticAccelerator` ties together the substrate pieces — calibrated
activation traces, the pallet/brick tiling, the neuron memory fetch model, the
per-column drain scheduler and the synchronization schemes — into per-layer and
per-network cycle counts that are normalized against the DaDianNao baseline,
exactly the quantity the paper's Figures 9, 10 and 12 report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.config import ChipConfig, DEFAULT_CHIP
from repro.arch.memory import NeuronMemory
from repro.arch.tiling import SamplingConfig, sample_pallet_values
from repro.baselines.dadiannao import DaDianNaoModel
from repro.core.scheduling import column_sync_cycles, essential_terms, pallet_sync_cycles
from repro.core.software import SoftwareGuidance
from repro.numerics.encodings import DEFAULT_ENCODING, encoding_names
from repro.nn.traces import NetworkTrace

__all__ = [
    "PragmaticConfig",
    "LayerResult",
    "NetworkResult",
    "PragmaticAccelerator",
]

_SYNCHRONIZATIONS = ("pallet", "column")


@dataclass(frozen=True)
class PragmaticConfig:
    """Design-space point of the Pragmatic accelerator.

    Attributes
    ----------
    first_stage_bits:
        Control width ``L`` of the per-synapse first-stage shifters (0–4).
        ``4`` is the single-stage PRAsingle design.
    synchronization:
        ``"pallet"`` for per-pallet neuron lane synchronization (Section V-A4)
        or ``"column"`` for per-column synchronization with SSRs (Section V-E).
    ssr_count:
        Number of synapse set registers for column synchronization; ``None``
        models the ideal, infinitely buffered configuration.  Ignored for
        pallet synchronization.
    software_trimming:
        Whether software-provided per-layer precisions trim the neuron stream
        (Section V-F).
    chip:
        Structural chip configuration (tiles, lanes, memories).
    encoding:
        Registered oneffset encoding the lanes stream
        (:mod:`repro.numerics.encodings`); ``"positional"`` is the paper's
        representation and the pre-registry behaviour.
    label:
        Optional display label; a descriptive one is generated when omitted.
    """

    first_stage_bits: int = 2
    synchronization: str = "pallet"
    ssr_count: int | None = 1
    software_trimming: bool = True
    chip: ChipConfig = DEFAULT_CHIP
    encoding: str = DEFAULT_ENCODING
    label: str | None = None

    def __post_init__(self) -> None:
        if not 0 <= self.first_stage_bits <= 4:
            raise ValueError("first_stage_bits must be in [0, 4]")
        if self.synchronization not in _SYNCHRONIZATIONS:
            raise ValueError(
                f"synchronization must be one of {_SYNCHRONIZATIONS}, got "
                f"{self.synchronization!r}"
            )
        if self.ssr_count is not None and self.ssr_count < 1:
            raise ValueError("ssr_count must be positive or None (ideal)")
        if self.encoding not in encoding_names():
            raise ValueError(
                f"encoding must be one of {encoding_names()}, got {self.encoding!r}"
            )

    @property
    def name(self) -> str:
        """Human-readable configuration name (e.g. ``PRA-2b-1R``)."""
        if self.label:
            return self.label
        base = f"PRA-{self.first_stage_bits}b"
        if self.synchronization == "column":
            suffix = "idealR" if self.ssr_count is None else f"{self.ssr_count}R"
            base = f"{base}-{suffix}"
        if not self.software_trimming:
            base = f"{base}-fp"
        if self.encoding != DEFAULT_ENCODING:
            base = f"{base}-{self.encoding}"
        return base


@dataclass(frozen=True)
class LayerResult:
    """Cycle and term counts of one layer on one accelerator configuration."""

    layer_name: str
    cycles: float
    baseline_cycles: float
    terms: float
    baseline_terms: float

    @property
    def speedup(self) -> float:
        """Speedup over the DaDianNao baseline."""
        return self.baseline_cycles / self.cycles if self.cycles else float("inf")

    @property
    def term_reduction(self) -> float:
        """Fraction of baseline terms that remain (lower is better)."""
        return self.terms / self.baseline_terms if self.baseline_terms else 0.0


@dataclass(frozen=True)
class NetworkResult:
    """Per-layer results plus network-level aggregates."""

    network: str
    accelerator: str
    layers: tuple[LayerResult, ...]

    @property
    def cycles(self) -> float:
        return sum(layer.cycles for layer in self.layers)

    @property
    def baseline_cycles(self) -> float:
        return sum(layer.baseline_cycles for layer in self.layers)

    @property
    def speedup(self) -> float:
        """Network speedup over DaDianNao (total cycles ratio)."""
        return self.baseline_cycles / self.cycles if self.cycles else float("inf")

    @property
    def term_reduction(self) -> float:
        total_terms = sum(layer.terms for layer in self.layers)
        total_baseline = sum(layer.baseline_terms for layer in self.layers)
        return total_terms / total_baseline if total_baseline else 0.0

    def summary(self) -> str:
        """Readable multi-line summary of the per-layer and network speedups."""
        lines = [f"{self.accelerator} on {self.network}: speedup {self.speedup:.2f}x vs DaDN"]
        lines.extend(
            f"  {layer.layer_name}: {layer.speedup:.2f}x "
            f"({layer.cycles:,.0f} vs {layer.baseline_cycles:,.0f} cycles)"
            for layer in self.layers
        )
        return "\n".join(lines)


@dataclass
class PragmaticAccelerator:
    """Cycle-level simulator for a Pragmatic configuration."""

    config: PragmaticConfig = field(default_factory=PragmaticConfig)

    def __post_init__(self) -> None:
        self._baseline = DaDianNaoModel(self.config.chip)
        self._memory = NeuronMemory(self.config.chip)

    def simulate_layer(
        self,
        trace: NetworkTrace,
        layer_index: int,
        sampling: SamplingConfig = SamplingConfig(),
        guidance: SoftwareGuidance | None = None,
    ) -> LayerResult:
        """Simulate one layer and return its cycle/term counts.

        Parameters
        ----------
        trace:
            Calibrated activation trace of the network.
        layer_index:
            Which layer of the trace to simulate.
        sampling:
            Pallet sampling configuration; sampled pallets are scaled back to
            the layer's full pallet count.
        guidance:
            Software guidance override.  By default the trace's precision
            windows are used when the configuration enables trimming.
        """
        layer = trace.layer(layer_index)
        storage_bits = trace.storage_bits
        values, total_pallets = sample_pallet_values(trace, layer_index, sampling)

        if guidance is None:
            guidance = SoftwareGuidance.from_trace(
                trace, enabled=self.config.software_trimming
            )
        values = guidance.apply(values, layer_index)

        nm_cycles = self._memory.pallet_fetch_cycles(layer)
        min_step = max(1, nm_cycles)
        if self.config.synchronization == "pallet":
            per_pallet = pallet_sync_cycles(
                values,
                self.config.first_stage_bits,
                storage_bits,
                min_step_cycles=min_step,
                encoding=self.config.encoding,
            )
        else:
            per_pallet = column_sync_cycles(
                values,
                self.config.first_stage_bits,
                storage_bits,
                ssr_count=self.config.ssr_count,
                min_step_cycles=min_step,
                encoding=self.config.encoding,
            )

        passes = layer.filter_passes(self.config.chip.filters_per_cycle)
        cycles = float(per_pallet.mean()) * total_pallets * passes

        sampled_neurons = values.size
        terms_per_neuron = essential_terms(
            values, storage_bits, encoding=self.config.encoding
        ) / max(1, sampled_neurons)
        terms = terms_per_neuron * layer.macs

        return LayerResult(
            layer_name=layer.name,
            cycles=cycles,
            baseline_cycles=float(self._baseline.layer_cycles(layer)),
            terms=terms,
            baseline_terms=float(self._baseline.layer_terms(layer, storage_bits)),
        )

    def simulate_network(
        self,
        trace: NetworkTrace,
        sampling: SamplingConfig = SamplingConfig(),
        guidance: SoftwareGuidance | None = None,
    ) -> NetworkResult:
        """Simulate every convolutional layer of a traced network."""
        layers = tuple(
            self.simulate_layer(trace, index, sampling=sampling, guidance=guidance)
            for index in range(trace.network.num_layers)
        )
        return NetworkResult(
            network=trace.network.name,
            accelerator=self.config.name,
            layers=layers,
        )


def _as_array(values: np.ndarray) -> np.ndarray:
    return np.asarray(values)
