"""JSON payloads for the cycle-simulation result types.

Cache entries and exported artifacts store :class:`NetworkResult` objects as
plain JSON.  Floats survive the round trip exactly (``json`` emits shortest
round-tripping ``repr`` values), which is what lets a cache hit reproduce a
fresh simulation bit for bit (entry layout: ``docs/runtime.md``).
"""

from __future__ import annotations

from repro.core.accelerator import LayerResult, NetworkResult

__all__ = ["network_result_to_dict", "network_result_from_dict"]


def network_result_to_dict(result: NetworkResult) -> dict:
    """Render a :class:`NetworkResult` as a JSON-serializable dict."""
    return {
        "network": result.network,
        "accelerator": result.accelerator,
        "layers": [
            {
                "layer_name": layer.layer_name,
                "cycles": layer.cycles,
                "baseline_cycles": layer.baseline_cycles,
                "terms": layer.terms,
                "baseline_terms": layer.baseline_terms,
            }
            for layer in result.layers
        ],
    }


def network_result_from_dict(
    payload: dict, accelerator: str | None = None
) -> NetworkResult:
    """Rebuild a :class:`NetworkResult` from its JSON payload.

    ``accelerator`` overrides the stored display name: cache entries are keyed
    ignoring labels, so the consumer's own label is restored on load.
    """
    layers = tuple(
        LayerResult(
            layer_name=layer["layer_name"],
            cycles=float(layer["cycles"]),
            baseline_cycles=float(layer["baseline_cycles"]),
            terms=float(layer["terms"]),
            baseline_terms=float(layer["baseline_terms"]),
        )
        for layer in payload["layers"]
    )
    return NetworkResult(
        network=payload["network"],
        accelerator=accelerator if accelerator is not None else payload["accelerator"],
        layers=layers,
    )
