"""Figure 11 — energy efficiency relative to DaDianNao."""

from __future__ import annotations

from repro.analysis.speedup import geometric_mean, stripes_result
from repro.analysis.tables import format_ratio
from repro.core.variants import column_variant, pallet_variant
from repro.core.sweep import sweep_network
from repro.energy.efficiency import design_efficiency
from repro.experiments.base import ExperimentResult, Preset, get_preset
from repro.nn.calibration import calibrated_trace
from repro.nn.networks import get_network

__all__ = ["run", "PAPER_GEOMEANS"]

#: Average efficiencies the paper reports: Stripes +16%, PRA-4b −5%, PRA-2b +28%,
#: PRA-2b-1R +48%.
PAPER_GEOMEANS: dict[str, float] = {
    "Stripes": 1.16,
    "PRA-4b": 0.95,
    "PRA-2b": 1.28,
    "PRA-2b-1R": 1.48,
}


def run(preset: str | Preset = "fast", seed: int = 0) -> ExperimentResult:
    """Reproduce Figure 11: relative energy efficiency of the headline designs."""
    config = get_preset(preset)
    pragmatic_designs = {
        "PRA-4b": pallet_variant(4),
        "PRA-2b": pallet_variant(2),
        "PRA-2b-1R": column_variant(1),
    }
    engine_names = ["Stripes", *pragmatic_designs.keys()]
    headers = ["network", *engine_names]
    rows: list[list[object]] = []
    metadata: dict[str, float] = {}
    efficiencies: dict[str, list[float]] = {name: [] for name in engine_names}

    for name in config.networks:
        network = get_network(name)
        trace = calibrated_trace(network, seed=seed)
        results = sweep_network(trace, pragmatic_designs, sampling=config.sampling())
        row: list[object] = [network.name]
        stripes = design_efficiency("stripes", stripes_result(trace))
        row.append(format_ratio(stripes.efficiency))
        efficiencies["Stripes"].append(stripes.efficiency)
        metadata[f"{network.name}:Stripes"] = stripes.efficiency
        for label, design in pragmatic_designs.items():
            entry = design_efficiency(design, results[label])
            row.append(format_ratio(entry.efficiency))
            efficiencies[label].append(entry.efficiency)
            metadata[f"{network.name}:{label}"] = entry.efficiency
        rows.append(row)

    geomeans = {name: geometric_mean(values) for name, values in efficiencies.items()}
    rows.append(["geomean", *[format_ratio(geomeans[name]) for name in engine_names]])
    for name, value in geomeans.items():
        metadata[f"geomean:{name}"] = value
    notes = (
        "Efficiency is E_DaDN / E_design = speedup / chip-power ratio.  Paper averages:\n"
        "Stripes 1.16x, PRA-4b 0.95x, PRA-2b 1.28x, PRA-2b-1R 1.48x."
    )
    return ExperimentResult(
        experiment="fig11",
        title="Figure 11: energy efficiency relative to DaDianNao",
        headers=headers,
        rows=rows,
        notes=notes,
        metadata=metadata,
    )
