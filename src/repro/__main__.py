"""``python -m repro`` — command-line entry points.

``python -m repro serve ...`` starts the async serving front-end
(:mod:`repro.serve.cli`); ``python -m repro cluster ...`` starts the sharded
multi-worker coordinator (:mod:`repro.cluster.cli`); ``python -m repro
cacheserve ...`` starts the standalone network cache server
(:mod:`repro.cachenet.cli`); ``python -m repro loadgen ...`` drives sustained
traffic against serve/cluster and gates the perf trajectory
(:mod:`repro.loadgen.cli`); anything else is the batch experiment runner CLI
(:mod:`repro.experiments.runner`).
"""

import sys


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "serve":
        from repro.serve.cli import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "cluster":
        from repro.cluster.cli import main as cluster_main

        return cluster_main(argv[1:])
    if argv and argv[0] == "cacheserve":
        from repro.cachenet.cli import main as cacheserve_main

        return cacheserve_main(argv[1:])
    if argv and argv[0] == "loadgen":
        from repro.loadgen.cli import main as loadgen_main

        return loadgen_main(argv[1:])
    from repro.experiments.runner import main as runner_main

    return runner_main(argv)


if __name__ == "__main__":
    raise SystemExit(main())
