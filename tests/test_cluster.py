"""Tests for repro.cluster: routing, wire codec, worker mode, coordinator.

The end-to-end tests run a real coordinator against *in-process* worker
services connected over loopback TCP — separate ``WorkerService`` instances
with separate sessions sharing one ``SharedDirectoryBackend`` directory, the
exact topology of a local cluster minus the subprocess spawn (which
``python -m repro cluster --selftest`` exercises in CI with real worker
processes and a real mid-run kill).
"""

import asyncio
import json

import pytest

from repro.cluster import (
    ClusterService,
    SimulationJobRequest,
    StatisticsJobRequest,
    WorkerService,
    parse_internal_request,
    rendezvous_owner,
    rendezvous_rank,
    worker_session,
)
from repro.cluster.plan import (
    simulation_request_from_wire,
    simulation_request_to_wire,
    statistics_request_from_wire,
    statistics_request_to_wire,
)
from repro.core.variants import fig9_variants
from repro.experiments.base import get_preset
from repro.runtime import SimulationRequest, StatisticsRequest, TraceSpec
from repro.serve.protocol import ExperimentRequest, ProtocolError
from repro.serve.service import ConnectionContext

#: Tiny fast-preset override so cluster simulations take seconds.
TINY = {"networks": ["alexnet"], "max_pallets": 2, "samples_per_layer": 1500}

TOKEN = "cluster-test-token"


def run(coro):
    return asyncio.run(coro)


# ------------------------------------------------------------------- rendezvous
class TestRendezvousHashing:
    def test_deterministic_and_complete(self):
        members = [f"w{i}" for i in range(5)]
        ranked = rendezvous_rank("some-content-key", members)
        assert sorted(ranked) == sorted(members)
        assert ranked == rendezvous_rank("some-content-key", members)
        assert rendezvous_owner("some-content-key", members) == ranked[0]

    def test_distributes_keys(self):
        members = ["w0", "w1", "w2"]
        owners = {rendezvous_owner(f"key-{i}", members) for i in range(64)}
        assert owners == set(members)  # every worker owns something

    def test_minimal_disruption_on_member_loss(self):
        """Removing one member only moves the keys that member owned."""
        members = ["w0", "w1", "w2", "w3"]
        keys = [f"key-{i}" for i in range(128)]
        before = {key: rendezvous_owner(key, members) for key in keys}
        survivors = [m for m in members if m != "w1"]
        for key in keys:
            after = rendezvous_owner(key, survivors)
            if before[key] != "w1":
                assert after == before[key]  # unaffected keys keep their shard
            else:
                assert after in survivors

    def test_empty_membership_rejected(self):
        with pytest.raises(ValueError):
            rendezvous_owner("key", [])


# ------------------------------------------------------------------- wire codec
class TestPlanWireCodec:
    def _simulation_request(self):
        preset = get_preset("smoke")
        return SimulationRequest(
            trace=TraceSpec(network="alexnet", precisions=(9, 8, 5)),
            configs=tuple(fig9_variants().items()),
            sampling=preset.sampling(),
        )

    def test_simulation_round_trip_preserves_cache_keys(self):
        request = self._simulation_request()
        wire = json.loads(json.dumps(simulation_request_to_wire(request)))
        rebuilt = simulation_request_from_wire(wire)
        assert rebuilt == request
        assert rebuilt.keys() == request.keys()  # byte-identical fingerprints

    def test_encoding_round_trips_and_defaults(self):
        """Non-default encodings survive the wire; old wire payloads that
        predate the field decode as positional."""
        from repro.core.variants import encoding_variants

        preset = get_preset("smoke")
        request = SimulationRequest(
            trace=TraceSpec(network="alexnet"),
            configs=tuple(encoding_variants().items()),
            sampling=preset.sampling(),
        )
        wire = json.loads(json.dumps(simulation_request_to_wire(request)))
        rebuilt = simulation_request_from_wire(wire)
        assert rebuilt == request
        assert rebuilt.keys() == request.keys()
        assert [config.encoding for _, config in rebuilt.configs] == [
            name for name, _ in request.configs
        ]
        # A pre-encoding wire dict (no "encoding" key) decodes to positional.
        legacy = json.loads(json.dumps(simulation_request_to_wire(request)))
        for _, config_wire in legacy["configs"]:
            config_wire.pop("encoding")
        from_legacy = simulation_request_from_wire(legacy)
        assert all(c.encoding == "positional" for _, c in from_legacy.configs)

    def test_statistics_round_trip(self):
        request = StatisticsRequest(
            statistic="fig2_terms",
            trace=TraceSpec(network="vgg_m", seed=3),
            samples_per_layer=1234,
        )
        wire = json.loads(json.dumps(statistics_request_to_wire(request)))
        rebuilt = statistics_request_from_wire(wire)
        assert rebuilt == request
        assert rebuilt.key() == request.key()

    def test_internal_requests_have_stable_keys(self):
        request = self._simulation_request()
        a = SimulationJobRequest(request)
        b = SimulationJobRequest(simulation_request_from_wire(
            simulation_request_to_wire(request)
        ))
        assert a.key() == b.key()
        assert "alexnet" in a.describe()

    def test_parse_internal_request(self):
        request = self._simulation_request()
        parsed = parse_internal_request(SimulationJobRequest(request).to_message())
        assert isinstance(parsed, SimulationJobRequest)
        assert parsed.request == request
        stat = StatisticsRequest(statistic="fig3_terms", trace=TraceSpec(network="alexnet"))
        parsed = parse_internal_request(StatisticsJobRequest(stat).to_message())
        assert isinstance(parsed, StatisticsJobRequest)

    def test_parse_rejects_malformed(self):
        with pytest.raises(ProtocolError):
            parse_internal_request({"op": "sim_job"})  # no request object
        with pytest.raises(ProtocolError):
            parse_internal_request({"op": "sim_job", "request": {"trace": {}}})
        with pytest.raises(ProtocolError):
            parse_internal_request({"op": "unknown_job", "request": {}})
        with pytest.raises(ProtocolError):
            parse_internal_request(
                {
                    "op": "stat_job",
                    "request": statistics_request_to_wire(
                        StatisticsRequest(
                            statistic="no_such_statistic",
                            trace=TraceSpec(network="alexnet"),
                        )
                    ),
                }
            )


# ------------------------------------------------------------------ worker mode
class TestWorkerService:
    def test_worker_requires_auth_token(self, tmp_path):
        with pytest.raises(ValueError):
            WorkerService(session=worker_session(tmp_path))

    def test_internal_ops_gated_on_registration(self, tmp_path):
        async def scenario():
            service = WorkerService(
                session=worker_session(tmp_path), workers=1, auth_token=TOKEN
            )
            sent = []
            context = ConnectionContext(authenticated=True)  # authed, unregistered
            message = SimulationJobRequest(
                SimulationRequest(
                    trace=TraceSpec(network="alexnet"),
                    configs=tuple(fig9_variants().items()),
                )
            ).to_message()
            await service.handle_message(message, sent.append, context=context)
            assert "registered coordinator" in sent[-1]["error"]
            # Registration unlocks the op (and reports identity).
            await service.handle_message({"op": "register"}, sent.append, context=context)
            assert sent[-1]["event"] == "registered"
            assert context.registered
            await service.stop()

        run(scenario())

    def test_unauthenticated_connection_rejected_before_queue(self, tmp_path):
        async def scenario():
            service = WorkerService(
                session=worker_session(tmp_path), workers=1, auth_token=TOKEN
            )
            sent = []
            context = ConnectionContext(authenticated=False)
            keep = await service.handle_message(
                {"op": "run_experiment", "experiment": "fig9"}, sent.append,
                context=context,
            )
            assert keep is False  # connection closed
            assert sent[-1]["error"] == "authentication required"
            assert service.queue.submitted == 0  # nothing reached the queue
            # Wrong token also closes.
            keep = await service.handle_message(
                {"op": "auth", "token": "wrong"}, sent.append,
                context=ConnectionContext(authenticated=False),
            )
            assert keep is False
            # The right token authenticates.
            context = ConnectionContext(authenticated=False)
            keep = await service.handle_message(
                {"op": "auth", "token": TOKEN}, sent.append, context=context
            )
            assert keep is True and context.authenticated
            await service.stop()

        run(scenario())


# ------------------------------------------------------------------ end to end
class _Cluster:
    """A coordinator plus N in-process workers over loopback TCP."""

    def __init__(self, cache_dir, workers=2):
        self.cache_dir = cache_dir
        self.worker_count = workers
        self.workers = []
        self.servers = []
        self.coordinator = None

    async def __aenter__(self):
        endpoints = []
        for _ in range(self.worker_count):
            service = WorkerService(
                session=worker_session(self.cache_dir), workers=2, auth_token=TOKEN
            )
            server = await service.serve_tcp("127.0.0.1", 0)
            endpoints.append(("127.0.0.1", server.sockets[0].getsockname()[1]))
            self.workers.append(service)
            self.servers.append(server)
        self.coordinator = ClusterService(
            spawn_workers=0,
            connect=endpoints,
            cache_dir=self.cache_dir,
            worker_token=TOKEN,
        )
        await self.coordinator.start()
        return self

    async def __aexit__(self, *exc_info):
        await self.coordinator.stop()
        for server in self.servers:
            server.close()
            await server.wait_closed()
        for worker in self.workers:
            await worker.stop()


class TestClusterExecution:
    def test_sharded_experiment_exactly_once_and_warm_rerun(self, tmp_path):
        async def scenario():
            async with _Cluster(tmp_path / "cache") as cluster:
                coordinator = cluster.coordinator
                request = ExperimentRequest(
                    experiment="fig9",
                    overrides=(("max_pallets", 2), ("networks", ("alexnet",)),
                               ("samples_per_layer", 1500)),
                )
                ticket = await coordinator.submit(request)
                response = await coordinator.wait(ticket)
                assert response["event"] == "done", response.get("error")
                planned = response["result"]["cluster"]["planned_units"]
                assert planned == 5  # the fig9 design points of one network
                assert response["stats"]["sweep"]["configs_simulated"] == planned
                assert response["result"]["experiment"]["rows"]
                # Warm rerun: planner prunes everything, nothing re-simulates
                # anywhere in the cluster.
                ticket = await coordinator.submit(request)
                warm = await coordinator.wait(ticket)
                assert warm["event"] == "done"
                assert warm["result"]["cluster"]["planned_units"] == 0
                assert warm["stats"]["sweep"]["configs_simulated"] == 0
                assert warm["result"]["experiment"] == response["result"]["experiment"]

        run(scenario())

    def test_cross_client_flight_coalescing(self, tmp_path):
        """Overlapping requests from different clients share flights."""

        async def scenario():
            async with _Cluster(tmp_path / "cache") as cluster:
                coordinator = cluster.coordinator
                narrow = ExperimentRequest(
                    experiment="fig9",
                    overrides=(("max_pallets", 2), ("networks", ("alexnet",)),
                               ("samples_per_layer", 1500)),
                )
                wide = ExperimentRequest(
                    experiment="fig9",
                    overrides=(("max_pallets", 2),
                               ("networks", ("alexnet", "vgg_m")),
                               ("samples_per_layer", 1500)),
                )
                assert narrow.key() != wide.key()  # distinct client requests
                tickets = await asyncio.gather(
                    coordinator.submit(narrow), coordinator.submit(wide)
                )
                responses = await asyncio.gather(
                    *(coordinator.wait(t) for t in tickets)
                )
                assert all(r["event"] == "done" for r in responses)
                # The alexnet unit flight is shared: the cluster dispatched
                # fewer flights than the two requests would need in isolation.
                assert coordinator.flights_coalesced >= 1
                # Exactly once cluster-wide: 5 alexnet + 5 vgg_m units, even
                # though alexnet units were planned by both requests.
                total = sum(
                    r["stats"]["sweep"]["configs_simulated"] for r in responses
                )
                assert total == 10

        run(scenario())

    def test_worker_death_requeues_onto_survivor(self, tmp_path):
        async def scenario():
            async with _Cluster(tmp_path / "cache") as cluster:
                coordinator = cluster.coordinator
                request = ExperimentRequest(
                    experiment="fig9",
                    seed=7,  # fresh trace spec: cold even if other tests ran
                    overrides=(("max_pallets", 2), ("networks", ("alexnet",)),
                               ("samples_per_layer", 1500)),
                )
                killed = []

                def on_progress(ticket, payload):
                    worker_id = payload.get("worker")
                    link = coordinator.links.get(worker_id)
                    if not killed and link is not None:
                        killed.append(worker_id)
                        # Dropping the link is exactly what a worker crash
                        # looks like from the coordinator's side.
                        asyncio.ensure_future(link.client.close())

                ticket = await coordinator.submit(request, on_progress=on_progress)
                response = await coordinator.wait(ticket)
                assert killed, "no progress event ever identified a worker"
                assert response["event"] == "done", response.get("error")
                assert coordinator.flights_requeued >= 1
                assert response["result"]["experiment"]["rows"]
                stats = coordinator.stats()
                assert stats["cluster"]["workers_lost"] == 1
                assert stats["cluster"]["flights_requeued"] >= 1

        run(scenario())

    def test_streamed_cancellation_reaches_the_worker(self, tmp_path):
        async def scenario():
            async with _Cluster(tmp_path / "cache") as cluster:
                coordinator = cluster.coordinator
                request = ExperimentRequest(
                    experiment="fig10",
                    seed=11,
                    overrides=(("max_pallets", 2), ("networks", ("alexnet",)),
                               ("samples_per_layer", 1500)),
                )
                events = []
                cancelled = []

                def on_event(ticket, event):
                    events.append(event)

                def on_progress(ticket, payload):
                    if not cancelled:
                        cancelled.append(True)
                        coordinator.cancel(ticket.ticket_id)

                ticket = await coordinator.submit(
                    request, on_event=on_event, on_progress=on_progress
                )
                await ticket.job.done.wait()
                assert cancelled, "no progress to cancel on"
                assert ticket.state == "cancelled"
                # The worker-side job must actually unwind: the coordinator's
                # flight table drains instead of leaking a running flight.
                async def no_flights():
                    while coordinator._flights:
                        await asyncio.sleep(0.05)

                await asyncio.wait_for(no_flights(), timeout=30)
                # And the cluster still serves: a follow-up request lands.
                follow_up = await coordinator.submit(
                    ExperimentRequest(experiment="table3", preset="smoke")
                )
                done = await coordinator.wait(follow_up)
                assert done["event"] == "done"

        run(scenario())

    def test_cluster_stats_merge_fleet_distinct(self, tmp_path):
        async def scenario():
            async with _Cluster(tmp_path / "cache") as cluster:
                coordinator = cluster.coordinator
                request = ExperimentRequest(
                    experiment="fig9",
                    overrides=(("max_pallets", 2), ("networks", ("alexnet",)),
                               ("samples_per_layer", 1500)),
                )
                ticket = await coordinator.submit(request)
                response = await coordinator.wait(ticket)
                assert response["event"] == "done"
                # Worker-side compute is forwarded: the response's cluster
                # section sums the execution_seconds its flights reported.
                assert response["result"]["cluster"]["worker_execution_seconds"] > 0
                payload = await coordinator.cluster_stats()
                cluster_section = payload["cluster"]
                assert len(cluster_section["workers"]) == 2
                assert cluster_section["flights_dispatched"] >= 2
                # Cluster-wide coalescing effectiveness (the stats satellite):
                # one isolated request joins every flight fresh.
                coalescing = cluster_section["coalescing"]
                assert coalescing["flights_executed"] == cluster_section["flights_dispatched"]
                assert coalescing["flight_joins"] >= coalescing["flights_executed"]
                assert 0.0 <= coalescing["hit_rate"] <= 1.0
                fleet = cluster_section["fleet"]
                # The fleet section saw the simulations the workers ran.
                assert fleet["sweep"]["configs_simulated"] == 5
                per_worker = cluster_section["per_worker_stats"]
                assert set(per_worker) <= {"w0", "w1", "c0", "c1"}

        run(scenario())

    def test_no_live_workers_fails_cleanly(self, tmp_path):
        async def scenario():
            async with _Cluster(tmp_path / "cache", workers=1) as cluster:
                coordinator = cluster.coordinator
                for link in coordinator.links.values():
                    await link.client.close()
                ticket = await coordinator.submit(
                    ExperimentRequest(experiment="table3", preset="smoke")
                )
                response = await coordinator.wait(ticket)
                assert response["event"] == "failed"
                assert "no live workers" in response["error"]

        run(scenario())
