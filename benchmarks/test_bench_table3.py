"""Benchmark: regenerate Table III (area and power, pallet synchronization)."""

import pytest

from repro.experiments.table3 import PAPER_TABLE3


def test_bench_table3(report):
    result = report("table3")
    for design, (unit, _, power) in PAPER_TABLE3.items():
        assert result.metadata[f"{design}:unit_mm2"] == pytest.approx(unit, rel=0.05)
        assert result.metadata[f"{design}:chip_w"] == pytest.approx(power, rel=0.05)
    # Area and power grow monotonically with the first-stage shifter width.
    units = [result.metadata[f"PRA-{bits}b:unit_mm2"] for bits in range(5)]
    assert units == sorted(units)
