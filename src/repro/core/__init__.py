"""Pragmatic core: oneffset generation, PIPs, scheduling, and the cycle simulator."""

from repro.core.accelerator import (
    LayerResult,
    NetworkResult,
    PragmaticAccelerator,
    PragmaticConfig,
)
from repro.core.dispatcher import DispatchStep, Dispatcher
from repro.core.kernels import (
    batched_drain_cycles,
    drain_backend,
    pack_bit_planes,
    pack_drain_masks,
    packed_essential_terms,
)
from repro.core.oneffset_generator import NeuronLaneState, OneffsetGenerator
from repro.core.pip import PragmaticInnerProductUnit, PragmaticTileFunctional
from repro.core.progress import ProgressToken, SweepCancelled
from repro.core.scheduling import (
    column_drain_cycles,
    column_sync_cycles,
    encoded_drain_masks,
    essential_terms,
    pallet_sync_cycles,
    ssr_pipeline_cycles,
    step_drain_cycles,
)
from repro.core.software import SoftwareGuidance
from repro.core.sweep import cycles_from_drain, sweep_network
from repro.core.variants import (
    FIG9_FIRST_STAGE_BITS,
    FIG10_SSR_COUNTS,
    column_variant,
    encoding_variant,
    encoding_variants,
    fig9_variants,
    fig10_variants,
    fig12_variants,
    pallet_variant,
    paper_variants,
    single_stage_variant,
)

__all__ = [
    "PragmaticConfig",
    "PragmaticAccelerator",
    "LayerResult",
    "NetworkResult",
    "OneffsetGenerator",
    "NeuronLaneState",
    "Dispatcher",
    "DispatchStep",
    "PragmaticInnerProductUnit",
    "PragmaticTileFunctional",
    "SoftwareGuidance",
    "column_drain_cycles",
    "step_drain_cycles",
    "pallet_sync_cycles",
    "column_sync_cycles",
    "ssr_pipeline_cycles",
    "essential_terms",
    "encoded_drain_masks",
    "batched_drain_cycles",
    "pack_drain_masks",
    "pack_bit_planes",
    "packed_essential_terms",
    "drain_backend",
    "ProgressToken",
    "SweepCancelled",
    "sweep_network",
    "cycles_from_drain",
    "pallet_variant",
    "column_variant",
    "single_stage_variant",
    "encoding_variant",
    "encoding_variants",
    "fig9_variants",
    "fig10_variants",
    "fig12_variants",
    "paper_variants",
    "FIG9_FIRST_STAGE_BITS",
    "FIG10_SSR_COUNTS",
]
