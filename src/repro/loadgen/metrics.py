"""Latency recording with bounded relative error (HDR-histogram style).

Recording a raw float per request would make long soak runs cost O(requests)
memory and percentile extraction O(n log n).  :class:`LatencyHistogram`
instead quantizes each sample into geometric buckets — bucket ``i`` covers
``[MIN * g^i, MIN * g^(i+1))`` with growth factor ``g`` — so memory is
O(distinct magnitudes) and any percentile is reconstructed to within the
configured relative ``precision`` (default 2%), the same trade HDR histograms
make.  Exact ``min``/``max``/``mean`` are tracked on the side.
``docs/loadgen.md`` defines every metric the reports derive from this.
"""

from __future__ import annotations

import math

__all__ = ["LatencyHistogram"]

#: Smallest representable latency (one microsecond); samples clamp to it.
_MIN_SECONDS = 1e-6


class LatencyHistogram:
    """Geometric-bucket latency histogram with percentile extraction.

    ``precision`` bounds the relative error of reconstructed percentiles:
    0.02 means any reported quantile is within 2% of the true sample value.
    """

    def __init__(self, precision: float = 0.02) -> None:
        if not 0.0 < precision < 1.0:
            raise ValueError("precision must be within (0, 1)")
        self.precision = precision
        self._growth = 1.0 + 2.0 * precision  # bucket midpoint error <= precision
        self._log_growth = math.log(self._growth)
        self._buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    # ------------------------------------------------------------------ record
    def record(self, seconds: float) -> None:
        """Record one latency sample (non-finite and negative are rejected)."""
        if not isinstance(seconds, (int, float)) or not math.isfinite(seconds):
            raise ValueError(f"latency sample must be a finite number, got {seconds!r}")
        seconds = max(float(seconds), _MIN_SECONDS)
        index = int(math.log(seconds / _MIN_SECONDS) / self._log_growth)
        self._buckets[index] = self._buckets.get(index, 0) + 1
        self.count += 1
        self.total += seconds
        self.min = seconds if self.min is None else min(self.min, seconds)
        self.max = seconds if self.max is None else max(self.max, seconds)

    def merge(self, other: "LatencyHistogram") -> None:
        """Accumulate another histogram recorded with the same precision."""
        if other.precision != self.precision:
            raise ValueError("cannot merge histograms of different precision")
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        self.count += other.count
        self.total += other.total
        for bound in (other.min, other.max):
            if bound is None:
                continue
            self.min = bound if self.min is None else min(self.min, bound)
            self.max = bound if self.max is None else max(self.max, bound)

    # -------------------------------------------------------------- percentiles
    def percentile(self, p: float) -> float | None:
        """The ``p``-th percentile (0..100) of the recorded samples.

        Uses the nearest-rank definition over bucket midpoints, clamped to
        the exact observed ``min``/``max``; ``None`` while empty.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be within [0, 100]")
        if self.count == 0:
            return None
        rank = max(1, math.ceil(self.count * p / 100.0))
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                midpoint = _MIN_SECONDS * self._growth ** (index + 0.5)
                return min(max(midpoint, self.min), self.max)
        return self.max  # pragma: no cover - rank <= count guarantees the loop hits

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def summary(self) -> dict:
        """The JSON-ready percentile block every loadgen report embeds."""
        return {
            "count": self.count,
            "mean_seconds": round(self.mean, 6) if self.count else None,
            "min_seconds": round(self.min, 6) if self.count else None,
            "max_seconds": round(self.max, 6) if self.count else None,
            "p50_seconds": round(self.percentile(50), 6) if self.count else None,
            "p95_seconds": round(self.percentile(95), 6) if self.count else None,
            "p99_seconds": round(self.percentile(99), 6) if self.count else None,
        }
