"""DNN substrate: layer geometry, network inventories, precisions and traces."""

from repro.nn.calibration import (
    REPRESENTATIONS,
    TABLE1_TARGETS,
    NetworkCalibration,
    calibrate_network,
    calibrated_trace,
    storage_bits_for,
)
from repro.nn.layers import BRICK_SIZE, PALLET_WINDOWS, ConvLayerSpec
from repro.nn.networks import NETWORK_NAMES, Network, all_networks, get_network, list_networks
from repro.nn.precision import (
    DEFAULT_SUFFIX_BITS,
    TABLE2_PRECISIONS,
    LayerPrecision,
    precision_profile,
    profile_from_values,
    table2_precisions,
)
from repro.nn.reference import conv2d_reference, pad_input, relu
from repro.nn.traces import (
    LayerTraceParams,
    NetworkTrace,
    generate_layer_values,
    generate_synapses,
)

__all__ = [
    "ConvLayerSpec",
    "BRICK_SIZE",
    "PALLET_WINDOWS",
    "Network",
    "NETWORK_NAMES",
    "get_network",
    "list_networks",
    "all_networks",
    "LayerPrecision",
    "TABLE2_PRECISIONS",
    "table2_precisions",
    "precision_profile",
    "profile_from_values",
    "DEFAULT_SUFFIX_BITS",
    "conv2d_reference",
    "pad_input",
    "relu",
    "LayerTraceParams",
    "NetworkTrace",
    "generate_layer_values",
    "generate_synapses",
    "NetworkCalibration",
    "calibrate_network",
    "calibrated_trace",
    "TABLE1_TARGETS",
    "REPRESENTATIONS",
    "storage_bits_for",
]
