"""Typed requests and the line-delimited JSON wire format of ``repro serve``.

Every message on the wire is one JSON object per ``\\n``-terminated line.
Client → server messages carry an ``op`` plus op-specific fields and an
optional correlation ``id`` the server echoes back on every event for that
request.  Server → client messages carry an ``event`` (``queued``,
``running``, ``done``, ``failed``, ``cancelled`` for job lifecycles; single
shot events for control ops).  A job op may set ``"stream": true`` to
additionally receive incremental ``progress`` events (per-layer/per-network/
per-experiment reports under a ``"progress"`` key) while the job runs; the
flag affects delivery only and never enters a request's deduplication key,
so streamed and unstreamed twins still coalesce.  A job op may also carry a
``"priority"`` integer (default 0): queued jobs execute highest-priority
first, FIFO within a level, and like ``stream`` the field never enters the
deduplication key — a coalescing ticket with a higher priority simply raises
the pending job's priority.

The job-submitting ops parse into frozen dataclasses — the *typed* form the
queue, the workers and the in-process API all share — and each request type
knows its deduplication key, built on the runtime's content fingerprints so
identical in-flight requests coalesce onto one job.  ``docs/serving.md``
documents the protocol with examples.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass

from repro.experiments.base import PRESETS, Preset, get_preset
from repro.runtime import SimulationRequest, TraceSpec, fingerprint

__all__ = [
    "ProtocolError",
    "ExperimentRequest",
    "RunAllRequest",
    "SimulateRequest",
    "ServeRequest",
    "parse_request",
    "encode",
    "decode",
    "JOB_OPS",
    "CONTROL_OPS",
]

#: Ops that enqueue work (parsed into typed requests).
JOB_OPS = ("run_experiment", "run_all", "simulate")

#: Ops answered immediately by the service (``gc`` garbage-collects the
#: shared disk cache: optional ``max_bytes``/``max_age`` bounds, LRU-first;
#: ``auth`` presents the shared secret of a token-protected server — on such
#: a server it must be the connection's first message).
CONTROL_OPS = ("status", "cancel", "stats", "gc", "list", "ping", "auth", "shutdown")

#: Preset fields a request may override.
_OVERRIDE_FIELDS = ("networks", "samples_per_layer", "max_pallets")


class ProtocolError(ValueError):
    """A malformed or unsupported protocol message."""


def _normalize_overrides(overrides: object) -> tuple[tuple[str, object], ...]:
    """Validate and canonicalize a JSON ``overrides`` object."""
    if overrides is None:
        return ()
    if not isinstance(overrides, dict):
        raise ProtocolError("overrides must be an object of preset fields")
    items: list[tuple[str, object]] = []
    for key in sorted(overrides):
        value = overrides[key]
        if key not in _OVERRIDE_FIELDS:
            raise ProtocolError(
                f"unknown preset override {key!r}; allowed: {', '.join(_OVERRIDE_FIELDS)}"
            )
        if key == "networks":
            if not isinstance(value, (list, tuple)) or not all(
                isinstance(item, str) for item in value
            ):
                raise ProtocolError("networks override must be a list of names")
            items.append((key, tuple(value)))
        else:
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ProtocolError(f"{key} override must be a positive integer")
            items.append((key, value))
    return tuple(items)


def _resolve_preset(preset: str, overrides: tuple[tuple[str, object], ...]) -> Preset:
    """The effective :class:`Preset` of a request (name kept for display)."""
    base = get_preset(preset)
    if not overrides:
        return base
    return dataclasses.replace(base, name=f"{base.name}+overrides", **dict(overrides))


def _preset_content(preset: Preset) -> Preset:
    """The preset stripped of its display name (names never affect results)."""
    return dataclasses.replace(preset, name="")


@dataclass(frozen=True)
class ExperimentRequest:
    """Run one experiment: ``{"op": "run_experiment", "experiment": "fig9", ...}``."""

    experiment: str
    preset: str = "fast"
    seed: int = 0
    overrides: tuple[tuple[str, object], ...] = ()

    op = "run_experiment"

    def resolved_preset(self) -> Preset:
        return _resolve_preset(self.preset, self.overrides)

    def key(self) -> str:
        """Content hash for in-flight deduplication (display names excluded)."""
        return fingerprint(
            {
                "op": self.op,
                "experiment": self.experiment,
                "preset": _preset_content(self.resolved_preset()),
                "seed": self.seed,
            }
        )

    def describe(self) -> str:
        return f"run_experiment {self.experiment} --preset {self.preset} --seed {self.seed}"


@dataclass(frozen=True)
class RunAllRequest:
    """Run every experiment in presentation order: ``{"op": "run_all", ...}``."""

    preset: str = "fast"
    seed: int = 0
    overrides: tuple[tuple[str, object], ...] = ()

    op = "run_all"

    def resolved_preset(self) -> Preset:
        return _resolve_preset(self.preset, self.overrides)

    def key(self) -> str:
        return fingerprint(
            {
                "op": self.op,
                "preset": _preset_content(self.resolved_preset()),
                "seed": self.seed,
            }
        )

    def describe(self) -> str:
        return f"run_all --preset {self.preset} --seed {self.seed}"


@dataclass(frozen=True)
class SimulateRequest:
    """Simulate one named variant group over one network trace.

    ``{"op": "simulate", "network": "alexnet", "variants": "fig9", ...}`` —
    the variant groups are the named design-point families of
    :mod:`repro.core.variants`.  An optional ``"encoding"`` selects a
    registered oneffset encoding (:mod:`repro.numerics.encodings`) for every
    configuration of the group; the default is the paper's ``positional``
    representation.
    """

    network: str
    variants: str = "fig9"
    representation: str = "fixed16"
    encoding: str = "positional"
    preset: str = "fast"
    seed: int = 0
    overrides: tuple[tuple[str, object], ...] = ()

    op = "simulate"

    def resolved_preset(self) -> Preset:
        return _resolve_preset(self.preset, self.overrides)

    def simulation_request(self) -> SimulationRequest:
        """The runtime simulation request this wire request resolves to."""
        from repro.core.variants import (
            encoding_variants,
            fig9_variants,
            fig10_variants,
            fig12_variants,
        )
        from repro.numerics.encodings import encoding_names

        groups = {
            "fig9": fig9_variants,
            "fig10": fig10_variants,
            "fig12": fig12_variants,
            "encodings": encoding_variants,
        }
        if self.variants not in groups:
            raise ProtocolError(
                f"unknown variant group {self.variants!r}; available: {', '.join(groups)}"
            )
        if self.encoding not in encoding_names():
            raise ProtocolError(
                f"unknown encoding {self.encoding!r}; available: "
                f"{', '.join(encoding_names())}"
            )
        configs = dict(groups[self.variants]())
        if self.encoding != "positional":
            if self.variants == "encodings":
                raise ProtocolError(
                    "the 'encodings' variant group already spans every encoding; "
                    "drop the encoding field"
                )
            configs = {
                label: dataclasses.replace(config, encoding=self.encoding)
                for label, config in configs.items()
            }
        return SimulationRequest(
            trace=TraceSpec(
                network=self.network, representation=self.representation, seed=self.seed
            ),
            configs=tuple(configs.items()),
            sampling=self.resolved_preset().sampling(),
        )

    def key(self) -> str:
        """Content hash: the runtime cache keys of the underlying simulations."""
        return fingerprint(
            {"op": self.op, "units": sorted(self.simulation_request().keys().values())}
        )

    def describe(self) -> str:
        return f"simulate {self.network} variants={self.variants} --preset {self.preset}"


ServeRequest = ExperimentRequest | RunAllRequest | SimulateRequest


def parse_request(message: dict) -> ServeRequest:
    """Parse (and validate) a job-submitting protocol message."""
    op = message.get("op")
    if op not in JOB_OPS:
        raise ProtocolError(f"unknown job op {op!r}; job ops: {', '.join(JOB_OPS)}")
    preset = message.get("preset", "fast")
    if not isinstance(preset, str) or preset not in PRESETS:
        raise ProtocolError(f"unknown preset {preset!r}; available: {', '.join(PRESETS)}")
    seed = message.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ProtocolError("seed must be an integer")
    overrides = _normalize_overrides(message.get("overrides"))

    if op == "run_experiment":
        from repro.experiments.runner import EXPERIMENTS

        experiment = message.get("experiment")
        if experiment not in EXPERIMENTS:
            raise ProtocolError(
                f"unknown experiment {experiment!r}; available: {', '.join(EXPERIMENTS)}"
            )
        return ExperimentRequest(
            experiment=experiment, preset=preset, seed=seed, overrides=overrides
        )
    if op == "run_all":
        return RunAllRequest(preset=preset, seed=seed, overrides=overrides)

    network = message.get("network")
    if not isinstance(network, str) or not network:
        raise ProtocolError("simulate requires a network name")
    encoding = message.get("encoding", "positional")
    if not isinstance(encoding, str) or not encoding:
        raise ProtocolError("encoding must be a non-empty string")
    request = SimulateRequest(
        network=network,
        variants=message.get("variants", "fig9"),
        representation=message.get("representation", "fixed16"),
        encoding=encoding,
        preset=preset,
        seed=seed,
        overrides=overrides,
    )
    request.simulation_request()  # validates variants/representation/encoding eagerly
    return request


def encode(message: dict) -> bytes:
    """One protocol message as a ``\\n``-terminated JSON line."""
    return (json.dumps(message, separators=(",", ":"), sort_keys=False) + "\n").encode(
        "utf-8"
    )


def decode(line: bytes | str) -> dict:
    """Parse one protocol line into a message dict."""
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"invalid JSON line: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError("protocol messages must be JSON objects")
    return message
