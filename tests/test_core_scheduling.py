"""Unit tests for the drain-cycle and synchronization scheduling models."""

import numpy as np
import pytest

import repro.core.scheduling
import repro.core.sweep
from repro.core.accelerator import PragmaticConfig
from repro.core.scheduling import (
    _reference_drain_cycles,
    column_drain_cycles,
    column_sync_cycles,
    essential_terms,
    pallet_sync_cycles,
    ssr_pipeline_cycles,
    step_drain_cycles,
)
from repro.core.sweep import cycles_from_drain
from repro.numerics.encoding import schedule_cycle_count
from repro.numerics.fixedpoint import bit_matrix, popcount
from repro.numerics.oneffsets import encode_oneffsets


def random_step_values(rng, pallets=3, steps=4, windows=16, neurons=16, density=0.3, bits=12):
    values = rng.integers(0, 2**bits, size=(pallets, steps, windows, neurons))
    mask = rng.random(values.shape) < (1 - density)
    values[mask] = 0
    return values


class TestColumnDrainCycles:
    def test_single_column_known_values(self):
        bits = bit_matrix(np.array([[0b1, 0b1010, 0b111]]), bits=8)
        assert column_drain_cycles(bits, first_stage_bits=4) == 3

    def test_zero_column_reports_zero(self):
        bits = bit_matrix(np.zeros((1, 16), dtype=int), bits=16)
        assert column_drain_cycles(bits, first_stage_bits=2) == 0

    def test_full_reach_equals_max_popcount(self, rng):
        values = rng.integers(0, 2**16, size=(40, 16))
        bits = bit_matrix(values, bits=16)
        expected = popcount(values, 16).max(axis=1)
        np.testing.assert_array_equal(column_drain_cycles(bits, first_stage_bits=4), expected)

    def test_matches_reference_scheduler_for_all_reaches(self, rng):
        values = rng.integers(0, 2**10, size=(25, 8))
        values[rng.random(values.shape) < 0.5] = 0
        bits = bit_matrix(values, bits=16)
        for reach_bits in range(5):
            vectorized = column_drain_cycles(bits, first_stage_bits=reach_bits)
            for column in range(values.shape[0]):
                oneffsets = [list(encode_oneffsets(int(v))) for v in values[column]]
                reference = schedule_cycle_count(oneffsets, reach_bits)
                assert max(1, int(vectorized[column])) == reference

    def test_narrower_reach_never_faster(self, rng):
        values = rng.integers(0, 2**16, size=(30, 16))
        bits = bit_matrix(values, bits=16)
        previous = None
        for reach_bits in (4, 3, 2, 1, 0):
            cycles = column_drain_cycles(bits, first_stage_bits=reach_bits)
            if previous is not None:
                assert np.all(cycles >= previous)
            previous = cycles

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            column_drain_cycles(np.zeros(4, dtype=bool), first_stage_bits=2)
        with pytest.raises(ValueError):
            column_drain_cycles(np.zeros((2, 2, 2), dtype=bool), first_stage_bits=-1)


class TestStepDrainCycles:
    def test_shape(self, rng):
        values = random_step_values(rng)
        drains = step_drain_cycles(values, first_stage_bits=2, storage_bits=16)
        assert drains.shape == values.shape[:-1]

    def test_bounded_by_storage_bits_and_popcount(self, rng):
        values = random_step_values(rng, bits=16)
        drains = step_drain_cycles(values, first_stage_bits=4, storage_bits=16)
        assert drains.max() <= 16
        assert np.all(drains >= popcount(values, 16).max(axis=-1))


class TestPalletSync:
    def test_all_zero_pallet_costs_min_step(self, rng):
        values = np.zeros((2, 5, 16, 16), dtype=np.int64)
        cycles = pallet_sync_cycles(values, 2, 16)
        np.testing.assert_array_equal(cycles, 5)

    def test_worst_case_is_sixteen_per_step(self):
        values = np.full((1, 3, 16, 16), (1 << 16) - 1, dtype=np.int64)
        cycles = pallet_sync_cycles(values, 4, 16)
        np.testing.assert_array_equal(cycles, 3 * 16)

    def test_min_step_cycles_floor(self, rng):
        values = random_step_values(rng, density=0.05, bits=2)
        relaxed = pallet_sync_cycles(values, 2, 16, min_step_cycles=1)
        floored = pallet_sync_cycles(values, 2, 16, min_step_cycles=4)
        assert np.all(floored >= relaxed)
        assert np.all(floored >= 4 * values.shape[1])

    def test_equals_sum_of_per_step_maxima(self, rng):
        values = random_step_values(rng)
        drains = step_drain_cycles(values, 3, 16)
        expected = np.maximum(drains.max(axis=2), 1).sum(axis=1)
        np.testing.assert_array_equal(pallet_sync_cycles(values, 3, 16), expected)

    def test_rejects_bad_shapes_and_args(self, rng):
        with pytest.raises(ValueError):
            pallet_sync_cycles(np.zeros((2, 3, 4)), 2, 16)
        with pytest.raises(ValueError):
            pallet_sync_cycles(np.zeros((1, 1, 2, 2)), 2, 16, min_step_cycles=0)


class TestColumnSync:
    def test_ideal_equals_slowest_column_sum(self, rng):
        values = random_step_values(rng)
        drains = np.maximum(step_drain_cycles(values, 2, 16), 1)
        ideal = column_sync_cycles(values, 2, 16, ssr_count=None)
        lower_bound = drains.sum(axis=1).max(axis=1)
        assert np.all(ideal >= lower_bound)
        # The SB port adds at most one cycle of skew per step.
        assert np.all(ideal <= lower_bound + values.shape[1])

    def test_never_slower_than_pallet_sync_plus_load_skew(self, rng):
        values = random_step_values(rng, pallets=4)
        pallet = pallet_sync_cycles(values, 2, 16)
        for ssr in (1, 4, 16, None):
            column = column_sync_cycles(values, 2, 16, ssr_count=ssr)
            assert np.all(column <= pallet + values.shape[1])

    def test_more_registers_never_hurt(self, rng):
        values = random_step_values(rng, pallets=4, steps=8)
        previous = None
        for ssr in (1, 2, 4, 8, None):
            cycles = column_sync_cycles(values, 2, 16, ssr_count=ssr)
            if previous is not None:
                assert np.all(cycles <= previous + 1e-9)
            previous = cycles

    def test_single_register_behaves_like_near_pallet_sync(self):
        # One column monopolises step 0; with a single SSR the other columns can
        # run at most one synapse set ahead.
        values = np.zeros((1, 3, 2, 16), dtype=np.int64)
        values[0, 0, 0, :] = (1 << 16) - 1  # column 0 takes 16 cycles on step 0
        one_reg = column_sync_cycles(values[:, :, :, :], 4, 16, ssr_count=1)
        ideal = column_sync_cycles(values[:, :, :, :], 4, 16, ssr_count=None)
        assert ideal <= one_reg

    def test_rejects_bad_arguments(self, rng):
        values = random_step_values(rng, pallets=1)
        with pytest.raises(ValueError):
            column_sync_cycles(values, 2, 16, ssr_count=0)
        with pytest.raises(ValueError):
            column_sync_cycles(values, 2, 16, sb_read_cycles=0)


class TestReferenceAgreement:
    """column_drain_cycles (kernel path) against the reference scheduler."""

    def test_agrees_with_reference_loop(self, rng):
        values = rng.integers(0, 2**16, size=(60, 16))
        values[rng.random(values.shape) < 0.5] = 0
        bits = bit_matrix(values, bits=16)
        for reach_bits in range(5):
            np.testing.assert_array_equal(
                column_drain_cycles(bits, reach_bits),
                _reference_drain_cycles(bits, reach_bits),
            )

    def test_wide_planes_take_the_reference_path(self, rng):
        # 17-position planes (the CSD extension's layout) exceed the packed
        # kernel width; the public API must still answer, via the reference.
        planes = rng.random((12, 16, 17)) < 0.25
        for reach_bits in range(5):
            np.testing.assert_array_equal(
                column_drain_cycles(planes, reach_bits),
                _reference_drain_cycles(planes, reach_bits),
            )


class TestSharedSsrPipeline:
    """Both call sites must schedule through the one ssr_pipeline_cycles DP."""

    def test_column_sync_equals_cycles_from_drain(self, rng):
        values = random_step_values(rng, pallets=4)
        for ssr in (1, 3, None):
            config = PragmaticConfig(
                first_stage_bits=2, synchronization="column", ssr_count=ssr
            )
            drain = step_drain_cycles(values, 2, 16)
            np.testing.assert_array_equal(
                cycles_from_drain(drain, config, min_step_cycles=1),
                column_sync_cycles(values, 2, 16, ssr_count=ssr),
            )

    def test_both_call_sites_pin_the_shared_implementation(self, rng, monkeypatch):
        calls = []

        def spy(drain, ssr_count, sb_read_cycles=1):
            calls.append(ssr_count)
            return ssr_pipeline_cycles(drain, ssr_count, sb_read_cycles=sb_read_cycles)

        monkeypatch.setattr(repro.core.scheduling, "ssr_pipeline_cycles", spy)
        monkeypatch.setattr(repro.core.sweep, "ssr_pipeline_cycles", spy)
        values = random_step_values(rng, pallets=2)
        column_sync_cycles(values, 2, 16, ssr_count=3)
        config = PragmaticConfig(
            first_stage_bits=2, synchronization="column", ssr_count=5
        )
        cycles_from_drain(step_drain_cycles(values, 2, 16), config, min_step_cycles=1)
        assert calls == [3, 5]

    def test_pallet_config_bypasses_the_pipeline(self, rng, monkeypatch):
        def bomb(*args, **kwargs):
            raise AssertionError("pallet sync must not invoke the SSR pipeline")

        monkeypatch.setattr(repro.core.sweep, "ssr_pipeline_cycles", bomb)
        values = random_step_values(rng, pallets=2)
        config = PragmaticConfig(first_stage_bits=2, synchronization="pallet")
        drain = step_drain_cycles(values, 2, 16)
        expected = np.maximum(drain, 1).max(axis=2).sum(axis=1)
        np.testing.assert_array_equal(
            cycles_from_drain(drain, config, min_step_cycles=1), expected
        )

    def test_rejects_non_pallet_shapes(self):
        with pytest.raises(ValueError):
            ssr_pipeline_cycles(np.zeros((3, 4)), ssr_count=1)


class TestEssentialTerms:
    def test_counts_set_bits(self):
        values = np.array([[[[3, 0], [1, 7]]]])
        assert essential_terms(values, storage_bits=8) == 2 + 0 + 1 + 3
