"""Async TCP client for the ``repro serve`` protocol.

:class:`ServeClient` multiplexes any number of concurrent requests over one
connection: each request gets a client-side correlation id, a background
reader task routes incoming event lines by that id, and the awaiting
coroutine collects lifecycle events until the terminal one arrives.  The
terminal event is returned as a :class:`ServeResponse` whose ``stats`` is a
real :class:`~repro.runtime.session.RunStats` (rebuilt from the wire dict via
``RunStats.merge``), so callers can assert cache/sweep counters directly.
:meth:`ServeClient.stream` (and the ``stream_experiment``/``stream_run_all``
helpers) instead expose a job as an async iterator of events, including the
incremental ``progress`` reports of a ``stream: true`` request — see
``examples/serve_client.py`` and ``docs/serving.md``.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, field

from repro.runtime import RunStats
from repro.serve.protocol import ProtocolError, decode, encode

__all__ = ["ServeResponse", "ServeClient"]


@dataclass
class ServeResponse:
    """Terminal outcome of one served request."""

    state: str  # "done" | "failed" | "cancelled"
    ticket: str | None
    coalesced: bool
    result: dict | None
    stats: RunStats
    error: str | None = None
    elapsed_seconds: float | None = None
    #: Server-side wall-clock breakdown (queue-wait / execution / total), when
    #: the server reported one (see ``Job.timings`` in ``repro.serve.queue``).
    timings: dict | None = None
    events: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.state == "done"


def _response_from(payload: dict, events: list[str]) -> ServeResponse:
    stats = RunStats()
    stats.merge(payload.get("stats", {}))
    return ServeResponse(
        state=payload.get("event", "failed"),
        ticket=payload.get("ticket"),
        coalesced=bool(payload.get("coalesced", False)),
        result=payload.get("result"),
        stats=stats,
        error=payload.get("error"),
        elapsed_seconds=payload.get("elapsed_seconds"),
        timings=payload.get("timings"),
        events=events,
    )


class ServeClient:
    """One protocol connection; safe for concurrent requests via ``gather``."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._counter = itertools.count(1)
        self._routes: dict[str, asyncio.Queue[dict]] = {}
        #: Set once the connection is gone (EOF, reset, reader error).  The
        #: cluster coordinator watches this to detect worker death.
        self.closed = asyncio.Event()
        self._reader_task = asyncio.create_task(self._read_loop(), name="repro-serve-client")

    @classmethod
    async def connect(
        cls, host: str = "127.0.0.1", port: int = 0, auth_token: str | None = None
    ) -> "ServeClient":
        """Open a connection, authenticating first when ``auth_token`` is given."""
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer)
        if auth_token is not None:
            try:
                await client.auth(auth_token)
            except BaseException:
                await client.close()
                raise
        return client

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    payload = decode(line)
                except ProtocolError:
                    continue  # skip garbage (e.g. a truncated final line)
                route = self._routes.get(str(payload.get("id")))
                if route is not None:
                    route.put_nowait(payload)
        finally:
            # Connection gone (EOF, reset, or reader error): unblock every
            # waiter with a synthetic failure instead of hanging forever.
            self.closed.set()
            for route in self._routes.values():
                route.put_nowait({"event": "failed", "error": "connection closed"})

    async def _send(self, message: dict) -> tuple[str, asyncio.Queue]:
        client_id = f"c{next(self._counter)}"
        route: asyncio.Queue[dict] = asyncio.Queue()
        self._routes[client_id] = route
        self._writer.write(encode({"id": client_id, **message}))
        await self._writer.drain()
        return client_id, route

    async def _roundtrip(self, message: dict) -> dict:
        """Send a control op and return its single response."""
        client_id, route = await self._send(message)
        payload = await route.get()
        self._routes.pop(client_id, None)
        return payload

    async def job(self, message: dict, on_event=None) -> ServeResponse:
        """Send any job-op message and await its terminal event.

        The typed helpers below build on this; the cluster coordinator uses
        it directly for internal worker ops.
        """
        return await self._job(message, on_event=on_event)

    async def _job(self, message: dict, on_event=None) -> ServeResponse:
        """Send a job op and await its terminal event."""
        client_id, route = await self._send(message)
        events: list[str] = []
        try:
            while True:
                payload = await route.get()
                event = payload.get("event", "")
                events.append(event)
                if on_event is not None:
                    on_event(payload)
                if event in ("done", "failed", "cancelled", "error"):
                    if event == "error":
                        return ServeResponse(
                            state="failed",
                            ticket=None,
                            coalesced=False,
                            result=None,
                            stats=RunStats(),
                            error=payload.get("error"),
                            events=events,
                        )
                    return _response_from(payload, events)
        finally:
            self._routes.pop(client_id, None)

    # ---------------------------------------------------------------- streaming
    async def stream(self, message: dict):
        """Submit a job op with ``stream: true``; async-iterate its events.

        Yields every event payload for the request in order — ``queued``,
        ``running``, any number of ``progress`` events (each carrying the
        structured report under ``"progress"`` and the ticket id under
        ``"ticket"``), then exactly one terminal ``done``/``failed``/
        ``cancelled``/``error`` — and stops after the terminal event.  Pass
        the ticket id of an event to :meth:`cancel` to cancel mid-stream::

            async for event in client.stream({"op": "run_all", "preset": "fast"}):
                if event["event"] == "progress":
                    print(event["progress"])
        """
        client_id, route = await self._send({**message, "stream": True})
        try:
            while True:
                payload = await route.get()
                yield payload
                if payload.get("event") in ("done", "failed", "cancelled", "error"):
                    return
        finally:
            self._routes.pop(client_id, None)

    def stream_experiment(
        self, experiment: str, preset: str = "fast", seed: int = 0, overrides: dict | None = None
    ):
        """Async iterator over one ``run_experiment`` job's event stream."""
        message = {"op": "run_experiment", "experiment": experiment, "preset": preset, "seed": seed}
        if overrides:
            message["overrides"] = overrides
        return self.stream(message)

    def stream_run_all(
        self, preset: str = "fast", seed: int = 0, overrides: dict | None = None
    ):
        """Async iterator over one ``run_all`` job's event stream."""
        message = {"op": "run_all", "preset": preset, "seed": seed}
        if overrides:
            message["overrides"] = overrides
        return self.stream(message)

    # ------------------------------------------------------------------ job ops
    async def run_experiment(
        self,
        experiment: str,
        preset: str = "fast",
        seed: int = 0,
        overrides: dict | None = None,
        on_event=None,
        priority: int = 0,
    ) -> ServeResponse:
        message = {"op": "run_experiment", "experiment": experiment, "preset": preset, "seed": seed}
        if overrides:
            message["overrides"] = overrides
        if priority:
            message["priority"] = priority
        return await self._job(message, on_event=on_event)

    async def run_all(
        self,
        preset: str = "fast",
        seed: int = 0,
        overrides: dict | None = None,
        on_event=None,
        priority: int = 0,
    ) -> ServeResponse:
        message = {"op": "run_all", "preset": preset, "seed": seed}
        if overrides:
            message["overrides"] = overrides
        if priority:
            message["priority"] = priority
        return await self._job(message, on_event=on_event)

    async def simulate(
        self,
        network: str,
        variants: str = "fig9",
        representation: str = "fixed16",
        encoding: str = "positional",
        preset: str = "fast",
        seed: int = 0,
        overrides: dict | None = None,
        on_event=None,
        priority: int = 0,
    ) -> ServeResponse:
        message = {
            "op": "simulate",
            "network": network,
            "variants": variants,
            "representation": representation,
            "encoding": encoding,
            "preset": preset,
            "seed": seed,
        }
        if overrides:
            message["overrides"] = overrides
        if priority:
            message["priority"] = priority
        return await self._job(message, on_event=on_event)

    # -------------------------------------------------------------- control ops
    async def auth(self, token: str) -> None:
        """Authenticate this connection; raises ``PermissionError`` on rejection."""
        payload = await self._roundtrip({"op": "auth", "token": token})
        if payload.get("event") != "authenticated":
            raise PermissionError(payload.get("error", "authentication failed"))

    async def ping(self) -> bool:
        return (await self._roundtrip({"op": "ping"})).get("event") == "pong"

    async def stats(self) -> dict:
        return await self._roundtrip({"op": "stats"})

    async def gc(self, max_bytes: int | None = None, max_age: float | None = None) -> dict:
        """Garbage-collect the server's disk cache (LRU-first, bounded)."""
        message: dict = {"op": "gc"}
        if max_bytes is not None:
            message["max_bytes"] = max_bytes
        if max_age is not None:
            message["max_age"] = max_age
        return await self._roundtrip(message)

    async def list_experiments(self) -> dict:
        return await self._roundtrip({"op": "list"})

    async def status(self, ticket: str) -> dict:
        return await self._roundtrip({"op": "status", "ticket": ticket})

    async def cancel(self, ticket: str) -> dict:
        return await self._roundtrip({"op": "cancel", "ticket": ticket})

    async def shutdown(self) -> None:
        """Ask the server to shut down (also closes this connection)."""
        try:
            await self._roundtrip({"op": "shutdown"})
        finally:
            await self.close()

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
