"""Unit and property tests for the canonical signed digit (CSD) encoding."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.numerics.csd import (
    csd_position_matrix,
    csd_term_counts,
    csd_term_fraction,
    decode_csd,
    encode_csd,
)
from repro.numerics.fixedpoint import popcount


class TestEncodeDecode:
    def test_known_encodings(self):
        assert encode_csd(0) == ()
        assert encode_csd(1) == ((1, 0),)
        assert encode_csd(3) == ((-1, 0), (1, 2))
        assert encode_csd(126) == ((-1, 1), (1, 7))

    def test_negative_values_use_magnitude(self):
        assert encode_csd(-126) == encode_csd(126)

    def test_decode_inverts_encode(self):
        for value in (0, 1, 2, 3, 7, 126, 255, 43690, 65535):
            assert decode_csd(encode_csd(value)) == value

    def test_non_adjacent_property(self):
        for value in range(0, 4096, 37):
            positions = sorted(position for _, position in encode_csd(value))
            assert all(b - a >= 2 for a, b in zip(positions, positions[1:]))

    def test_decode_rejects_bad_terms(self):
        with pytest.raises(ValueError):
            decode_csd([(2, 0)])
        with pytest.raises(ValueError):
            decode_csd([(1, 0), (1, 0)])
        with pytest.raises(ValueError):
            decode_csd([(1, -1)])

    def test_encode_rejects_too_wide_values(self):
        with pytest.raises(ValueError):
            encode_csd(1 << 17, bits=16)


class TestTermCounts:
    def test_counts_match_encoder(self, rng):
        values = rng.integers(0, 2**16, size=300)
        counts = csd_term_counts(values, bits=16)
        expected = [len(encode_csd(int(v))) for v in values]
        np.testing.assert_array_equal(counts, expected)

    def test_csd_never_needs_more_terms_than_positional(self, rng):
        values = rng.integers(0, 2**16, size=500)
        assert np.all(csd_term_counts(values, 16) <= popcount(values, 16))

    def test_dense_values_halve_their_terms(self):
        # 0b111...1 needs n positional terms but only two CSD terms.
        assert csd_term_counts(np.array([0xFF]), 8)[0] == 2

    def test_term_fraction(self):
        assert csd_term_fraction(np.array([0xFF, 0]), bits=8) == pytest.approx(2 / 16)
        with pytest.raises(ValueError):
            csd_term_fraction(np.array([]))

    def test_position_matrix_matches_encoder(self, rng):
        values = rng.integers(0, 2**12, size=50)
        planes = csd_position_matrix(values, bits=16)
        assert planes.shape == (50, 17)
        for row, value in zip(planes, values):
            positions = {position for _, position in encode_csd(int(value))}
            assert set(np.nonzero(row)[0]) == positions


class TestProperties:
    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_roundtrip(self, value):
        assert decode_csd(encode_csd(value)) == value

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_minimality_upper_bound(self, value):
        # NAF uses at most ceil(bits/2) + 1 terms and never more than popcount.
        terms = len(encode_csd(value))
        assert terms <= bin(value).count("1")
        assert terms <= 9
