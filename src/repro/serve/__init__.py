"""repro.serve — async experiment-serving front-end over ``repro.runtime``.

Many concurrent clients share one warm :class:`RuntimeSession` (result cache +
trace store): typed requests enter an async priority queue, identical
in-flight requests coalesce onto one job by the runtime's content hash, and a
bounded worker pool executes jobs on threads while per-request counters
report what each request actually cost.  TCP endpoints can demand a shared
auth token, and ``--worker`` mode turns a serve process into a cluster worker
(:mod:`repro.cluster`).

Layering::

    protocol   typed requests + JSON-lines wire format
    queue      tickets, jobs, coalescing, cancellation
    workers    bounded pool, per-job stats views of the shared session
    service    ExperimentService: in-process / TCP / stdio front-ends
    client     ServeClient: async multiplexing TCP client
    cli        ``python -m repro serve`` (incl. ``--selftest``)

Start with ``docs/serving.md``; the stack underneath is mapped in
``docs/architecture.md``.
"""

from repro.serve.client import ServeClient, ServeResponse
from repro.serve.protocol import (
    ExperimentRequest,
    ProtocolError,
    RunAllRequest,
    ServeRequest,
    SimulateRequest,
    parse_request,
)
from repro.serve.queue import Job, RequestQueue, Ticket
from repro.serve.service import ConnectionContext, ExperimentService
from repro.serve.workers import WorkerPool, execute_request, job_session

__all__ = [
    "ConnectionContext",
    "job_session",
    "ServeClient",
    "ServeResponse",
    "ExperimentRequest",
    "ProtocolError",
    "RunAllRequest",
    "ServeRequest",
    "SimulateRequest",
    "parse_request",
    "Job",
    "RequestQueue",
    "Ticket",
    "ExperimentService",
    "WorkerPool",
    "execute_request",
]
