"""Ablation study of the reproduction's trace-modelling choices (beyond the paper).

The synthetic-trace substitution (DESIGN.md §4) introduces two modelling choices
the paper did not have to make: how many trimmable suffix bits the stored
neurons carry, and whether the first layer is fed dense image pixels.  This
experiment quantifies how sensitive the headline speedup (PRA-2b, per-pallet
synchronization) is to both, so readers can judge the robustness of the
reproduced conclusions.

The simulations run through the runtime engine (the sweep path is numerically
identical to :class:`repro.core.accelerator.PragmaticAccelerator`), so each
``(trace variant, network)`` point is cached and the scenario grid fans out
under ``--jobs``.
"""

from __future__ import annotations

from repro.analysis.speedup import geometric_mean
from repro.analysis.tables import format_ratio
from repro.core.variants import pallet_variant
from repro.experiments.base import ExperimentResult, Preset, get_preset
from repro.runtime import SimulationRequest, TraceSpec, simulate

__all__ = ["run", "plan"]

#: Suffix-bit depths swept by the ablation.
SUFFIX_BITS = (0, 1, 2, 3)

#: The design point under ablation.
_DESIGN_LABEL = "PRA-2b"


def _scenarios() -> list[tuple[str, dict[str, object]]]:
    """Label → trace-spec overrides of each ablation scenario."""
    scenarios: list[tuple[str, dict[str, object]]] = [
        (f"suffix={bits}, dense first layer", {"suffix_bits": bits, "dense_first_layer": True})
        for bits in SUFFIX_BITS
    ]
    scenarios.append(
        ("suffix=2, sparse first layer", {"suffix_bits": 2, "dense_first_layer": False})
    )
    return scenarios


def plan(preset: str | Preset = "fast", seed: int = 0) -> list[SimulationRequest]:
    """One simulation job per (scenario, network) trace variant."""
    config = get_preset(preset)
    design = ((_DESIGN_LABEL, pallet_variant(2)),)
    return [
        SimulationRequest(
            trace=TraceSpec(network=name, seed=seed, **kwargs),
            configs=design,
            sampling=config.sampling(),
        )
        for _, kwargs in _scenarios()
        for name in config.networks
    ]


def run(preset: str | Preset = "fast", seed: int = 0) -> ExperimentResult:
    """Sweep suffix bits and the dense-first-layer switch for PRA-2b."""
    config = get_preset(preset)
    design = ((_DESIGN_LABEL, pallet_variant(2)),)

    headers = ["configuration", *(config.networks), "geomean"]
    rows: list[list[object]] = []
    metadata: dict[str, float] = {}

    for label, kwargs in _scenarios():
        speedups = []
        row: list[object] = [label]
        for name in config.networks:
            request = SimulationRequest(
                trace=TraceSpec(network=name, seed=seed, **kwargs),
                configs=design,
                sampling=config.sampling(),
            )
            result = simulate(request)[_DESIGN_LABEL]
            speedups.append(result.speedup)
            row.append(format_ratio(result.speedup))
            metadata[f"{label}:{name}"] = result.speedup
        mean = geometric_mean(speedups)
        row.append(format_ratio(mean))
        metadata[f"{label}:geomean"] = mean
        rows.append(row)

    notes = (
        "PRA-2b, per-pallet synchronization.  More suffix bits give software guidance more\n"
        "to trim (higher speedup); modelling the first layer as sparse ReLU output instead\n"
        "of dense image pixels overstates the speedup, which is why the dense model is the\n"
        "default (DESIGN.md §4)."
    )
    return ExperimentResult(
        experiment="ablation",
        title="Ablation: sensitivity of the PRA-2b speedup to trace-modelling choices",
        headers=headers,
        rows=rows,
        notes=notes,
        metadata=metadata,
    )
