"""Table V — performance benefit of the software-provided per-layer precisions."""

from __future__ import annotations

from repro.analysis.speedup import geometric_mean
from repro.analysis.tables import format_percent, format_ratio
from repro.core.variants import column_variant
from repro.experiments.base import ExperimentResult, Preset, get_preset
from repro.runtime import SimulationRequest, TraceSpec, simulate

__all__ = ["run", "plan", "PAPER_BENEFITS"]

#: Table V of the paper: speedup fraction attributable to software guidance.
PAPER_BENEFITS: dict[str, float] = {
    "alexnet": 0.23,
    "nin": 0.10,
    "googlenet": 0.18,
    "vgg_m": 0.22,
    "vgg_s": 0.21,
    "vgg19": 0.19,
}


def _variants() -> dict[str, object]:
    return {
        "with-software": column_variant(1, software_trimming=True),
        "without-software": column_variant(1, software_trimming=False),
    }


def plan(preset: str | Preset = "fast", seed: int = 0) -> list[SimulationRequest]:
    """The cycle simulations this experiment needs (one job per network).

    The guided design point is Figure 10's PRA-2b-1R, so combined runs only
    simulate the unguided counterpart here.
    """
    config = get_preset(preset)
    variants = tuple(_variants().items())
    return [
        SimulationRequest(
            trace=TraceSpec(network=name, seed=seed),
            configs=variants,
            sampling=config.sampling(),
        )
        for name in config.networks
    ]


def run(preset: str | Preset = "fast", seed: int = 0) -> ExperimentResult:
    """Reproduce Table V: PRA-2b-1R with and without software guidance."""
    config = get_preset(preset)
    headers = [
        "network",
        "speedup (software)",
        "speedup (no software)",
        "benefit",
        "benefit (paper)",
    ]
    rows: list[list[object]] = []
    metadata: dict[str, float] = {}
    benefits: list[float] = []
    for request in plan(config, seed):
        results = simulate(request)
        network_name = results["with-software"].network
        guided = results["with-software"].speedup
        unguided = results["without-software"].speedup
        benefit = guided / unguided - 1.0
        benefits.append(benefit)
        metadata[f"{network_name}:benefit"] = benefit
        rows.append(
            [
                network_name,
                format_ratio(guided),
                format_ratio(unguided),
                format_percent(benefit, digits=0),
                format_percent(PAPER_BENEFITS.get(network_name, float("nan")), digits=0),
            ]
        )
    average = sum(benefits) / len(benefits)
    rows.append(["average", "-", "-", format_percent(average, digits=0), "19%"])
    metadata["average:benefit"] = average
    metadata["geomean:benefit"] = geometric_mean(1.0 + b for b in benefits) - 1.0
    notes = (
        "The benefit is the extra speedup PRA-2b-1R gains when software communicates the\n"
        "per-layer precisions of Table II (Section V-F); the paper reports 19% on average."
    )
    return ExperimentResult(
        experiment="table5",
        title="Table V: performance benefit due to software guidance (PRA-2b-1R)",
        headers=headers,
        rows=rows,
        notes=notes,
        metadata=metadata,
    )
