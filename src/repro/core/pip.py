"""Functional model of the Pragmatic Inner Product unit (PIP) and tile.

The cycle models in :mod:`repro.core.scheduling` only count cycles; the classes
here actually *compute* through the serial PIP datapath of Figures 6 and 7 —
first-stage shifters, adder tree, second-stage shifter, accumulator — so that
the test suite can assert exact equivalence with the bit-parallel reference
convolution for every synchronization and shifter configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.config import ChipConfig, DEFAULT_CHIP
from repro.arch.tiling import brick_positions, extract_brick, pallet_window_coordinates
from repro.nn.layers import BRICK_SIZE, ConvLayerSpec
from repro.nn.reference import check_shapes, pad_input
from repro.numerics.encoding import serial_term_schedule
from repro.numerics.oneffsets import encode_oneffsets

__all__ = ["PragmaticInnerProductUnit", "PragmaticTileFunctional"]


@dataclass(frozen=True)
class PragmaticInnerProductUnit:
    """One PIP: 16 synapse lanes fed by one window's neuron oneffsets.

    Parameters
    ----------
    first_stage_bits:
        Control width ``L`` of the per-synapse first-stage shifters.  ``L = 4``
        is the single-stage design (full reach), smaller values add a shared
        second-stage shifter and may stall lanes (Section V-D).
    storage_bits:
        Neuron storage width.
    """

    first_stage_bits: int = 2
    storage_bits: int = 16

    def __post_init__(self) -> None:
        if not 0 <= self.first_stage_bits <= 8:
            raise ValueError("first_stage_bits must be in [0, 8]")
        if self.storage_bits < 1:
            raise ValueError("storage_bits must be positive")

    def compute(
        self, synapse_brick: np.ndarray, neuron_brick: np.ndarray
    ) -> tuple[int, int]:
        """Serially compute one brick's inner product.

        Returns ``(partial_sum, cycles)``.  The partial sum must equal
        ``dot(synapse_brick, neuron_brick)``.
        """
        synapses = np.asarray(synapse_brick, dtype=np.int64).ravel()
        neurons = np.asarray(neuron_brick, dtype=np.int64).ravel()
        if synapses.shape != neurons.shape:
            raise ValueError("synapse and neuron bricks must have the same length")
        partial, cycles = self._compute_many(synapses[None, :], neurons)
        return int(partial[0]), cycles

    def _compute_many(
        self, synapse_bricks: np.ndarray, neuron_brick: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """Compute the inner product of one neuron brick against many synapse bricks.

        ``synapse_bricks`` is shaped ``[filters, lanes]``; the same neuron
        oneffset schedule drives every filter's PIP in the column, mirroring the
        hardware where a column's PIPs operate in lockstep.
        """
        neurons = np.asarray(neuron_brick, dtype=np.int64).ravel()
        signs = np.where(neurons < 0, -1, 1)
        magnitudes = np.abs(neurons)
        if magnitudes.size and int(magnitudes.max()) >= (1 << self.storage_bits):
            raise ValueError("neuron magnitude does not fit the storage representation")
        oneffsets = [list(encode_oneffsets(int(m), ascending=True)) for m in magnitudes]
        schedule = serial_term_schedule(oneffsets, self.first_stage_bits)

        accumulator = np.zeros(synapse_bricks.shape[0], dtype=np.int64)
        for cycle in schedule:
            tree_sum = np.zeros(synapse_bricks.shape[0], dtype=np.int64)
            for lane, shift in enumerate(cycle.first_stage_shifts):
                if shift is None:
                    # Stalled or exhausted lane: the AND gate injects a null term.
                    continue
                tree_sum += signs[lane] * (synapse_bricks[:, lane] << shift)
            accumulator += tree_sum << cycle.common_shift
        return accumulator, max(1, len(schedule))


@dataclass
class PragmaticTileFunctional:
    """Functional Pragmatic tile: computes a layer through the PIP array.

    Produces the layer's output neurons and the per-pallet-synchronization cycle
    count, walking the same pallet/brick traversal as the cycle model.
    """

    first_stage_bits: int = 2
    storage_bits: int = 16
    chip: ChipConfig = field(default_factory=lambda: DEFAULT_CHIP)

    def compute_layer(
        self, layer: ConvLayerSpec, neurons: np.ndarray, synapses: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """Compute output neurons ``[N, Oy, Ox]`` and the pallet-sync cycle count."""
        check_shapes(layer, neurons, synapses)
        padded = pad_input(np.asarray(neurons, dtype=np.int64), layer.padding)
        weights = np.asarray(synapses, dtype=np.int64)
        pip = PragmaticInnerProductUnit(
            first_stage_bits=self.first_stage_bits, storage_bits=self.storage_bits
        )
        out = np.zeros(
            (layer.num_filters, layer.output_height, layer.output_width), dtype=np.int64
        )
        positions = brick_positions(layer)
        total_cycles = 0
        passes = layer.filter_passes(self.chip.filters_per_cycle)
        for windows in pallet_window_coordinates(layer):
            accumulators = np.zeros((layer.num_filters, len(windows)), dtype=np.int64)
            pallet_cycles = 0
            for position in positions:
                start = position.channel_brick * BRICK_SIZE
                stop = min(start + BRICK_SIZE, layer.input_channels)
                synapse_bricks = np.zeros((layer.num_filters, BRICK_SIZE), dtype=np.int64)
                synapse_bricks[:, : stop - start] = weights[
                    :, start:stop, position.fy, position.fx
                ]
                step_cycles = 1
                for column, (oy, ox) in enumerate(windows):
                    neuron_brick = extract_brick(padded, layer, oy, ox, position)
                    partial, cycles = pip._compute_many(synapse_bricks, neuron_brick)
                    accumulators[:, column] += partial
                    step_cycles = max(step_cycles, cycles)
                pallet_cycles += step_cycles
            total_cycles += pallet_cycles
            for column, (oy, ox) in enumerate(windows):
                out[:, oy, ox] = accumulators[:, column]
        return out, total_cycles * passes
