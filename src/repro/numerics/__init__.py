"""Number representations and bit-level encodings used throughout the reproduction.

Public surface:

* :class:`FixedPointFormat` / :data:`FIXED16` — the 16-bit fixed point storage of
  DaDianNao, Stripes and Pragmatic.
* :class:`QuantizationParams` — TensorFlow-style 8-bit linear quantization.
* oneffset (essential-bit) encoding helpers and :class:`OneffsetStream`.
* 2-stage shifting decomposition and the per-cycle scheduling algorithm.
"""

from repro.numerics.csd import (
    csd_position_matrix,
    csd_term_counts,
    csd_term_fraction,
    decode_csd,
    encode_csd,
)
from repro.numerics.encoding import (
    ScheduleCycle,
    schedule_cycle_count,
    serial_term_schedule,
    two_stage_decompose,
)
from repro.numerics.encodings import (
    DEFAULT_ENCODING,
    Encoding,
    encoding_names,
    get_encoding,
    register_encoding,
)
from repro.numerics.fixedpoint import (
    FIXED8,
    FIXED16,
    FixedPointFormat,
    bit_matrix,
    leading_bit_position,
    popcount,
    trailing_bit_position,
)
from repro.numerics.oneffsets import (
    OneffsetStream,
    decode_oneffsets,
    encode_array,
    encode_oneffsets,
    essential_bit_counts,
    essential_bit_fraction,
)
from repro.numerics.quantized import QuantizationParams, quantize_layer

__all__ = [
    "FixedPointFormat",
    "FIXED16",
    "FIXED8",
    "bit_matrix",
    "popcount",
    "leading_bit_position",
    "trailing_bit_position",
    "QuantizationParams",
    "quantize_layer",
    "OneffsetStream",
    "encode_oneffsets",
    "decode_oneffsets",
    "encode_array",
    "essential_bit_counts",
    "essential_bit_fraction",
    "ScheduleCycle",
    "serial_term_schedule",
    "schedule_cycle_count",
    "two_stage_decompose",
    "encode_csd",
    "decode_csd",
    "csd_term_counts",
    "csd_term_fraction",
    "csd_position_matrix",
    "Encoding",
    "DEFAULT_ENCODING",
    "register_encoding",
    "get_encoding",
    "encoding_names",
]
