"""Unit tests for the area, power and energy-efficiency models."""

import pytest

from repro.core.accelerator import LayerResult, NetworkResult
from repro.core.variants import column_variant, pallet_variant
from repro.energy.area import chip_area, design_area, unit_area
from repro.energy.components import (
    MEMORY_AREA_MM2,
    ComponentCounts,
    component_counts_for,
    dadn_unit_counts,
    pragmatic_unit_counts,
    stripes_unit_counts,
)
from repro.energy.efficiency import design_efficiency, energy_efficiency, execution_energy
from repro.energy.power import chip_power, design_power

#: Published Table III / IV values: design -> (unit mm2, chip power W).
PAPER_VALUES = {
    "dadn": (1.55, 18.8),
    "stripes": (3.05, 30.2),
    "PRA-0b": (3.11, 31.4),
    "PRA-1b": (3.16, 34.5),
    "PRA-2b": (3.54, 38.2),
    "PRA-3b": (4.41, 43.8),
    "PRA-4b": (5.75, 51.6),
    "PRA-2b-1R": (3.58, 38.8),
    "PRA-2b-4R": (3.73, 40.8),
    "PRA-2b-16R": (4.33, 49.1),
}


def design_for(name):
    if name in ("dadn", "stripes"):
        return name
    if name.endswith("R"):
        registers = name.split("-")[-1]
        return column_variant(int(registers[:-1]))
    return pallet_variant(int(name.split("-")[1][0]))


class TestComponentCounts:
    def test_addition_and_scaling(self):
        a = ComponentCounts(multipliers=1, adder_bits=10)
        b = ComponentCounts(adder_bits=5, ssr_bits=2)
        combined = a + b
        assert combined.multipliers == 1
        assert combined.adder_bits == 15
        assert combined.ssr_bits == 2
        assert a.scaled(3).adder_bits == 30

    def test_dadn_counts_match_structure(self):
        counts = dadn_unit_counts()
        assert counts.multipliers == 256
        assert counts.shifter_bits == 0

    def test_stripes_counts_have_no_multipliers(self):
        counts = stripes_unit_counts()
        assert counts.multipliers == 0
        assert counts.adder_bits > dadn_unit_counts().adder_bits

    def test_pragmatic_counts_grow_with_first_stage_bits(self):
        areas = [pragmatic_unit_counts(pallet_variant(bits)).shifter_bits for bits in range(5)]
        assert areas[0] < areas[2] < areas[4]

    def test_column_variant_adds_ssr_bits(self):
        assert pragmatic_unit_counts(column_variant(1)).ssr_bits == 16 * 16 * 16
        assert pragmatic_unit_counts(pallet_variant(2)).ssr_bits == 0

    def test_component_counts_for_rejects_unknown_name(self):
        with pytest.raises(ValueError):
            component_counts_for("eyeriss")


class TestCalibratedTotals:
    @pytest.mark.parametrize("name", sorted(PAPER_VALUES))
    def test_unit_area_within_five_percent_of_paper(self, name):
        paper_unit, _ = PAPER_VALUES[name]
        measured = design_area(design_for(name)).unit_mm2
        assert measured == pytest.approx(paper_unit, rel=0.05)

    @pytest.mark.parametrize("name", sorted(PAPER_VALUES))
    def test_chip_power_within_five_percent_of_paper(self, name):
        _, paper_power = PAPER_VALUES[name]
        measured = design_power(design_for(name)).chip_w
        assert measured == pytest.approx(paper_power, rel=0.05)

    def test_chip_area_adds_constant_memory_system(self):
        counts = dadn_unit_counts()
        assert chip_area(counts) == pytest.approx(16 * unit_area(counts) + MEMORY_AREA_MM2)

    def test_area_monotonic_in_first_stage_bits(self):
        areas = [design_area(pallet_variant(bits)).unit_mm2 for bits in range(5)]
        assert areas == sorted(areas)

    def test_more_ssrs_cost_more_area_and_power(self):
        one = design_area(column_variant(1)).unit_mm2
        sixteen = design_area(column_variant(16)).unit_mm2
        assert sixteen > one
        assert design_power(column_variant(16)).chip_w > design_power(column_variant(1)).chip_w

    def test_pra2b_headline_overheads(self):
        # The paper highlights PRA-2b: ~1.35x chip area and ~2.03x power over DaDN.
        area = design_area(pallet_variant(2))
        power = design_power(pallet_variant(2))
        assert area.chip_ratio == pytest.approx(1.35, abs=0.05)
        assert power.chip_ratio == pytest.approx(2.03, abs=0.1)


class TestEfficiency:
    def test_execution_energy_scales_linearly(self):
        assert execution_energy(10.0, 2e9) == pytest.approx(2 * execution_energy(10.0, 1e9))

    def test_execution_energy_rejects_negative(self):
        with pytest.raises(ValueError):
            execution_energy(-1.0, 10)

    def test_energy_efficiency_formula(self):
        assert energy_efficiency(10.0, 100.0, 20.0, 25.0) == pytest.approx(2.0)

    def test_energy_efficiency_rejects_zero_energy(self):
        with pytest.raises(ValueError):
            energy_efficiency(10.0, 100.0, 0.0, 0.0)

    def test_design_efficiency_equals_speedup_over_power_ratio(self):
        layers = (LayerResult("l", cycles=50.0, baseline_cycles=150.0, terms=1.0, baseline_terms=2.0),)
        result = NetworkResult("net", "PRA-2b", layers)
        entry = design_efficiency(pallet_variant(2), result)
        assert entry.efficiency == pytest.approx(entry.speedup / entry.power_ratio)
        assert entry.network == "net"

    def test_pra4b_less_efficient_than_pra2b_at_equal_speedup(self):
        layers = (LayerResult("l", cycles=50.0, baseline_cycles=130.0, terms=1.0, baseline_terms=2.0),)
        result = NetworkResult("net", "x", layers)
        two_bit = design_efficiency(pallet_variant(2), result)
        four_bit = design_efficiency(pallet_variant(4), result)
        assert two_bit.efficiency > four_bit.efficiency
