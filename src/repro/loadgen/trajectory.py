"""The schema-versioned append-only performance trajectory.

``benchmarks/reports/bench_summary.json`` used to be a single overwritten
snapshot (schema 1: ``{"schema": 1, "experiments": {...}}``); it is now a
**trajectory** — one record per PR — so "faster" claims are checkable against
history instead of vanishing with each overwrite:

.. code-block:: json

    {"schema": 2, "records": [
        {"index": 0, "recorded_at": "2026-08-08T12:00:00Z",
         "git_sha": "b67db10...", "label": "PR 5",
         "experiments": {"fig9": {"preset": "fast", "wall_seconds": 34.7}},
         "loadgen": {"serve": {"p95_seconds": 0.41, "throughput_rps": 12.3}}}
    ]}

Records append; existing records are never rewritten except the **head**
record of the same ``git_sha``, which benchmark runs and loadgen appends
update in place (one record per PR, filled in by several tools).  A legacy
schema-1 snapshot is migrated on load into record 0 — the ingestion shim —
and a corrupt or missing file restarts the trajectory rather than failing.

:mod:`repro.loadgen.gate` consumes the two newest records; ``docs/loadgen.md``
documents the record contract.
"""

from __future__ import annotations

import datetime
import json
import subprocess
from pathlib import Path

__all__ = [
    "TRAJECTORY_SCHEMA",
    "current_git_sha",
    "load_trajectory",
    "save_trajectory",
    "upsert_record",
    "append_experiment_measurement",
    "append_loadgen_section",
]

#: Current schema of the trajectory file.
TRAJECTORY_SCHEMA = 2

#: Schema of the pre-trajectory single-snapshot format this module ingests.
_SNAPSHOT_SCHEMA = 1


def current_git_sha(root: str | Path | None = None) -> str | None:
    """The repo's HEAD sha, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(root) if root else None,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _utc_now() -> str:
    return datetime.datetime.now(datetime.timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def _empty() -> dict:
    return {"schema": TRAJECTORY_SCHEMA, "records": []}


def _migrate_snapshot(snapshot: dict) -> dict:
    """Ingest a schema-1 single snapshot as record 0 of a fresh trajectory."""
    return {
        "schema": TRAJECTORY_SCHEMA,
        "records": [
            {
                "index": 0,
                "recorded_at": _utc_now(),
                "git_sha": None,
                "label": "migrated schema-1 snapshot",
                "experiments": dict(snapshot.get("experiments", {})),
            }
        ],
    }


def load_trajectory(path: str | Path) -> dict:
    """Load (and, for a legacy snapshot, migrate) the trajectory at ``path``.

    Never raises on a missing or corrupt file — the trajectory restarts
    empty, exactly like the old snapshot's recovery rule.
    """
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return _empty()
    if not isinstance(data, dict):
        return _empty()
    if data.get("schema") == _SNAPSHOT_SCHEMA and isinstance(data.get("experiments"), dict):
        return _migrate_snapshot(data)
    if data.get("schema") == TRAJECTORY_SCHEMA and isinstance(data.get("records"), list):
        return data
    return _empty()


def save_trajectory(path: str | Path, trajectory: dict) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(trajectory, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def upsert_record(
    trajectory: dict, git_sha: str | None, label: str | None = None
) -> dict:
    """The head record for ``git_sha``, appending a fresh one when needed.

    The head record is only reused when its sha matches (several tools fill
    in one PR's record; measurements from two different PRs never merge —
    outside a git checkout, where shas are unknowable, consecutive runs do
    share the ``None`` record).  ``label`` (e.g. ``"PR 6"``) is set on
    creation and updated when given.
    """
    records = trajectory["records"]
    head = records[-1] if records else None
    if head is None or head.get("git_sha") != git_sha:
        head = {
            "index": (head["index"] + 1) if head else 0,
            "recorded_at": _utc_now(),
            "git_sha": git_sha,
            "experiments": {},
        }
        records.append(head)
    if label:
        head["label"] = label
    return head


def append_experiment_measurement(
    path: str | Path,
    experiment: str,
    preset: str,
    wall_seconds: float,
    git_sha: str | None = None,
    label: str | None = None,
) -> dict:
    """Record one benchmark wall time into the head record (load → save).

    The benchmark conftest calls this once per experiment; all measurements
    of one PR land in one record because they share the checkout's sha.
    """
    trajectory = load_trajectory(path)
    record = upsert_record(trajectory, git_sha, label=label)
    record.setdefault("experiments", {})[experiment] = {
        "preset": preset,
        "wall_seconds": round(wall_seconds, 3),
    }
    record["recorded_at"] = _utc_now()
    save_trajectory(path, trajectory)
    return record


def append_loadgen_section(
    path: str | Path,
    target: str,
    section: dict,
    git_sha: str | None = None,
    label: str | None = None,
) -> dict:
    """Record one loadgen report's trajectory section under the head record."""
    trajectory = load_trajectory(path)
    record = upsert_record(trajectory, git_sha, label=label)
    record.setdefault("loadgen", {})[target] = section
    record["recorded_at"] = _utc_now()
    save_trajectory(path, trajectory)
    return record
