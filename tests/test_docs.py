"""Documentation checks: intra-repo markdown links must resolve.

CI's docs job runs this module on every tier-1 platform; it scans every
tracked markdown file for relative links (and anchor-only fragments within
the same file) and fails on anything that points at a file which does not
exist.  External links (http/https/mailto) are out of scope.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links: [text](target), excluding images' leading ! is fine.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Required documentation pages (the docs site contract of this repo).
REQUIRED = (
    "README.md",
    "docs/architecture.md",
    "docs/runtime.md",
    "docs/serving.md",
    "docs/cluster.md",
    "docs/cachenet.md",
    "docs/loadgen.md",
)


def markdown_files() -> list[Path]:
    files = [
        path
        for path in REPO_ROOT.rglob("*.md")
        if not any(part.startswith(".") for part in path.relative_to(REPO_ROOT).parts)
    ]
    assert files, "no markdown files found"
    return files


def heading_anchors(path: Path) -> set[str]:
    """GitHub-style anchors of a markdown file's headings."""
    anchors = set()
    for line in path.read_text(encoding="utf-8").splitlines():
        match = re.match(r"#+\s+(.*)", line)
        if match:
            title = match.group(1).strip().strip("`")
            anchor = re.sub(r"[^\w\s-]", "", title.lower())
            anchors.add(re.sub(r"[\s]+", "-", anchor).strip("-"))
    return anchors


def test_required_docs_exist():
    for relative in REQUIRED:
        assert (REPO_ROOT / relative).is_file(), f"missing documentation page {relative}"


def test_intra_repo_markdown_links_resolve():
    problems = []
    for path in markdown_files():
        text = path.read_text(encoding="utf-8")
        for target in LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target_path, _, fragment = target.partition("#")
            if not target_path:  # same-file anchor
                if fragment and fragment not in heading_anchors(path):
                    problems.append(f"{path.relative_to(REPO_ROOT)}: dead anchor #{fragment}")
                continue
            resolved = (path.parent / target_path).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(REPO_ROOT)}: broken link {target!r}"
                )
            elif fragment and resolved.suffix == ".md":
                if fragment not in heading_anchors(resolved):
                    problems.append(
                        f"{path.relative_to(REPO_ROOT)}: dead anchor {target!r}"
                    )
    assert not problems, "\n".join(problems)


def test_readme_links_the_docs_site():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for page in (
        "docs/architecture.md",
        "docs/runtime.md",
        "docs/serving.md",
        "docs/cluster.md",
        "docs/cachenet.md",
        "docs/loadgen.md",
    ):
        assert page in readme, f"README does not link {page}"


def test_runtime_and_serve_modules_name_their_docs():
    """Every runtime/serve/cluster module docstring points readers at the docs site."""
    for package, doc in (
        ("runtime", "docs/runtime.md"),
        ("serve", "docs/serving.md"),
        ("cluster", "docs/cluster.md"),
        ("cachenet", "docs/cachenet.md"),
        ("loadgen", "docs/loadgen.md"),
    ):
        for source in sorted((REPO_ROOT / "src" / "repro" / package).glob("*.py")):
            head = source.read_text(encoding="utf-8")
            docstring = head.split('"""')[1] if '"""' in head else ""
            assert docstring.strip(), f"{source.name} has no module docstring"
            assert doc in docstring, f"{source} docstring does not reference {doc}"


@pytest.mark.parametrize("page", REQUIRED)
def test_docs_pages_are_nonempty(page):
    text = (REPO_ROOT / page).read_text(encoding="utf-8")
    assert len(text.splitlines()) > 20, f"{page} looks like a stub"
