"""The experiment-serving service: one warm session, many concurrent clients.

:class:`ExperimentService` owns a single long-lived
:class:`~repro.runtime.session.RuntimeSession` (shared ``ResultCache`` +
``TraceStore``), an async :class:`~repro.serve.queue.RequestQueue` and a
bounded :class:`~repro.serve.workers.WorkerPool`.  Clients reach it three
ways, all speaking the same typed requests:

* **in process** — ``await service.submit(request)`` / ``await service.wait``,
  used by tests and embedders;
* **TCP** — :meth:`ExperimentService.serve_tcp`, line-delimited JSON
  (:mod:`repro.serve.protocol`) for many concurrent remote clients;
* **stdio** — :meth:`ExperimentService.run_stdio`, the same protocol over
  stdin/stdout for single-operator and subprocess use.

The request lifecycle (``queued → running → done/failed/cancelled``,
coalescing, cooperative cancellation of running jobs, ``stream`` progress
events, background cache GC) is documented in ``docs/serving.md``; the
architecture map in ``docs/architecture.md`` places this layer at the top of
the stack.
"""

from __future__ import annotations

import asyncio
import contextlib
import hmac
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.runtime import ResultCache, RunStats, RuntimeSession
from repro.runtime.session import resolve_trace_dir
from repro.serve.protocol import (
    CONTROL_OPS,
    JOB_OPS,
    ProtocolError,
    ServeRequest,
    decode,
    encode,
    parse_request,
)
from repro.serve.queue import RequestQueue, Ticket
from repro.serve.workers import WorkerPool

__all__ = ["ConnectionContext", "ExperimentService"]

#: Upper bound on flushing a closing connection's outbox (seconds).  A peer
#: that disconnected or stopped reading cannot hold the close path hostage.
CLOSE_DRAIN_TIMEOUT = 5.0


@dataclass
class ConnectionContext:
    """Per-connection state threaded through :meth:`ExperimentService.handle_message`.

    ``tickets`` collects the live jobs the connection submitted (disowned on
    disconnect).  ``authenticated`` starts ``False`` on TCP connections of a
    token-protected service and flips after a valid ``auth`` op; in-process
    and stdio callers are local operators and start authenticated.
    ``registered`` marks a worker-mode connection whose peer completed the
    ``register`` handshake (see ``docs/cluster.md``) and is therefore allowed
    to submit internal cluster job ops.
    """

    tickets: list[Ticket] = field(default_factory=list)
    authenticated: bool = True
    registered: bool = False
    peer: str = "local"

    @classmethod
    def local(cls) -> "ConnectionContext":
        """A fully-trusted context for in-process and stdio callers."""
        return cls(authenticated=True, registered=True)


class ExperimentService:
    """Async front-end serving experiment/simulation requests.

    Parameters
    ----------
    cache_dir:
        Directory of the shared on-disk result cache; ``None`` keeps the warm
        cache in memory (still shared across every request of this service).
    no_cache:
        Disable result caching entirely (each request recomputes).
    workers:
        Bound on concurrently executing jobs.
    session:
        Pre-built session to serve from (overrides ``cache_dir``/``no_cache``).
    gc_interval:
        Period, in seconds, of the automatic background garbage collection of
        the shared disk cache.  ``None`` (default) disables the task; when
        set, at least one of ``gc_max_bytes``/``gc_max_age`` is required.
        The task only runs against a persistent cache.
    gc_max_bytes / gc_max_age:
        Bounds enforced by each background GC pass (LRU-first), exactly like
        the ``gc`` wire op and the ``--cache-gc`` CLI verb.
    auth_token:
        Optional shared secret.  When set, TCP connections must authenticate
        (``{"op": "auth", "token": ...}``, constant-time compare) before any
        other message reaches the queue; unauthenticated or wrong-token
        connections are closed.  Stdio and in-process callers are the local
        operator and are never challenged.
    executor:
        Override for how jobs execute (see :class:`~repro.serve.workers.WorkerPool`);
        the cluster coordinator substitutes its sharding dispatcher here.
    trace_dir / no_trace_cache:
        Control the zero-copy trace fabric (host-shared mmap-backed trace
        artifacts, :mod:`repro.runtime.trace_cache`) independently of result
        caching; defaults to ``<cache-dir>/traces`` beside a disk cache
        (see :func:`~repro.runtime.session.resolve_trace_dir`).  Ignored when
        an explicit ``session`` is supplied.
    cache_backend:
        ``--cache-backend`` URI spec (or a backend instance) selecting the
        result tier instead of ``cache_dir`` — e.g. ``remote://host:port``
        for the network cache tier (``docs/cachenet.md``).  The trace fabric
        still resolves against ``cache_dir``.
    """

    #: Wire ops this service parses into queue jobs (subclasses may extend).
    job_ops: tuple[str, ...] = JOB_OPS

    def __init__(
        self,
        cache_dir: str | Path | None = None,
        no_cache: bool = False,
        workers: int = 2,
        session: RuntimeSession | None = None,
        gc_interval: float | None = None,
        gc_max_bytes: int | None = None,
        gc_max_age: float | None = None,
        auth_token: str | None = None,
        executor=None,
        trace_dir: str | Path | None = None,
        no_trace_cache: bool = False,
        cache_backend: object | None = None,
    ) -> None:
        if session is None:
            if no_cache:
                cache = ResultCache.disabled()
            elif cache_backend is not None:
                from repro.cachenet.backend import resolve_backend

                cache = ResultCache(backend=resolve_backend(cache_backend))
            else:
                cache = ResultCache(directory=cache_dir)
            resolved = resolve_trace_dir(
                None if no_cache else cache_dir, trace_dir, no_trace_cache
            )
            traces = None
            if resolved is not None:
                from repro.runtime import TraceArtifactStore, TraceStore

                traces = TraceStore(artifacts=TraceArtifactStore(resolved))
            session = RuntimeSession(cache=cache, traces=traces)
        self.session = session
        self.auth_token = auth_token
        self.queue = RequestQueue()
        self.queue.on_finish = self._on_job_finish
        self.pool = WorkerPool(self.queue, session, workers=workers, executor=executor)
        self.totals = RunStats()
        self._started = False
        self._shutdown = asyncio.Event()
        # Background GC of the shared disk cache (long-lived servers).
        if gc_interval is not None and gc_interval <= 0:
            raise ValueError("gc_interval must be positive")
        if gc_interval is not None and gc_max_bytes is None and gc_max_age is None:
            raise ValueError("background GC needs gc_max_bytes and/or gc_max_age")
        self.gc_interval = gc_interval
        self.gc_max_bytes = gc_max_bytes
        self.gc_max_age = gc_max_age
        self.gc_runs = 0
        self.gc_removed_entries = 0
        self._gc_task: asyncio.Task | None = None

    def _on_job_finish(self, job) -> None:
        """Fold one finished job's per-request counters into service totals."""
        if job.stats:
            self.totals.merge(job.stats)

    # ----------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Start the worker pool and the background GC task (idempotent)."""
        await self.pool.start()
        self._started = True
        if (
            self.gc_interval is not None
            and self._gc_task is None
            and getattr(self.session.cache, "persistent", False)
            and hasattr(self.session.cache, "gc")
        ):
            self._gc_task = asyncio.create_task(
                self._gc_loop(), name="repro-serve-gc"
            )

    async def stop(self) -> None:
        """Stop the workers; queued jobs are abandoned."""
        if self._gc_task is not None:
            self._gc_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._gc_task
            self._gc_task = None
        if self._started:
            await self.pool.stop()
            self._started = False
        self._shutdown.set()

    async def _gc_loop(self) -> None:
        """Periodically collect the shared disk cache (LRU-first, bounded).

        GC does disk I/O, so each pass runs on a thread; a failing pass is
        logged into the error counter of the next ``stats`` reply rather than
        allowed to kill the loop.
        """
        while True:
            await asyncio.sleep(self.gc_interval)
            try:
                result = await asyncio.to_thread(
                    self.session.cache.gc,
                    max_bytes=self.gc_max_bytes,
                    max_age=self.gc_max_age,
                )
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - GC must never kill the server
                self.totals.cache.errors += 1
            else:
                self.gc_runs += 1
                self.gc_removed_entries += result.removed_entries

    async def __aenter__(self) -> "ExperimentService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    async def wait_shutdown(self) -> None:
        """Block until a ``shutdown`` op arrives (or :meth:`stop` is called).

        TCP front-ends await this instead of ``serve_forever`` so a client's
        ``shutdown`` request actually stops the server.
        """
        await self._shutdown.wait()

    # ----------------------------------------------------------------- requests
    async def submit(
        self, request: ServeRequest, on_event=None, on_progress=None, priority: int = 0
    ) -> Ticket:
        """Enqueue a typed request; returns its ticket immediately.

        ``on_progress(ticket, payload)`` — when given — receives every
        structured progress event the job's execution emits (per-layer,
        per-network, per-experiment), in order, before the terminal event.
        ``priority`` orders queued jobs (highest first, FIFO within a level);
        coalescing onto a queued job raises its priority when this one is
        higher.

        After :meth:`stop` the queue is stopping: the request is not enqueued
        (and the worker pool is *not* restarted) — the returned ticket fails
        immediately so the caller's wait resolves instead of hanging.
        """
        if not self._started and not self.queue.stopping:
            await self.start()
        return self.queue.submit(
            request, on_event=on_event, on_progress=on_progress, priority=priority
        )

    async def wait(self, ticket: Ticket) -> dict:
        """Wait for a ticket's job and return its terminal response payload."""
        await ticket.job.done.wait()
        return self.response(ticket)

    def response(self, ticket: Ticket) -> dict:
        """The terminal protocol payload of a finished (or cancelled) ticket."""
        job = ticket.job
        payload = {
            "event": ticket.state,
            "ticket": ticket.ticket_id,
            "coalesced": ticket.coalesced,
            "request": job.request.describe(),
        }
        if job.elapsed is not None:
            payload["elapsed_seconds"] = round(job.elapsed, 6)
        timings = job.timings()
        if timings is not None:
            payload["timings"] = timings
        if ticket.state == "done":
            payload["result"] = job.result
            payload["stats"] = job.stats
        elif ticket.state == "failed":
            payload["error"] = job.error
        return payload

    # ----------------------------------------------------------------- control
    def status(self, ticket_id: str) -> dict:
        ticket = self.queue.get(ticket_id)
        if ticket is None:
            return {"event": "error", "error": f"unknown ticket {ticket_id!r}"}
        return {
            "event": "status",
            "ticket": ticket.ticket_id,
            "state": ticket.state,
            "coalesced": ticket.coalesced,
            "request": ticket.job.request.describe(),
        }

    def cancel(self, ticket_id: str) -> dict:
        try:
            changed, state = self.queue.cancel(ticket_id)
        except KeyError as error:
            return {"event": "error", "error": str(error)}
        return {"event": "cancelled", "ticket": ticket_id, "changed": changed, "state": state}

    def stats(self) -> dict:
        cache = self.session.cache
        if hasattr(cache, "usage"):
            usage = cache.usage()
        else:  # a custom session may serve from a cache-like object
            usage = {
                "entries": len(cache),
                "disk_bytes": 0,
                "memo_entries": 0,
                "oldest_age_seconds": None,
                "lru_age_seconds": None,
                "directory": (
                    str(cache.directory) if getattr(cache, "directory", None) else None
                ),
            }
        totals = RunStats()
        totals.merge(self.totals)
        if hasattr(cache, "snapshot"):
            # Fold the current state gauges into the lifetime counters, so
            # the wire payload's ``stats.cache`` carries disk usage and
            # entry age alongside hits/misses (see CacheStats).
            snap = cache.snapshot()
            totals.cache.disk_entries = snap.disk_entries
            totals.cache.disk_bytes = snap.disk_bytes
            totals.cache.memo_entries = snap.memo_entries
            totals.cache.oldest_age_seconds = snap.oldest_age_seconds
        # Trace-fabric counters live on the shared artifact store (per-job
        # views report 0 for them), so overlay the lifetime values here.
        artifacts = getattr(self.session.traces, "artifacts", None)
        trace_cache = None
        if artifacts is not None:
            for name, value in artifacts.counters().items():
                setattr(totals, name, value)
            trace_cache = artifacts.usage()
        return {
            "event": "stats",
            "stats": totals.as_dict(),
            "queue": self.queue.depth(),
            "coalescing": self.coalescing_stats(),
            "cache_dir": usage["directory"],
            "cache_entries": usage["entries"],
            "cache": usage,
            "traces": len(self.session.traces),
            "trace_cache": trace_cache,
            "workers": self.pool.workers,
            "background_gc": (
                None
                if self.gc_interval is None
                else {
                    "interval_seconds": self.gc_interval,
                    "max_bytes": self.gc_max_bytes,
                    "max_age_seconds": self.gc_max_age,
                    "runs": self.gc_runs,
                    "removed_entries": self.gc_removed_entries,
                }
            ),
        }

    def coalescing_stats(self) -> dict:
        """Coalescing effectiveness since service start (the ``stats`` op).

        ``tickets_attached`` counts every submitted client request,
        ``jobs_executed`` the executions actually performed for them
        (completed + failed + interrupted-while-running); the difference is
        work the coalescer absorbed.  ``hit_rate`` is the fraction of tickets
        that attached to an already-in-flight job.
        """
        depth = self.queue.depth()
        attached = depth["submitted"]
        coalesced = depth["coalesced"]
        return {
            "tickets_attached": attached,
            "tickets_coalesced": coalesced,
            "jobs_executed": depth["completed"] + depth["failed"] + depth["interrupted"],
            "hit_rate": round(coalesced / attached, 6) if attached else 0.0,
        }

    def collect_garbage(self, max_bytes: int | None = None, max_age: float | None = None) -> dict:
        """Garbage-collect the shared disk cache (the ``gc`` op)."""
        cache = self.session.cache
        if not getattr(cache, "persistent", False) or not hasattr(cache, "gc"):
            return {"event": "error", "error": "no disk cache to garbage-collect"}
        result = cache.gc(max_bytes=max_bytes, max_age=max_age)
        return {
            "event": "gc",
            "removed_entries": result.removed_entries,
            "removed_bytes": result.removed_bytes,
            "remaining_entries": result.remaining_entries,
            "remaining_bytes": result.remaining_bytes,
        }

    def list_experiments(self) -> dict:
        from repro.experiments.base import PRESETS
        from repro.experiments.runner import EXPERIMENTS, experiment_description

        return {
            "event": "experiments",
            "experiments": [
                {"name": name, "description": experiment_description(name)}
                for name in EXPERIMENTS
            ],
            "presets": sorted(PRESETS),
        }

    # ----------------------------------------------------------------- protocol
    def parse_job(self, message: dict) -> ServeRequest:
        """Parse a job-submitting message into a typed request.

        Subclasses extending :attr:`job_ops` (the cluster worker mode)
        override this to parse their additional ops.
        """
        return parse_request(message)

    def check_auth(self, message: dict) -> bool:
        """Whether an ``auth`` op's token matches (constant-time compare)."""
        token = message.get("token")
        if self.auth_token is None:
            return True
        if not isinstance(token, str):
            return False
        return hmac.compare_digest(token.encode("utf-8"), self.auth_token.encode("utf-8"))

    async def handle_message(
        self, message: dict, send, tickets: list | None = None,
        context: ConnectionContext | None = None,
    ) -> bool:
        """Dispatch one decoded protocol message; ``False`` requests shutdown.

        ``send`` is a callable taking one response dict; job lifecycle events
        are delivered through it as they happen.  A job op with a truthy
        ``stream`` field additionally receives one ``progress`` event per
        structured progress report, before the terminal event.  ``context``
        carries per-connection state (auth, registration, submitted tickets);
        in-process callers may omit it (fully trusted) or pass the legacy
        ``tickets`` list to collect live jobs for disconnect disowning.
        """
        if context is None:
            context = ConnectionContext.local()
            if tickets is not None:
                context.tickets = tickets
        client_id = message.get("id")

        def reply(payload: dict) -> None:
            if client_id is not None:
                payload = {"id": client_id, **payload}
            send(payload)

        op = message.get("op")
        if not context.authenticated:
            # Nothing — not even ping — reaches the queue before auth.
            if op != "auth":
                reply({"event": "error", "error": "authentication required"})
                return False
            if not self.check_auth(message):
                reply({"event": "error", "error": "invalid auth token"})
                return False
            context.authenticated = True
            reply({"event": "authenticated"})
            return True
        if op == "auth":
            # Authenticating an already-trusted connection (or a service
            # without a token) is a harmless no-op handshake.
            if not self.check_auth(message):
                reply({"event": "error", "error": "invalid auth token"})
                return False
            reply({"event": "authenticated"})
        elif op == "ping":
            reply({"event": "pong"})
        elif op == "list":
            reply(self.list_experiments())
        elif op == "stats":
            reply(self.stats())
        elif op == "gc":
            bounds = {}
            for name in ("max_bytes", "max_age"):
                value = message.get(name)
                if value is not None and (
                    not isinstance(value, (int, float)) or isinstance(value, bool) or value < 0
                ):
                    reply({"event": "error", "error": f"{name} must be a non-negative number"})
                    return True
                bounds[name] = value
            reply(self.collect_garbage(**bounds))
        elif op == "status":
            reply(self.status(str(message.get("ticket", ""))))
        elif op == "cancel":
            reply(self.cancel(str(message.get("ticket", ""))))
        elif op == "shutdown":
            reply({"event": "shutdown"})
            self._shutdown.set()  # wakes wait_shutdown() (TCP front-ends)
            return False
        elif op in self.job_ops:
            priority = message.get("priority", 0)
            if not isinstance(priority, int) or isinstance(priority, bool):
                reply({"event": "error", "error": "priority must be an integer"})
                return True
            try:
                request = self.parse_job(message)
            except ProtocolError as error:
                reply({"event": "error", "error": str(error)})
                return True

            def on_event(ticket: Ticket, event: str) -> None:
                if event in ("done", "failed", "cancelled"):
                    reply(self.response(ticket))
                else:
                    reply(
                        {
                            "event": event,
                            "ticket": ticket.ticket_id,
                            "coalesced": ticket.coalesced,
                        }
                    )

            on_progress = None
            if message.get("stream"):

                def on_progress(ticket: Ticket, payload: dict) -> None:
                    reply(
                        {
                            "event": "progress",
                            "ticket": ticket.ticket_id,
                            "progress": payload,
                        }
                    )

            ticket = await self.submit(
                request, on_event=on_event, on_progress=on_progress, priority=priority
            )
            # Drop tickets that already reached a terminal state so a
            # long-lived connection doesn't pin every result payload it
            # ever received (only live jobs need disowning on disconnect).
            context.tickets[:] = [t for t in context.tickets if not t.retired]
            context.tickets.append(ticket)
        else:
            reply(
                {
                    "event": "error",
                    "error": f"unknown op {op!r}; ops: {', '.join(self.job_ops + CONTROL_OPS)}",
                }
            )
        return True

    def _disown_connection_tickets(self, tickets: list[Ticket]) -> None:
        """Detach a dead connection from every job it submitted.

        Without this, the per-ticket event callbacks keep appending to the
        closed connection's outbox for as long as their jobs live — a slow
        leak in a long-lived server.  Each ticket is neutralized and then
        cancelled: a sole-ticket job is dropped (queued) or cooperatively
        interrupted (running); a job shared with other connections keeps
        running and only this connection's ticket detaches.
        """
        for ticket in tickets:
            ticket.on_event = None
            ticket.on_progress = None
            if ticket.cancelled or ticket.job.state in ("done", "failed", "cancelled"):
                continue
            with contextlib.suppress(KeyError):
                self.queue.cancel(ticket.ticket_id)

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one TCP client: JSON lines in, event lines out.

        On a token-protected service the connection starts unauthenticated:
        the first message must be a valid ``auth`` op, and anything else
        closes the connection before it can touch the queue.
        """
        outbox: asyncio.Queue[dict | None] = asyncio.Queue()
        peername = writer.get_extra_info("peername")
        context = ConnectionContext(
            authenticated=self.auth_token is None,
            peer=str(peername) if peername else "tcp",
        )
        tickets = context.tickets

        async def drain_outbox() -> None:
            while True:
                payload = await outbox.get()
                if payload is None:
                    break
                writer.write(encode(payload))
                try:
                    await writer.drain()
                except (ConnectionError, RuntimeError):
                    break

        sender = asyncio.create_task(drain_outbox())
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = decode(line)
                except ProtocolError as error:
                    outbox.put_nowait({"event": "error", "error": str(error)})
                    continue
                if not await self.handle_message(
                    message, outbox.put_nowait, context=context
                ):
                    break
        except asyncio.CancelledError:
            pass  # server shutting down mid-connection; fall through to cleanup
        finally:
            self._disown_connection_tickets(tickets)
            outbox.put_nowait(None)
            # Bound the final drain: a peer that stopped reading must not be
            # able to hang connection close on writer.drain() forever.
            # wait_for cancels the sender on timeout.
            with contextlib.suppress(asyncio.TimeoutError, asyncio.CancelledError):
                await asyncio.wait_for(sender, timeout=CLOSE_DRAIN_TIMEOUT)
            writer.close()
            with contextlib.suppress(ConnectionError, OSError, asyncio.CancelledError):
                await writer.wait_closed()

    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 0) -> asyncio.Server:
        """Listen for protocol connections; returns the (started) server."""
        await self.start()
        return await asyncio.start_server(self.handle_connection, host, port)

    async def run_stdio(self, stdin=None, stdout=None) -> None:
        """Speak the protocol over stdin/stdout until EOF or ``shutdown``."""
        stdin = stdin if stdin is not None else sys.stdin
        stdout = stdout if stdout is not None else sys.stdout
        await self.start()
        loop = asyncio.get_running_loop()
        # Stdio is the local operator: trusted, never challenged for a token.
        context = ConnectionContext.local()

        def send(payload: dict) -> None:
            stdout.write(encode(payload).decode("utf-8"))
            stdout.flush()

        while True:
            line = await loop.run_in_executor(None, stdin.readline)
            if not line:
                break
            if not line.strip():
                continue
            try:
                message = decode(line)
            except ProtocolError as error:
                send({"event": "error", "error": str(error)})
                continue
            if not await self.handle_message(message, send, context=context):
                break
        await self.stop()
