"""Process-pool execution of run plans, with graceful serial fallback.

The scheduler executes a :class:`~repro.runtime.jobs.RunPlan` as a dependency
wavefront over a ``concurrent.futures`` process pool: simulation jobs run
first (they have no dependencies), each experiment job is submitted as soon as
the simulation jobs it depends on have populated the shared on-disk cache, and
results are reassembled in the caller's order so a parallel run is
indistinguishable from a serial one.

Fallbacks keep the engine dependable everywhere:

* ``jobs <= 1`` runs everything in-process (no pool, no pickling);
* without a *persistent* cache (``--no-cache`` or a memory-only session)
  simulation jobs cannot hand results to experiment workers, so the plan
  degrades to experiment-level parallelism with self-contained jobs;
* if the platform cannot create a process pool at all, the run silently
  degrades to serial execution and says so in the report.

``docs/runtime.md`` describes the scheduler's place in the job model;
``docs/architecture.md`` walks a request through the whole stack.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.sweep import SweepStats
from repro.experiments.base import ExperimentResult, Preset, get_preset
from repro.runtime.cache import CacheStats
from repro.runtime.engine import analyze, simulate
from repro.runtime.jobs import (
    ExperimentJob,
    RunPlan,
    SimulationJob,
    StatisticsJob,
    build_plan,
)
from repro.runtime.session import (
    RunStats,
    RuntimeSession,
    ResultCache,
    configure_session,
    current_session,
    resolve_trace_dir,
    use_session,
)
from repro.runtime.trace_store import TraceStore

__all__ = ["RunReport", "run_experiments"]


@dataclass
class RunReport:
    """Everything a run produced: results, statistics, and how it executed."""

    results: dict[str, ExperimentResult]
    stats: RunStats
    preset: str
    seed: int
    jobs: int
    simulation_jobs: int
    planned_cache_hits: int
    elapsed_seconds: float
    mode: str  # "parallel" | "serial" | "serial-fallback"
    cache_dir: str | None = None
    statistics_jobs: int = 0
    cache_entries: int = 0
    cache_disk_bytes: int = 0
    trace_dir: str | None = None

    def summary(self) -> str:
        """Multi-line, human-readable run summary (printed by the CLI)."""
        cache_line = f"cache dir: {self.cache_dir or '(memory only)'}"
        if self.cache_dir is not None:
            cache_line += (
                f"  ({self.cache_entries} entries, {self.cache_disk_bytes} bytes)"
            )
        cache_line += f"  trace dir: {self.trace_dir or '(memory only)'}"
        lines = [
            "== run summary ==",
            f"experiments: {len(self.results)}  preset: {self.preset}  seed: {self.seed}",
            f"mode: {self.mode}  jobs: {self.jobs}  "
            f"simulation jobs: {self.simulation_jobs}  "
            f"statistics jobs: {self.statistics_jobs}  "
            f"planned cache hits: {self.planned_cache_hits}",
            f"{self.stats.summary()}",
            cache_line,
            f"elapsed: {self.elapsed_seconds:.1f}s",
        ]
        return "\n".join(lines)


# --------------------------------------------------------------------- workers
def _init_worker(
    cache_dir: str | None,
    no_cache: bool,
    trace_dir: str | None = None,
    no_trace_cache: bool = False,
    cache_backend: str | None = None,
) -> None:
    """Pool initializer: give the worker process its own configured session."""
    configure_session(
        cache_dir=cache_dir,
        no_cache=no_cache,
        trace_dir=trace_dir,
        no_trace_cache=no_trace_cache,
        cache_backend=cache_backend,
    )


def _session_trace_config(session: RuntimeSession) -> tuple[str | None, bool]:
    """The ``(trace_dir, no_trace_cache)`` pair reproducing a session's fabric.

    Pool workers must share the parent's artifact directory (that is the
    fabric's whole point: one physical tensor per host), so the parent's
    wiring — not the CLI flags, which the parent already resolved — is the
    source of truth.
    """
    artifacts = getattr(session.traces, "artifacts", None)
    if artifacts is None:
        return None, True
    return str(artifacts.directory), False


def _reset_job_stats(session: RuntimeSession) -> None:
    """Zero the session counters so the next job reports only its own work."""
    session.cache.stats = CacheStats()
    session.sweep_stats = SweepStats()
    session.traces.builds = 0
    session.traces.reuses = 0
    artifacts = getattr(session.traces, "artifacts", None)
    if artifacts is not None:
        # Fabric counters are process-lifetime; without a reset every job a
        # pool worker runs would re-report its predecessors' builds and maps.
        artifacts.reset_counters()


def _execute_job(
    job: SimulationJob | StatisticsJob | ExperimentJob,
) -> tuple[str, ExperimentResult | None, dict]:
    """Run one job in the worker's session; returns (job id, result, stats delta)."""
    session = current_session()
    _reset_job_stats(session)
    result: ExperimentResult | None = None
    if isinstance(job, SimulationJob):
        simulate(job.request, session=session)
    elif isinstance(job, StatisticsJob):
        analyze(job.request, session=session)
    else:
        from repro.experiments.runner import run_experiment

        result = run_experiment(job.experiment, preset=job.preset, seed=job.seed)
    return job.job_id, result, session.stats().as_dict()


def _stats_delta(end: dict, start: dict) -> dict:
    """Counter-wise ``end - start`` over nested stats dicts.

    Runs may execute inside a long-lived session; the report must describe
    this run only, not the session's lifetime totals.
    """
    delta: dict = {}
    for key, value in end.items():
        if isinstance(value, dict):
            delta[key] = _stats_delta(value, start.get(key, {}))
        else:
            delta[key] = value - start.get(key, 0)
    return delta


# ------------------------------------------------------------------ execution
def _run_serial(
    names: list[str], preset: Preset, seed: int, session: RuntimeSession
) -> dict[str, ExperimentResult]:
    """In-process execution; the shared session already provides all reuse."""
    from repro.experiments.runner import run_experiment

    with use_session(session):
        return {name: run_experiment(name, preset=preset, seed=seed) for name in names}


def _run_parallel(
    plan: RunPlan,
    jobs: int,
    session: RuntimeSession,
    stats: RunStats,
    cache_backend: str | None = None,
) -> dict[str, ExperimentResult]:
    """Dependency-wavefront execution over a process pool."""
    cache_dir = str(session.cache.directory) if session.cache.directory else None
    no_cache = not session.cache.enabled
    trace_dir, no_trace_cache = _session_trace_config(session)
    context = multiprocessing.get_context("spawn")
    results: dict[str, ExperimentResult] = {}
    waiting = list(plan.jobs())
    done_ids: set[str] = set()

    try:
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=jobs,
            mp_context=context,
            initializer=_init_worker,
            initargs=(cache_dir, no_cache, trace_dir, no_trace_cache, cache_backend),
        )
    except (OSError, PermissionError) as error:
        # Normalize "cannot create a pool at all" to the executor failure the
        # caller handles with the serial fallback.
        raise concurrent.futures.BrokenExecutor(
            f"could not create process pool: {error}"
        ) from error
    try:
        running: dict[concurrent.futures.Future, str] = {}
        while waiting or running:
            ready = [job for job in waiting if all(dep in done_ids for dep in job.deps)]
            waiting = [job for job in waiting if not all(dep in done_ids for dep in job.deps)]
            for job in ready:
                running[pool.submit(_execute_job, job)] = job.job_id
            if not running:
                raise RuntimeError(
                    "run plan deadlocked: jobs "
                    f"{[job.job_id for job in waiting]} have unsatisfiable dependencies"
                )
            finished, _ = concurrent.futures.wait(
                running, return_when=concurrent.futures.FIRST_COMPLETED
            )
            for future in finished:
                running.pop(future)
                job_id, result, job_stats = future.result()
                done_ids.add(job_id)
                stats.merge(job_stats)
                if result is not None:
                    results[job_id.removeprefix("exp:")] = result
    except BaseException:
        # A failing job must fail the run *now*: drop everything still queued
        # and don't wait for sibling futures already executing — they write
        # only to the shared cache, which tolerates abandoned writers.
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown(wait=True)
    return results


def run_experiments(
    names: list[str],
    preset: str | Preset = "fast",
    seed: int = 0,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    no_cache: bool = False,
    trace_dir: str | Path | None = None,
    no_trace_cache: bool = False,
    cache_backend: str | None = None,
) -> RunReport:
    """Run experiments through the runtime and reassemble results deterministically.

    Parameters
    ----------
    names:
        Experiment ids, in the order results should be reported.
    preset, seed:
        Forwarded to every experiment.
    jobs:
        Worker processes; ``1`` (the default) runs serially in-process.
    cache_dir:
        Directory of the shared on-disk result cache; when neither ``cache_dir``
        nor ``no_cache`` is given the run uses the caller's active session (so a
        cache installed with :func:`~repro.runtime.session.configure_session`
        is honored).
    no_cache:
        Disable result caching entirely.
    trace_dir, no_trace_cache:
        Control the zero-copy trace fabric independently of result caching
        (see :func:`~repro.runtime.session.resolve_trace_dir`); only honored
        when this call builds its own session (``cache_dir``/``no_cache``
        given), otherwise the caller's session wiring stands.
    cache_backend:
        ``--cache-backend`` URI spec (e.g. ``remote://host:port``) selecting
        the result-tier backend instead of ``cache_dir``; resolved by
        :func:`repro.cachenet.backend.resolve_backend` and re-resolved in
        every pool worker (a backend instance cannot cross a process spawn).
    """
    preset = get_preset(preset)
    started = time.perf_counter()
    if no_cache or cache_dir is not None or cache_backend is not None:
        if no_cache:
            cache = ResultCache.disabled()
        elif cache_backend is not None:
            from repro.cachenet.backend import resolve_backend

            cache = ResultCache(backend=resolve_backend(cache_backend))
        else:
            cache = ResultCache(directory=cache_dir)
        resolved = resolve_trace_dir(
            None if no_cache else cache_dir, trace_dir, no_trace_cache
        )
        traces = None
        if resolved is not None:
            from repro.runtime.trace_cache import TraceArtifactStore

            traces = TraceStore(artifacts=TraceArtifactStore(resolved))
        session = RuntimeSession(cache=cache, traces=traces)
    else:
        session = current_session()
    session_stats_before = session.stats().as_dict()
    stats = RunStats()
    mode = "serial"
    plan = build_plan(names, preset, seed, session)
    if jobs > 1 and not session.cache.persistent:
        # Simulation/statistics jobs cannot hand results to sibling processes
        # without a shared on-disk cache; run self-contained experiment jobs only.
        plan = RunPlan(
            simulations=[],
            statistics=[],
            experiments=[
                ExperimentJob(
                    job_id=job.job_id,
                    experiment=job.experiment,
                    preset=job.preset,
                    seed=job.seed,
                )
                for job in plan.experiments
            ],
            planned_hits=plan.planned_hits,
        )

    if jobs > 1:
        try:
            unordered = _run_parallel(plan, jobs, session, stats, cache_backend)
            results = {name: unordered[name] for name in names}
            mode = "parallel"
        except concurrent.futures.BrokenExecutor:
            # The platform cannot sustain a worker pool (spawn blocked, workers
            # killed): degrade gracefully.  Genuine exceptions raised *by* an
            # experiment or simulation propagate to the caller instead.
            stats = RunStats()  # discard partial worker counters
            results = _run_serial(names, preset, seed, session)
            mode = "serial-fallback"
    else:
        results = _run_serial(names, preset, seed, session)

    stats.merge(_stats_delta(session.stats().as_dict(), session_stats_before))
    if mode == "parallel" and getattr(session.cache, "manifest", None) is not None:
        session.cache.manifest.refresh()  # pool workers wrote the shared index
    usage = session.cache.usage() if hasattr(session.cache, "usage") else {}
    return RunReport(
        results=results,
        stats=stats,
        preset=preset.name,
        seed=seed,
        jobs=jobs,
        simulation_jobs=len(plan.simulations),
        planned_cache_hits=plan.planned_hits,
        elapsed_seconds=time.perf_counter() - started,
        mode=mode,
        cache_dir=str(session.cache.directory) if session.cache.directory else None,
        statistics_jobs=len(plan.statistics),
        cache_entries=usage.get("entries", 0),
        cache_disk_bytes=usage.get("disk_bytes", 0) or 0,
        trace_dir=_session_trace_config(session)[0],
    )
