"""On-chip memory models: neuron memory (NM), synapse buffers (SB), NBin/NBout.

The cycle models only need two things from the memory system:

* the number of cycles to assemble the next neuron pallet from the central
  eDRAM neuron memory (which overlaps with processing — Section V-A4), and
* access counts for the energy model (the paper schedules computation so that
  every design performs the same SB reads).

Capacity checks are also provided so that configurations that would not fit the
2 MB-per-tile SB or the 4 MB NM are flagged instead of silently mis-modelled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.config import ChipConfig, DEFAULT_CHIP
from repro.nn.layers import BRICK_SIZE, PALLET_WINDOWS, ConvLayerSpec

__all__ = ["NeuronMemory", "SynapseBuffer", "AccessCounters", "layer_fits_on_chip"]


@dataclass
class AccessCounters:
    """Read/write counters used by the energy model."""

    nm_reads: int = 0
    nm_writes: int = 0
    sb_reads: int = 0
    nbin_reads: int = 0
    nbout_writes: int = 0

    def merge(self, other: "AccessCounters") -> "AccessCounters":
        """Element-wise sum of two counter sets."""
        return AccessCounters(
            nm_reads=self.nm_reads + other.nm_reads,
            nm_writes=self.nm_writes + other.nm_writes,
            sb_reads=self.sb_reads + other.sb_reads,
            nbin_reads=self.nbin_reads + other.nbin_reads,
            nbout_writes=self.nbout_writes + other.nbout_writes,
        )


@dataclass
class NeuronMemory:
    """The shared central eDRAM neuron memory.

    The dispatcher fetches a pallet (16 neuron bricks, stride apart) per step.
    With unit stride the bricks sit in one or two NM rows and are fetched in at
    most two cycles; with larger strides they spread over more rows (Section
    V-A4).  Fetches overlap with processing of the current pallet.
    """

    chip: ChipConfig = field(default_factory=lambda: DEFAULT_CHIP)

    def pallet_fetch_cycles(self, layer: ConvLayerSpec) -> int:
        """Cycles to assemble the next pallet's neuron bricks from NM."""
        brick_bytes = BRICK_SIZE * self.chip.neuron_bytes
        # The 16 bricks of a pallet are `stride` bricks apart along x, so the
        # address span covered is 16 * stride bricks; the number of NM rows
        # touched bounds the fetch latency, plus one cycle of non-alignment.
        span_bytes = PALLET_WINDOWS * layer.stride * brick_bytes
        rows = max(1, -(-span_bytes // self.chip.nm_row_bytes))
        return min(rows, PALLET_WINDOWS)

    def layer_footprint_bytes(self, layer: ConvLayerSpec) -> int:
        """Bytes the layer's input neurons occupy in NM."""
        return layer.input_neurons * self.chip.neuron_bytes

    def fits(self, layer: ConvLayerSpec) -> bool:
        """True when the layer's input neurons fit in NM without spilling."""
        return self.layer_footprint_bytes(layer) <= self.chip.nm_bytes


@dataclass
class SynapseBuffer:
    """The per-tile eDRAM synapse buffer.

    The scheduling used throughout the paper guarantees every design reads each
    synapse brick from SB the same number of times; the per-column
    synchronization scheme preserves that property by buffering recently read
    synapse sets in SSRs (Section V-E).
    """

    chip: ChipConfig = field(default_factory=lambda: DEFAULT_CHIP)

    def layer_footprint_bytes(self, layer: ConvLayerSpec) -> int:
        """Bytes of synapses a tile must hold for one filter pass of the layer."""
        filters_held = min(layer.num_filters, self.chip.filters_per_tile)
        synapse_bytes = self.chip.neuron_bytes
        return filters_held * layer.synapses_per_filter * synapse_bytes

    def fits(self, layer: ConvLayerSpec) -> bool:
        """True when one filter pass of the layer fits in a tile's SB."""
        return self.layer_footprint_bytes(layer) <= self.chip.sb_bytes_per_tile

    def layer_reads(self, layer: ConvLayerSpec) -> int:
        """SB reads (of one synapse set: 16 bricks) per tile for the layer.

        Each brick position of each pallet requires one synapse-set read; the
        count is identical across DaDN, STR and PRA by construction.
        """
        return layer.window_groups * layer.bricks_per_window * layer.filter_passes(
            self.chip.filters_per_cycle
        )


def layer_fits_on_chip(layer: ConvLayerSpec, chip: ChipConfig = DEFAULT_CHIP) -> bool:
    """Whether a layer's working set fits the on-chip memories."""
    return NeuronMemory(chip).fits(layer) and SynapseBuffer(chip).fits(layer)
