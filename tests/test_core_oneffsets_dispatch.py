"""Unit tests for the oneffset generator and the dispatcher."""

import numpy as np
import pytest

from repro.core.dispatcher import Dispatcher
from repro.core.oneffset_generator import OneffsetGenerator
from repro.numerics.oneffsets import decode_oneffsets


class TestOneffsetGenerator:
    def test_convert_value_roundtrip(self):
        generator = OneffsetGenerator()
        for value in (0, 1, 5, 255, 65535):
            stream = generator.convert_value(value)
            if value:
                assert stream.value == value

    def test_convert_brick_length(self, rng):
        generator = OneffsetGenerator()
        brick = rng.integers(0, 2**12, size=16)
        assert len(generator.convert_brick(brick)) == 16

    def test_lane_states_preserve_signs(self):
        generator = OneffsetGenerator()
        states = generator.lane_states(np.array([-6, 6, 0]))
        assert [s.sign for s in states] == [-1, 1, 1]

    def test_lane_state_emission_order_is_ascending(self):
        generator = OneffsetGenerator()
        state = generator.lane_states(np.array([0b1010]))[0]
        first, end1, null1 = state.next_offset()
        second, end2, null2 = state.next_offset()
        assert (first, second) == (1, 3)
        assert not end1 and end2
        assert not null1 and not null2

    def test_exhausted_lane_emits_null_terms(self):
        generator = OneffsetGenerator()
        state = generator.lane_states(np.array([0]))[0]
        offset, end, is_null = state.next_offset()
        assert is_null and end and offset == 0

    def test_oneffset_lists_reconstruct_values(self, rng):
        generator = OneffsetGenerator()
        brick = rng.integers(0, 2**16, size=16)
        lists = generator.oneffset_lists(brick)
        for value, offsets in zip(brick, lists):
            assert decode_oneffsets(offsets) == value

    def test_max_stream_length_minimum_one(self):
        generator = OneffsetGenerator()
        assert generator.max_stream_length(np.zeros(16, dtype=int)) == 1
        assert generator.max_stream_length(np.array([0xFFFF] + [0] * 15)) == 16

    def test_rejects_values_wider_than_storage(self):
        generator = OneffsetGenerator(storage_bits=8)
        with pytest.raises(ValueError):
            generator.lane_states(np.array([256]))

    def test_rejects_bad_storage_bits(self):
        with pytest.raises(ValueError):
            OneffsetGenerator(storage_bits=0)


class TestDispatcher:
    def test_dispatch_covers_every_pallet_step(self, tiny_layer, tiny_trace):
        dispatcher = Dispatcher()
        steps = list(dispatcher.dispatch_layer(tiny_layer, tiny_trace.layer_input(0)))
        assert len(steps) == tiny_layer.window_groups * tiny_layer.bricks_per_window

    def test_dispatch_step_structure(self, tiny_layer, tiny_trace):
        dispatcher = Dispatcher()
        step = next(iter(dispatcher.dispatch_layer(tiny_layer, tiny_trace.layer_input(0))))
        assert len(step.oneffsets) == 16
        assert len(step.oneffsets[0]) == 16
        assert step.nm_fetch_cycles >= 1
        assert step.max_oneffsets >= 1

    def test_signs_match_values(self, tiny_layer, tiny_trace):
        dispatcher = Dispatcher()
        step = next(iter(dispatcher.dispatch_layer(tiny_layer, tiny_trace.layer_input(0))))
        for window in step.signs:
            assert all(sign in (-1, 1) for sign in window)

    def test_layer_accesses_positive(self, tiny_layer):
        counters = Dispatcher().layer_accesses(tiny_layer)
        assert counters.nm_reads > 0
        assert counters.sb_reads >= counters.nm_reads
